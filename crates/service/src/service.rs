//! The spatial query service: a shared-nothing worker pool over
//! buffer-pool shards, fed by the per-worker [`ShardedQueue`],
//! answering from the fingerprint-sharded [`CacheShards`] when it can.
//!
//! ## Concurrency model — no shared lock on the hot path
//!
//! The dataset (master [`BufferPool`], stored relations, generalization
//! trees, version) is an **immutable snapshot** published through a
//! [`SnapshotCell`]. Each worker holds a [`SnapshotReader`]: touching
//! the dataset is one atomic epoch compare in the steady state, so
//! requests never block on — or even observe — other requests. Per
//! batch, a worker pins one snapshot and executes on a private cold
//! shard forked from it ([`BufferPool::fork_view`]), so index builds
//! and page I/O during query execution never touch shared frames.
//!
//! Updates build the *next* snapshot entirely off the hot path (scan
//! the current relations through a read-only fork, apply the batch,
//! rebuild relations and trees on a fresh pool) and publish it in O(1).
//! In-flight requests keep computing against the snapshot they pinned;
//! its `version` tags their responses and cache entries.
//!
//! Admission is sharded per worker (round-robin enqueue, full-shard
//! fallover, batched dequeue, work stealing), the result cache is
//! sharded by key fingerprint, and metrics are per-worker atomics
//! merged on export — so a cache-hit request costs exactly one
//! statistically uncontended shard lock and zero global ones (the
//! `cache_hits_never_touch_the_publisher_lock` test pins this down).
//! Workers drain up to [`ServiceConfig::batch_size`] requests per
//! wakeup and answer the batch's expired deadlines and cache hits
//! before running any executor.
//!
//! ## Fail-stop fault handling
//!
//! Storage faults (injected for chaos testing, or real) surface as
//! typed [`StorageError`]s from every compute path. The worker retries
//! a faulted request up to [`ServiceConfig::retry_attempts`] times with
//! exponential model-time backoff; each attempt arms its shard with a
//! fresh deterministic injector stream (seeded from the fault seed,
//! dataset version, request fingerprint, and attempt number), so
//! transient faults really are transient and identical runs replay
//! identical fault traces. A join that exhausts its budget degrades to
//! a *resilient* nested-loop pass: both relations are scanned with
//! per-record-read retries (a faulted read leaves the page non-resident,
//! so each retry re-draws from the injector stream), which survives
//! fault rates that would abort any fail-stop whole-attempt strategy.
//! Worker panics are contained with `catch_unwind`, and every lock in
//! the crate recovers from poisoning, so one crashed request never
//! takes the service down. Snapshot pools never carry an injector:
//! updates and reference computations are always fault-free.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use sj_core::advisor::{auto_chooser, Operation, WorkloadProfile};
use sj_costmodel::{Distribution, ModelParams};
use sj_gentree::rtree::{RTree, RTreeConfig};
use sj_geom::{Bounded, Geometry, Rect, ThetaOp};
use sj_joins::{JoinOperands, JoinRequest, StoredRelation, Strategy, TreeRelation};
use sj_obs::TraceSink;
use sj_storage::{BufferPool, Disk, DiskConfig, FaultConfig, FaultInjector, Layout, StorageError};

use crate::admission::ShardedQueue;
use crate::cache::{CacheKey, CacheShards};
use crate::metrics::{ServiceMetrics, WorkerMetrics};
use crate::request::{QueryKind, Rejection, Reply, Request, Response, ServiceResult, Side};
use crate::snapshot::SnapshotCell;

/// Per-record-read retries inside the degraded nested-loop pass. Each
/// retry of a faulted read re-draws from the deterministic injector
/// stream (the failed fetch left the page non-resident), so at read
/// fault probability p a record survives with probability `1 - p⁴` —
/// the resilience that keeps the service *degraded* instead of *down*
/// at fault rates where every fail-stop strategy attempt aborts.
const DEGRADED_READ_RETRIES: u32 = 4;

/// Tuning knobs for [`SpatialService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads executing requests (also the number of admission
    /// queue shards and result cache shards).
    pub workers: usize,
    /// Total admission depth across all shards; submissions beyond it
    /// are shed.
    pub queue_depth: usize,
    /// Result-cache entries across all shards; 0 disables caching.
    pub cache_capacity: usize,
    /// Frames of the master buffer pool (builds and updates).
    pub pool_capacity: usize,
    /// Frames of each worker's forked shard.
    pub shard_capacity: usize,
    /// On-disk record size for relations and trees.
    pub record_size: usize,
    /// Generalization-tree (R-tree) fan-out.
    pub fanout: usize,
    /// Sample pairs per advisor selectivity estimate for `Auto`.
    pub selectivity_samples: usize,
    /// Seed for the advisor's estimator — fixed, so identical requests
    /// against the same version resolve to the same strategy.
    pub seed: u64,
    /// Base workload profile the advisor scores (`operation` and
    /// `selectivity` are overridden per request).
    pub profile: WorkloadProfile,
    /// Probability that a physical page read on a worker shard faults;
    /// 0.0 (the default) disarms injection entirely.
    pub fault_read_prob: f64,
    /// Probability that a physical page write on a worker shard faults.
    pub fault_write_prob: f64,
    /// Base seed of the fault-injection streams. Each attempt derives
    /// its own stream from this seed, the dataset version, the request
    /// fingerprint, and the attempt number — deterministic end to end.
    pub fault_seed: u64,
    /// Compute attempts per request before degradation/failure (min 1).
    pub retry_attempts: u32,
    /// Requests a worker drains per dequeue wakeup (min 1): the batch's
    /// deadline sheds and cache hits are answered before any executor
    /// runs, amortizing queue synchronization across the batch.
    pub batch_size: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_depth: 64,
            cache_capacity: 256,
            pool_capacity: 256,
            shard_capacity: 32,
            record_size: 300,
            fanout: 8,
            selectivity_samples: 64,
            seed: 0xC0FFEE,
            profile: WorkloadProfile {
                params: ModelParams::paper(),
                distribution: Distribution::Uniform,
                selectivity: 1e-6,
                updates_per_query: 0.0,
                operation: Operation::Join,
            },
            fault_read_prob: 0.0,
            fault_write_prob: 0.0,
            fault_seed: 0,
            retry_attempts: 3,
            batch_size: 8,
        }
    }
}

/// One immutable, version-tagged dataset snapshot. Workers pin a
/// snapshot per batch through their [`SnapshotReader`]; updates build
/// the next one from scratch and publish it atomically.
struct DataState {
    pool: BufferPool,
    r: StoredRelation,
    s: StoredRelation,
    r_tree: TreeRelation,
    s_tree: TreeRelation,
    world: Rect,
    version: u64,
}

/// One queued unit of work.
struct Job {
    req: Request,
    submitted: Instant,
    reply_to: Sender<ServiceResult>,
    /// Test hook: makes the worker panic while holding a cache-shard
    /// lock, exercising panic containment and poison recovery end to
    /// end.
    #[cfg(test)]
    poison: bool,
}

impl Job {
    fn new(req: Request, reply_to: Sender<ServiceResult>) -> Self {
        Job {
            req,
            submitted: Instant::now(),
            reply_to,
            #[cfg(test)]
            poison: false,
        }
    }
}

/// A dequeued request that passed its deadline check and missed the
/// cache: phase 2 of the batch computes it.
struct Miss {
    job: Job,
    key: CacheKey,
    queue_us: u64,
}

/// State shared between the handle and the workers. Note what is *not*
/// here anymore: no dataset `RwLock`, no global cache mutex, no global
/// metrics mutex — every structure is either immutable, sharded, or
/// per-worker.
struct Shared {
    config: ServiceConfig,
    /// The current dataset snapshot (epoch-stamped publish/subscribe).
    snapshot: SnapshotCell<DataState>,
    /// Serializes writers only — never touched by the request path.
    update_lock: Mutex<()>,
    queue: ShardedQueue<Job>,
    cache: CacheShards,
    /// One lock-free metrics slab per worker, merged on export.
    worker_metrics: Vec<Arc<WorkerMetrics>>,
}

/// A running multi-threaded spatial query service. Dropping the handle
/// closes the admission queue, drains the backlog, and joins the
/// workers.
pub struct SpatialService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl SpatialService {
    /// Builds the dataset (stored relations plus clustered
    /// generalization trees) on a fresh paper-geometry disk and spawns
    /// the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if either relation is empty — the advisor's selectivity
    /// estimator needs tuples to sample.
    pub fn start(
        config: ServiceConfig,
        r_tuples: &[(u64, Geometry)],
        s_tuples: &[(u64, Geometry)],
        world: Rect,
    ) -> Self {
        assert!(
            !r_tuples.is_empty() && !s_tuples.is_empty(),
            "service operands must be non-empty"
        );
        let workers = config.workers.max(1);
        let state = build_state(&config, r_tuples, s_tuples, world, 0);
        let shared = Arc::new(Shared {
            config,
            snapshot: SnapshotCell::new(Arc::new(state)),
            update_lock: Mutex::new(()),
            queue: ShardedQueue::new(workers, config.queue_depth, config.batch_size.max(1)),
            cache: CacheShards::new(workers, config.cache_capacity),
            worker_metrics: (0..workers)
                .map(|_| Arc::new(WorkerMetrics::new()))
                .collect(),
        });
        let workers = (0..workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, worker))
            })
            .collect();
        SpatialService { shared, workers }
    }

    /// Submits a request. Returns the response channel, or an immediate
    /// rejection when the θ-operator is unsupported by the named
    /// strategy or every admission shard is full.
    pub fn submit(&self, req: Request) -> Result<Receiver<ServiceResult>, Rejection> {
        if let QueryKind::Join { strategy } = &req.kind {
            if !strategy.supports(req.theta) {
                return Err(Rejection::UnsupportedTheta);
            }
        }
        let (tx, rx) = mpsc::channel();
        match self.shared.queue.try_push(Job::new(req, tx)) {
            Ok(()) => Ok(rx),
            Err(_) => Err(Rejection::QueueFull),
        }
    }

    /// Test hook: submits a job whose processing panics while holding
    /// a cache-shard lock — the worst case for lock poisoning.
    #[cfg(test)]
    fn submit_poisoned(&self) -> Receiver<ServiceResult> {
        let (tx, rx) = mpsc::channel();
        let mut job = Job::new(
            Request::join(Strategy::NestedLoop, sj_geom::ThetaOp::Overlaps),
            tx,
        );
        job.poison = true;
        self.shared
            .queue
            .try_push(job)
            .unwrap_or_else(|_| panic!("queue full in test")); // PANIC-OK: cfg(test) hook
        rx
    }

    /// Submits and blocks for the answer.
    pub fn call(&self, req: Request) -> ServiceResult {
        let rx = self.submit(req)?;
        rx.recv().unwrap_or(Err(Rejection::Closed))
    }

    /// Executes `req` synchronously on the calling thread — same
    /// computation as the workers but with *no* fault injector armed,
    /// bypassing queue, cache, and metrics. This is the fault-free
    /// sequential reference for replay validation: every `Ok` response
    /// a chaos run produces must carry a result identical to this.
    pub fn execute_reference(&self, req: &Request) -> Reply {
        let state = self.shared.snapshot.load();
        try_compute(&state, &self.shared.config, req, None)
            .unwrap_or_else(|e| panic!("reference compute failed: {e}")) // PANIC-OK: no injector armed
    }

    /// Applies a batch of insertions by building the *next* snapshot
    /// off the hot path — scan the current relations through a
    /// read-only fork, extend with the inserts, rebuild relations and
    /// generalization trees on a fresh pool — then publishing it in
    /// O(1) and purging stale cache entries. Readers never block:
    /// in-flight requests finish against the snapshot they pinned.
    /// Returns the new version.
    pub fn update(&self, inserts: &[(Side, u64, Geometry)]) -> u64 {
        // Writers serialize with each other only; the queue keeps
        // admitting and workers keep serving throughout.
        let _writer = self
            .shared
            .update_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let current = self.shared.snapshot.load();
        let mut view = current.pool.fork_view(self.shared.config.pool_capacity);
        let mut r_tuples = current.r.scan(&mut view);
        let mut s_tuples = current.s.scan(&mut view);
        let mut world = current.world;
        for (side, id, g) in inserts {
            world = world.union(&g.mbr());
            match side {
                Side::R => r_tuples.push((*id, g.clone())),
                Side::S => s_tuples.push((*id, g.clone())),
            }
        }
        let next = build_state(
            &self.shared.config,
            &r_tuples,
            &s_tuples,
            world,
            current.version + 1,
        );
        let version = next.version;
        drop(current);
        self.shared.snapshot.publish(Arc::new(next));
        self.shared.cache.purge_stale(version);
        version
    }

    /// Current dataset version (starts at 0, bumped per update batch).
    pub fn version(&self) -> u64 {
        self.shared.snapshot.load().version
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Aggregate latency/outcome metrics: per-worker atomic slabs
    /// merged at call time.
    pub fn metrics(&self) -> ServiceMetrics {
        let mut total = ServiceMetrics::new();
        for worker in &self.shared.worker_metrics {
            total.merge(&worker.snapshot());
        }
        total
    }

    /// `(hits, misses, resident entries)` summed over the cache shards.
    pub fn cache_stats(&self) -> (u64, u64, usize) {
        self.shared.cache.stats()
    }

    /// Result-cache hit rate over all lookups so far.
    pub fn cache_hit_rate(&self) -> f64 {
        self.shared.cache.hit_rate()
    }

    /// `(shed at admission, shed at deadline)` so far.
    pub fn shed_counts(&self) -> (u64, u64) {
        let full = self.shared.queue.shed_full_count();
        let deadline = self.metrics().shed_deadline;
        (full, deadline)
    }

    /// Requests currently waiting for a worker, across all shards.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Total publisher-lock acquisitions on the snapshot cell so far.
    /// Flat across a stretch of traffic at a constant version ⇒ that
    /// stretch never took a lock to reach the dataset.
    pub fn snapshot_lock_count(&self) -> u64 {
        self.shared.snapshot.publisher_lock_count()
    }

    /// Emits latency histograms, outcome counters, cache and admission
    /// statistics as JSONL trace events, plus the snapshot pool's
    /// counter gauges — the full `sj-obs` vocabulary for one service
    /// run.
    pub fn emit_metrics(&self, sink: &mut TraceSink) {
        self.metrics().emit(sink);
        let (hits, misses, len) = self.cache_stats();
        sink.emit(
            "service/cache",
            0,
            &[("hits", hits), ("misses", misses), ("resident", len as u64)],
        );
        sink.emit(
            "service/admission",
            0,
            &[
                ("admitted", self.shared.queue.admitted_count()),
                ("shed_queue_full", self.shared.queue.shed_full_count()),
                ("stolen", self.shared.queue.stolen_count()),
            ],
        );
        let mut reg = sj_obs::CounterRegistry::new();
        self.shared.snapshot.load().pool.export_counters(&mut reg);
        sink.emit("service/pool", 0, reg.as_counters());
    }

    /// Stops admitting work; workers drain the backlog and exit. Called
    /// automatically on drop.
    pub fn close(&self) {
        self.shared.queue.close();
    }
}

impl Drop for SpatialService {
    fn drop(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Builds a complete snapshot — pool, relations, trees — on a fresh
/// paper-geometry disk. Deterministic given the tuple sets, so replay
/// validation can reconstruct any version from its update history.
fn build_state(
    config: &ServiceConfig,
    r_tuples: &[(u64, Geometry)],
    s_tuples: &[(u64, Geometry)],
    world: Rect,
    version: u64,
) -> DataState {
    let mut pool = BufferPool::new(Disk::new(DiskConfig::paper()), config.pool_capacity);
    let r = StoredRelation::build(&mut pool, r_tuples, config.record_size, Layout::Clustered);
    let s = StoredRelation::build(&mut pool, s_tuples, config.record_size, Layout::Clustered);
    let r_tree = build_tree(&mut pool, &r, config);
    let s_tree = build_tree(&mut pool, &s, config);
    DataState {
        pool,
        r,
        s,
        r_tree,
        s_tree,
        world,
        version,
    }
}

/// Scans `rel` and bulk-loads a clustered generalization tree over it.
fn build_tree(pool: &mut BufferPool, rel: &StoredRelation, config: &ServiceConfig) -> TreeRelation {
    let tuples = rel.scan(pool);
    let rt = RTree::bulk_load(RTreeConfig::with_fanout(config.fanout), tuples);
    TreeRelation::new(
        pool,
        rt.tree().clone(),
        config.record_size,
        Layout::Clustered,
    )
}

/// The worker main loop: drain a batch from the own shard (stealing
/// when idle), pin one snapshot for the whole batch, answer its
/// deadline sheds and cache hits first (phase 1), then compute the
/// misses (phase 2). Any panic is contained per job at the worker
/// boundary — a crashed request answers `WorkerPanicked` and the worker
/// moves on instead of dying (which would shrink the pool forever and
/// poison whatever lock it held).
fn worker_loop(shared: &Shared, worker: usize) {
    let metrics = Arc::clone(&shared.worker_metrics[worker]);
    let mut reader = shared.snapshot.reader();
    let batch_max = shared.config.batch_size.max(1);
    while let Some(batch) = shared.queue.pop_batch(worker, batch_max) {
        metrics.record_batch();
        let state = Arc::clone(reader.get(&shared.snapshot));
        let mut misses = Vec::with_capacity(batch.len());
        for job in batch {
            let reply_to = job.reply_to.clone();
            match catch_unwind(AssertUnwindSafe(|| {
                admit_job(shared, &metrics, &state, job)
            })) {
                Ok(Some(miss)) => misses.push(miss),
                Ok(None) => {}
                Err(_) => {
                    metrics.record_worker_panic();
                    let _ = reply_to.send(Err(Rejection::WorkerPanicked));
                }
            }
        }
        for miss in misses {
            let reply_to = miss.job.reply_to.clone();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                compute_job(shared, &metrics, &state, miss)
            }));
            if outcome.is_err() {
                metrics.record_worker_panic();
                let _ = reply_to.send(Err(Rejection::WorkerPanicked));
            }
        }
    }
}

/// Batch phase 1 for one job: shed it if its deadline expired, answer
/// it if the cache holds its reply (the lock-free path: snapshot
/// already pinned, one shard-local cache probe, atomic metrics), or
/// hand it to phase 2 as a [`Miss`].
fn admit_job(
    shared: &Shared,
    metrics: &WorkerMetrics,
    state: &DataState,
    job: Job,
) -> Option<Miss> {
    let queue_us = job.submitted.elapsed().as_micros() as u64;
    if let Some(deadline) = job.req.deadline_us {
        if queue_us > deadline {
            metrics.record_shed_deadline(queue_us);
            let _ = job
                .reply_to
                .send(Err(Rejection::DeadlineExceeded { queue_us }));
            return None;
        }
    }
    #[cfg(test)]
    if job.poison {
        let _shard = shared.cache.lock_shard_for_test(0);
        panic!("poison-pill job: worker dies holding a cache-shard lock"); // PANIC-OK: cfg(test) hook
    }
    let key = CacheKey::for_request(state.version, &job.req);
    if let Some(reply) = shared.cache.get(&key, key.fingerprint()) {
        metrics.record_completion(queue_us, 0, true);
        let _ = job.reply_to.send(Ok(Response {
            reply,
            cached: true,
            version: state.version,
            queue_us,
            exec_us: 0,
            attempts: 0,
            degraded: false,
        }));
        return None;
    }
    Some(Miss { job, key, queue_us })
}

/// Batch phase 2 for one miss: compute with the full retry/degradation
/// ladder against the batch's pinned snapshot, fill the cache, respond,
/// and record metrics — all shard-local or atomic.
fn compute_job(shared: &Shared, metrics: &WorkerMetrics, state: &DataState, miss: Miss) {
    let Miss { job, key, queue_us } = miss;
    let fingerprint = key.fingerprint();
    let started = Instant::now();
    let outcome = compute_with_retry(state, &shared.config, &job.req, fingerprint);
    let exec_us = started.elapsed().as_micros() as u64;
    match outcome {
        Ok(done) => {
            shared.cache.insert(key, fingerprint, done.reply.clone());
            metrics.record_completion(queue_us, exec_us, false);
            metrics.record_recovery(done.faulted_attempts, done.backoff_units, done.degraded);
            let _ = job.reply_to.send(Ok(Response {
                reply: done.reply,
                cached: false,
                version: state.version,
                queue_us,
                exec_us,
                attempts: done.attempts,
                degraded: done.degraded,
            }));
        }
        Err(failed) => {
            metrics.record_failed(failed.faulted_attempts, failed.backoff_units, queue_us);
            let _ = job.reply_to.send(Err(Rejection::Failed(failed.error)));
        }
    }
}

/// A computation that eventually succeeded, with its recovery footprint.
struct Computed {
    reply: Reply,
    /// Total compute attempts, including the successful one.
    attempts: u32,
    /// Attempts aborted by a storage fault.
    faulted_attempts: u32,
    /// Model-time backoff units spent between attempts.
    backoff_units: u64,
    /// True when the resilient nested-loop fallback produced the reply.
    degraded: bool,
}

/// A request that faulted on every attempt, degraded fallback included.
struct Exhausted {
    error: StorageError,
    faulted_attempts: u32,
    backoff_units: u64,
}

/// Runs `req` with the full fail-stop recovery ladder: up to
/// `retry_attempts` tries of the requested computation (each on a fresh
/// shard with its own deterministic injector stream, exponential
/// model-time backoff between them), then — for joins — one resilient
/// degraded nested-loop pass, then typed failure. Backoff is accounted
/// in model units, not slept: the simulated disk has no wall-clock to
/// wait out.
fn compute_with_retry(
    state: &DataState,
    config: &ServiceConfig,
    req: &Request,
    fingerprint: u64,
) -> Result<Computed, Exhausted> {
    let max_attempts = config.retry_attempts.max(1);
    let mut attempts = 0u32;
    let mut faulted_attempts = 0u32;
    let mut backoff_units = 0u64;
    let error = loop {
        attempts += 1;
        let faults = attempt_faults(config, state.version, fingerprint, attempts);
        match try_compute(state, config, req, faults) {
            Ok(reply) => {
                return Ok(Computed {
                    reply,
                    attempts,
                    faulted_attempts,
                    backoff_units,
                    degraded: false,
                })
            }
            Err(e) => {
                faulted_attempts += 1;
                if attempts >= max_attempts {
                    break e;
                }
                // Exponential model-time backoff: 1, 2, 4, … units.
                backoff_units += 1u64 << (attempts - 1).min(16);
            }
        }
    };
    // Graceful degradation for joins: every fail-stop attempt above
    // aborts on its *first* fault, so at high fault rates no strategy —
    // nested loop included — can finish a whole attempt. The degraded
    // pass instead retries each record read individually (the faulted
    // page is non-resident, so a retry re-draws from the injector
    // stream) and joins in memory: exact result, degraded cost profile.
    if matches!(req.kind, QueryKind::Join { .. }) {
        attempts += 1;
        let faults = attempt_faults(config, state.version, fingerprint, attempts);
        match try_degraded_join(state, config, req.theta, faults) {
            Ok(reply) => {
                return Ok(Computed {
                    reply,
                    attempts,
                    faulted_attempts,
                    backoff_units,
                    degraded: true,
                })
            }
            Err(e) => {
                faulted_attempts += 1;
                return Err(Exhausted {
                    error: e,
                    faulted_attempts,
                    backoff_units,
                });
            }
        }
    }
    Err(Exhausted {
        error,
        faulted_attempts,
        backoff_units,
    })
}

/// The injector policy for one compute attempt, or `None` when fault
/// injection is disarmed. Seeds mix the configured base seed with the
/// dataset version, the request fingerprint, and the attempt number, so
/// every attempt draws an independent — but fully reproducible — stream.
fn attempt_faults(
    config: &ServiceConfig,
    version: u64,
    fingerprint: u64,
    attempt: u32,
) -> Option<FaultConfig> {
    if config.fault_read_prob <= 0.0 && config.fault_write_prob <= 0.0 {
        return None;
    }
    Some(FaultConfig {
        seed: mix_seed(config.fault_seed, version, fingerprint, attempt),
        read_prob: config.fault_read_prob,
        write_prob: config.fault_write_prob,
        ..FaultConfig::default()
    })
}

/// splitmix64-style finalizer over the four seed components.
fn mix_seed(base: u64, version: u64, fingerprint: u64, attempt: u32) -> u64 {
    let mut z = base
        .wrapping_add(version.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(fingerprint.rotate_left(17))
        .wrapping_add(u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evaluates one request against `state` on a private cold shard,
/// optionally armed with a fault injector. Deterministic given
/// `(state.version, req, faults)`: the advisor seed is fixed, every
/// executor is deterministic, and results are sorted — so concurrent
/// execution, cached replays, and the sequential reference all agree
/// byte-for-byte. Fail-stop: the first storage fault aborts the attempt
/// with a typed error and nothing partial escapes.
fn try_compute(
    state: &DataState,
    config: &ServiceConfig,
    req: &Request,
    faults: Option<FaultConfig>,
) -> Result<Reply, StorageError> {
    let mut shard = state.pool.fork_view(config.shard_capacity);
    if let Some(fault_config) = faults {
        shard.set_fault_injector(Some(FaultInjector::new(fault_config)));
    }
    match &req.kind {
        QueryKind::Select { side, probe } => {
            let tree = match side {
                Side::R => &state.r_tree,
                Side::S => &state.s_tree,
            };
            // Batched descent through the relation's flattened child-MBR
            // snapshot (identical matches and counters to the scalar path).
            let outcome = sj_gentree::select::try_select_flat(
                &tree.tree,
                Some(&tree.flat),
                probe,
                req.theta,
                |node| tree.paged.try_touch(&mut shard, node).map(|_| ()),
            )?;
            let mut matches = outcome.matches;
            matches.sort_unstable();
            Ok(Reply::Select {
                matches: Arc::new(matches),
            })
        }
        QueryKind::Join { strategy } => {
            let chooser = auto_chooser(
                config.profile,
                &state.r,
                &state.s,
                config.selectivity_samples,
                config.seed,
            );
            let ops = JoinOperands::flat(&state.r, &state.s, state.world)
                .with_trees(&state.r_tree, &state.s_tree)
                .with_chooser(&chooser);
            let mut exec = match strategy.executor(&ops) {
                Some(exec) => exec,
                // Absent operands are a construction bug, not a storage
                // fault; the service always supplies both operand kinds.
                None => unreachable!("operands cover every strategy"), // PANIC-OK: logic error
            };
            let run = exec.try_execute(&JoinRequest::new(req.theta), &mut shard)?;
            let mut pairs = run.pairs;
            pairs.sort_unstable();
            Ok(Reply::Join {
                pairs: Arc::new(pairs),
                resolved: exec.resolved_strategy(),
            })
        }
    }
}

/// The degraded join pass: scan both relations with per-record-read
/// retries, then nested-loop in memory. Same exact match set as every
/// strategy executor (results sorted), but it survives fault rates
/// where fail-stop whole-attempt execution cannot — a read only fails
/// the pass after [`DEGRADED_READ_RETRIES`] consecutive faulted draws.
fn try_degraded_join(
    state: &DataState,
    config: &ServiceConfig,
    theta: ThetaOp,
    faults: Option<FaultConfig>,
) -> Result<Reply, StorageError> {
    let mut shard = state.pool.fork_view(config.shard_capacity);
    if let Some(fault_config) = faults {
        shard.set_fault_injector(Some(FaultInjector::new(fault_config)));
    }
    let r = resilient_scan(&state.r, &mut shard)?;
    let s = resilient_scan(&state.s, &mut shard)?;
    let mut pairs = Vec::new();
    for (r_id, r_geom) in &r {
        for (s_id, s_geom) in &s {
            if theta.eval(r_geom, s_geom) {
                pairs.push((*r_id, *s_id));
            }
        }
    }
    pairs.sort_unstable();
    Ok(Reply::Join {
        pairs: Arc::new(pairs),
        resolved: Strategy::NestedLoop,
    })
}

/// Reads every tuple of `rel`, retrying each record read up to
/// [`DEGRADED_READ_RETRIES`] times. A faulted fetch leaves the page
/// non-resident, so every retry performs a fresh physical read and
/// draws the next value from the deterministic injector stream.
fn resilient_scan(
    rel: &StoredRelation,
    shard: &mut BufferPool,
) -> Result<Vec<(u64, Geometry)>, StorageError> {
    let mut tuples = Vec::with_capacity(rel.len());
    for i in 0..rel.len() {
        let mut outcome = rel.try_read_at(shard, i);
        let mut tries = 1;
        while outcome.is_err() && tries < DEGRADED_READ_RETRIES {
            outcome = rel.try_read_at(shard, i);
            tries += 1;
        }
        tuples.push(outcome?);
    }
    Ok(tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geom::{Point, ThetaOp};
    use sj_joins::Strategy;

    fn grid_tuples(n: usize, step: f64, id0: u64) -> Vec<(u64, Geometry)> {
        (0..n * n)
            .map(|i| {
                (
                    id0 + i as u64,
                    Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
                )
            })
            .collect()
    }

    fn world() -> Rect {
        Rect::from_bounds(0.0, 0.0, 64.0, 64.0)
    }

    fn small_service(config: ServiceConfig) -> SpatialService {
        SpatialService::start(
            config,
            &grid_tuples(5, 10.0, 0),
            &grid_tuples(5, 10.0, 500),
            world(),
        )
    }

    #[test]
    fn select_matches_exhaustive_reference() {
        let svc = small_service(ServiceConfig::default());
        let probe = Geometry::Point(Point::new(20.0, 20.0));
        let theta = ThetaOp::WithinDistance(15.0);
        let resp = svc
            .call(Request::select(Side::R, probe.clone(), theta))
            .expect("no shedding at idle");
        let Reply::Select { matches } = &resp.reply else {
            panic!("select reply expected");
        };
        // Reference: exhaustive θ-test over the same tree.
        let state = svc.shared.snapshot.load();
        let mut want =
            sj_gentree::select::select_exhaustive(&state.r_tree.tree, &probe, theta).matches;
        want.sort_unstable();
        assert_eq!(**matches, want);
        assert!(!matches.is_empty(), "probe must hit something");
    }

    #[test]
    fn join_matches_direct_execution_for_every_strategy() {
        let svc = small_service(ServiceConfig::default());
        let theta = ThetaOp::Overlaps;
        let want = {
            let Reply::Join { pairs, .. } =
                svc.execute_reference(&Request::join(Strategy::NestedLoop, theta))
            else {
                panic!("join reply expected");
            };
            pairs
        };
        for strategy in Strategy::ALL.into_iter().chain([Strategy::Auto]) {
            let resp = svc
                .call(Request::join(strategy, theta))
                .expect("no shedding at idle");
            let Reply::Join { pairs, resolved } = &resp.reply else {
                panic!("join reply expected");
            };
            assert_eq!(*pairs, want, "{} diverges", strategy.name());
            assert_ne!(*resolved, Strategy::Auto, "auto must resolve");
        }
    }

    #[test]
    fn unsupported_strategy_theta_pairs_are_rejected_at_submit() {
        let svc = small_service(ServiceConfig::default());
        let theta = ThetaOp::DirectionOf(sj_geom::Direction::North);
        let err = svc
            .submit(Request::join(Strategy::Grid, theta))
            .expect_err("grid cannot run directional joins");
        assert_eq!(err, Rejection::UnsupportedTheta);
        // Auto with the same θ succeeds by resolving to a capable
        // strategy.
        let resp = svc.call(Request::join(Strategy::Auto, theta)).expect("ok");
        let Reply::Join { resolved, .. } = &resp.reply else {
            panic!("join reply expected");
        };
        assert!(resolved.supports(theta));
    }

    #[test]
    fn repeated_queries_hit_the_cache_and_updates_invalidate() {
        let svc = small_service(ServiceConfig::default());
        let probe = Geometry::Point(Point::new(0.0, 0.0));
        let theta = ThetaOp::WithinDistance(5.0);
        let req = Request::select(Side::R, probe, theta);

        let first = svc.call(req.clone()).expect("ok");
        assert!(!first.cached);
        let second = svc.call(req.clone()).expect("ok");
        assert!(second.cached, "identical query must be cache-served");
        assert_eq!(first.reply, second.reply);
        assert!(svc.cache_hit_rate() > 0.0);

        // Insert a tuple right at the probe: the cached result is stale
        // and must not be served.
        let v = svc.update(&[(Side::R, 9999, Geometry::Point(Point::new(1.0, 1.0)))]);
        assert_eq!(v, 1);
        let third = svc.call(req).expect("ok");
        assert!(!third.cached, "version bump must invalidate");
        assert_eq!(third.version, 1);
        let (Reply::Select { matches: before }, Reply::Select { matches: after }) =
            (&second.reply, &third.reply)
        else {
            panic!("select replies expected");
        };
        assert_eq!(after.len(), before.len() + 1);
        assert!(after.contains(&9999));
    }

    #[test]
    fn cache_hits_never_touch_the_publisher_lock() {
        // THE tentpole property: once warm, a cache-hit request touches
        // the pinned snapshot (atomic epoch compare) and one shard-local
        // cache probe — never the snapshot publisher mutex. The
        // publisher lock counter must stay exactly flat across a
        // stretch of hit traffic.
        let svc = small_service(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let req = Request::select(
            Side::R,
            Geometry::Point(Point::new(20.0, 20.0)),
            ThetaOp::WithinDistance(15.0),
        );
        svc.call(req.clone()).expect("warm the cache");
        let baseline = svc.snapshot_lock_count();
        for _ in 0..200 {
            let resp = svc.call(req.clone()).expect("ok");
            assert!(resp.cached, "warm identical query must hit");
        }
        assert_eq!(
            svc.snapshot_lock_count(),
            baseline,
            "cache-hit traffic must never acquire the snapshot publisher lock"
        );
        let m = svc.metrics();
        assert!(m.served_from_cache >= 200);
        assert_eq!(m.cache_hit_latency_us.count(), m.served_from_cache);
        assert!(m.batches > 0, "every wakeup must account a batch");
    }

    #[test]
    fn full_queue_sheds_at_admission() {
        let config = ServiceConfig {
            workers: 1,
            queue_depth: 1,
            cache_capacity: 0, // every request computes
            batch_size: 1,     // no batching: the backlog must overflow
            ..ServiceConfig::default()
        };
        let svc = SpatialService::start(
            config,
            &grid_tuples(12, 4.0, 0),
            &grid_tuples(12, 4.0, 5000),
            world(),
        );
        // Submissions land microseconds apart; each nested-loop join
        // over 144×144 tuples takes far longer, so the depth-1 queue
        // must overflow.
        let receivers: Vec<_> = (0..12)
            .map(|_| svc.submit(Request::join(Strategy::NestedLoop, ThetaOp::Overlaps)))
            .collect();
        let shed = receivers.iter().filter(|r| r.is_err()).count();
        assert!(shed > 0, "expected queue-full shedding");
        for rx in receivers.into_iter().flatten() {
            assert!(rx.recv().expect("worker responds").is_ok());
        }
        assert_eq!(svc.shed_counts().0, shed as u64);
    }

    #[test]
    fn expired_deadlines_shed_at_dequeue() {
        let config = ServiceConfig {
            workers: 1,
            queue_depth: 64,
            cache_capacity: 0,
            ..ServiceConfig::default()
        };
        let svc = SpatialService::start(
            config,
            &grid_tuples(12, 4.0, 0),
            &grid_tuples(12, 4.0, 5000),
            world(),
        );
        // Build a backlog of slow joins, then queue deadline-1µs
        // requests behind it: by the time a worker reaches them their
        // budget is long gone.
        let slow: Vec<_> = (0..3)
            .map(|_| {
                svc.submit(Request::join(Strategy::NestedLoop, ThetaOp::Overlaps))
                    .expect("queue has room")
            })
            .collect();
        let dead: Vec<_> = (0..3)
            .map(|_| {
                svc.submit(
                    Request::select(
                        Side::R,
                        Geometry::Point(Point::new(0.0, 0.0)),
                        ThetaOp::Overlaps,
                    )
                    .with_deadline_us(1),
                )
                .expect("queue has room")
            })
            .collect();
        for rx in slow {
            assert!(rx.recv().expect("worker responds").is_ok());
        }
        let mut sheds = 0;
        for rx in dead {
            match rx.recv().expect("worker responds") {
                Err(Rejection::DeadlineExceeded { queue_us }) => {
                    assert!(queue_us > 1);
                    sheds += 1;
                }
                Ok(_) => {}
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
        }
        assert!(sheds > 0, "expected deadline shedding behind the backlog");
        assert_eq!(svc.shed_counts().1, sheds as u64);
        assert_eq!(svc.metrics().shed_deadline, sheds as u64);
    }

    #[test]
    fn worker_panic_is_contained_and_the_pool_keeps_serving() {
        // The poison-pill job panics while holding a cache-shard lock —
        // the worst case: a dead worker AND a poisoned mutex. The
        // single-worker service must contain the panic, answer the
        // poisoned request with `WorkerPanicked`, recover the lock, and
        // keep serving (including through that same cache shard).
        let svc = small_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let rx = svc.submit_poisoned();
        assert!(matches!(
            rx.recv().expect("worker must answer"),
            Err(Rejection::WorkerPanicked)
        ));
        let resp = svc
            .call(Request::select(
                Side::R,
                Geometry::Point(Point::new(20.0, 20.0)),
                ThetaOp::WithinDistance(15.0),
            ))
            .expect("the worker survived the panic");
        assert!(!resp.reply.is_empty());
        let m = svc.metrics();
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn injected_faults_retry_to_the_exact_fault_free_result() {
        let config = ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            fault_read_prob: 0.02,
            fault_seed: 0xFEED,
            retry_attempts: 3,
            ..ServiceConfig::default()
        };
        let svc = small_service(config);
        let mut completed = 0u64;
        let mut failed = 0u64;
        for i in 0..40 {
            let d = 5.0 + f64::from(i) * 0.37;
            let req = Request::join(Strategy::Sweep, ThetaOp::WithinDistance(d));
            match svc.call(req.clone()) {
                Ok(resp) => {
                    completed += 1;
                    assert!(resp.attempts >= 1);
                    let reference = svc.execute_reference(&req);
                    let (Reply::Join { pairs: got, .. }, Reply::Join { pairs: want, .. }) =
                        (&resp.reply, &reference)
                    else {
                        panic!("join replies expected");
                    };
                    assert_eq!(got, want, "Ok result must match fault-free replay exactly");
                    if !resp.degraded {
                        assert_eq!(resp.reply, reference);
                    }
                }
                Err(Rejection::Failed(e)) => {
                    failed += 1;
                    assert!(!e.kind().is_empty(), "failures carry a typed error");
                }
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
        }
        assert_eq!(completed + failed, 40);
        let m = svc.metrics();
        assert_eq!(m.completed, completed);
        assert_eq!(m.failed, failed);
        assert!(
            m.injected_faults > 0,
            "a 2% read-fault rate over 40 sweep joins must inject something"
        );
        assert!(completed > 0, "retries must rescue at least some requests");
    }

    #[test]
    fn fault_outcomes_are_deterministic_across_identical_services() {
        let run = || {
            let config = ServiceConfig {
                workers: 1,
                cache_capacity: 0,
                fault_read_prob: 0.03,
                fault_seed: 0xBEEF,
                retry_attempts: 2,
                ..ServiceConfig::default()
            };
            let svc = small_service(config);
            let mut outcomes = Vec::new();
            for i in 0..20 {
                let d = 4.0 + f64::from(i) * 0.51;
                let req = Request::join(Strategy::Sweep, ThetaOp::WithinDistance(d));
                outcomes.push(match svc.call(req) {
                    Ok(resp) => (true, resp.attempts, resp.degraded, resp.reply.len()),
                    Err(Rejection::Failed(_)) => (false, 0, false, 0),
                    Err(other) => panic!("unexpected rejection {other:?}"),
                });
            }
            (outcomes, svc.metrics().injected_faults)
        };
        assert_eq!(
            run(),
            run(),
            "same seeds and request stream must replay the same fault trace"
        );
    }

    #[test]
    fn heavy_fault_rates_degrade_to_the_resilient_nested_loop() {
        // At a 20% read-fault rate with a single configured attempt,
        // fail-stop execution (which aborts on the first fault) almost
        // never survives — but the degraded pass retries each record
        // read individually and must rescue requests *exactly*: every
        // degraded reply matches the fault-free reference.
        let config = ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            fault_read_prob: 0.2,
            fault_seed: 0x5EED,
            retry_attempts: 1,
            ..ServiceConfig::default()
        };
        let svc = small_service(config);
        let mut degraded = 0u64;
        for i in 0..10 {
            let d = 5.0 + f64::from(i) * 0.7;
            let req = Request::join(Strategy::Tree, ThetaOp::WithinDistance(d));
            match svc.call(req.clone()) {
                Ok(resp) => {
                    if resp.degraded {
                        degraded += 1;
                        let reference = svc.execute_reference(&req);
                        let (Reply::Join { pairs: got, .. }, Reply::Join { pairs: want, .. }) =
                            (&resp.reply, &reference)
                        else {
                            panic!("join replies expected");
                        };
                        assert_eq!(got, want, "degraded replies must still be exact");
                    }
                }
                Err(Rejection::Failed(_)) => {}
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
        }
        assert!(
            degraded > 0,
            "heavy fault rates must exercise the degraded path"
        );
        assert_eq!(svc.metrics().degraded, degraded);
    }

    #[test]
    fn total_fault_saturation_yields_a_typed_failure() {
        // Every physical read faults: all retry attempts AND the
        // degraded resilient pass (whose per-read retries all re-draw
        // faults at probability 1.0) fail, so the request must come
        // back as a typed `Rejection::Failed` — never a panic, never a
        // partial result.
        let config = ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            fault_read_prob: 1.0,
            fault_seed: 7,
            retry_attempts: 2,
            ..ServiceConfig::default()
        };
        let svc = small_service(config);
        let err = svc
            .call(Request::join(Strategy::Tree, ThetaOp::Overlaps))
            .expect_err("nothing can survive a 100% fault rate");
        let Rejection::Failed(e) = err else {
            panic!("expected Failed, got {err:?}");
        };
        assert_eq!(e.kind(), "injected_fault");
        let m = svc.metrics();
        assert_eq!(m.failed, 1);
        // Two configured attempts plus the degraded fallback all faulted.
        assert_eq!(m.injected_faults, 3);
        assert_eq!(m.degraded, 0, "a failed fallback is not a degradation");
        assert!(m.retry_backoff_units > 0, "retries must charge backoff");
    }

    #[test]
    fn metrics_emit_the_service_trace_vocabulary() {
        let svc = small_service(ServiceConfig::default());
        let req = Request::select(
            Side::R,
            Geometry::Point(Point::new(0.0, 0.0)),
            ThetaOp::Overlaps,
        );
        svc.call(req.clone()).expect("ok");
        svc.call(req).expect("ok");
        let mut sink = TraceSink::vec();
        svc.emit_metrics(&mut sink);
        let spans: Vec<&str> = sink.events().iter().map(|e| e.span.as_str()).collect();
        for want in [
            "service/latency_us",
            "service/queue_wait_us",
            "service/exec_us",
            "service/cache_hit_us",
            "service/summary",
            "service/cache",
            "service/admission",
            "service/pool",
        ] {
            assert!(spans.contains(&want), "missing span {want}");
        }
        let m = svc.metrics();
        assert_eq!(m.completed, 2);
        assert_eq!(m.served_from_cache, 1);
        assert_eq!(m.latency_us.count(), 2);
        assert!(m.batches >= 1, "wakeups must be accounted as batches");
        // The admission event carries the steal counter.
        let admission = sink
            .events()
            .iter()
            .find(|e| e.span == "service/admission")
            .expect("admission event");
        assert!(admission.counters.iter().any(|(k, _)| *k == "stolen"));
        // The pool gauge event carries the new capacity counter.
        let pool_event = sink
            .events()
            .iter()
            .find(|e| e.span == "service/pool")
            .expect("pool event");
        assert!(pool_event
            .counters
            .iter()
            .any(|(k, v)| *k == "bufferpool.capacity" && *v > 0));
    }
}
