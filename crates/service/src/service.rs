//! The spatial query service: a shared-nothing worker pool over
//! buffer-pool shards, fed by the per-worker [`ShardedQueue`],
//! answering from the fingerprint-sharded [`CacheShards`] when it can.
//!
//! ## Concurrency model — no shared lock on the hot path
//!
//! The dataset (master [`BufferPool`], stored relations, generalization
//! trees, version) is an **immutable snapshot** published through a
//! [`SnapshotCell`]. Each worker holds a [`SnapshotReader`]: touching
//! the dataset is one atomic epoch compare in the steady state, so
//! requests never block on — or even observe — other requests. Per
//! batch, a worker pins one snapshot and executes on a private cold
//! shard forked from it ([`BufferPool::fork_view`]), so index builds
//! and page I/O during query execution never touch shared frames.
//!
//! Writes are typed [`WriteBatch`]es committed by
//! [`SpatialService::commit`] entirely off the hot path. The default
//! [`ApplyMode::Incremental`] path forks the current pool (the disk is
//! page-granular copy-on-write, so the fork shares every untouched
//! page), applies each mutation to cloned relation/tree handles —
//! touching only the pages the batch dirties — and evolves the paged
//! generalization trees against the in-memory R-trees
//! ([`TreeRelation::try_evolve`]). The batch's redo record is appended
//! to the [`WriteAheadLog`] *before* apply and synced *before* publish:
//! the sync is the commit point, a sync fault aborts the commit with a
//! typed error and nothing partial is ever visible. In-flight requests
//! keep computing against the snapshot they pinned; its `version` tags
//! their responses and cache entries, and invalidation is fine-grained:
//! only cache entries whose [`QueryRegion`] intersects the batch's
//! touched MBRs are dropped ([`CacheShards::purge_region`]); the rest
//! are re-stamped to the new version and keep serving hits.
//!
//! Admission is sharded per worker (round-robin enqueue, full-shard
//! fallover, batched dequeue, work stealing), the result cache is
//! sharded by key fingerprint, and metrics are per-worker atomics
//! merged on export — so a cache-hit request costs exactly one
//! statistically uncontended shard lock and zero global ones (the
//! `cache_hits_never_touch_the_publisher_lock` test pins this down).
//! Workers drain up to [`ServiceConfig::batch_size`] requests per
//! wakeup and answer the batch's expired deadlines and cache hits
//! before running any executor.
//!
//! ## Fail-stop fault handling
//!
//! Storage faults (injected for chaos testing, or real) surface as
//! typed [`StorageError`]s from every compute path. The worker retries
//! a faulted request up to [`ServiceConfig::retry_attempts`] times with
//! exponential model-time backoff; each attempt arms its shard with a
//! fresh deterministic injector stream (seeded from the fault seed,
//! dataset version, request fingerprint, and attempt number), so
//! transient faults really are transient and identical runs replay
//! identical fault traces. A join that exhausts its budget degrades to
//! a *resilient* nested-loop pass: both relations are scanned with
//! per-record-read retries (a faulted read leaves the page non-resident,
//! so each retry re-draws from the injector stream), which survives
//! fault rates that would abort any fail-stop whole-attempt strategy.
//! Worker panics are contained with `catch_unwind`, and every lock in
//! the crate recovers from poisoning, so one crashed request never
//! takes the service down. Snapshot pools never carry an injector:
//! updates and reference computations are always fault-free.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use sj_core::advisor::{auto_chooser, Operation, WorkloadProfile};
use sj_costmodel::{Distribution, ModelParams};
use sj_gentree::rtree::{RTree, RTreeConfig};
use sj_geom::{codec, Bounded, Geometry, Rect, ThetaOp};
use sj_joins::{JoinOperands, JoinRequest, StoredRelation, Strategy, TreeRelation};
use sj_obs::TraceSink;
use sj_storage::{
    BufferPool, Disk, DiskConfig, FaultConfig, FaultInjector, IoStats, Layout, StorageError,
    WriteAheadLog,
};

use crate::admission::ShardedQueue;
use crate::cache::{CacheKey, CacheShards};
use crate::metrics::{ServiceMetrics, WorkerMetrics, WriteMetrics};
use crate::request::{
    CommitReceipt, QueryKind, Rejection, Reply, Request, Response, ServiceResult, Side,
};
use crate::snapshot::SnapshotCell;
use sj_joins::{ApplyMode, Mutation, MutationOutcome, TouchedRegions, WriteBatch};

/// Per-record-read retries inside the degraded nested-loop pass. Each
/// retry of a faulted read re-draws from the deterministic injector
/// stream (the failed fetch left the page non-resident), so at read
/// fault probability p a record survives with probability `1 - p⁴` —
/// the resilience that keeps the service *degraded* instead of *down*
/// at fault rates where every fail-stop strategy attempt aborts.
const DEGRADED_READ_RETRIES: u32 = 4;

/// Tuning knobs for [`SpatialService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads executing requests (also the number of admission
    /// queue shards and result cache shards).
    pub workers: usize,
    /// Total admission depth across all shards; submissions beyond it
    /// are shed.
    pub queue_depth: usize,
    /// Result-cache entries across all shards; 0 disables caching.
    pub cache_capacity: usize,
    /// Frames of the master buffer pool (builds and updates).
    pub pool_capacity: usize,
    /// Frames of each worker's forked shard.
    pub shard_capacity: usize,
    /// On-disk record size for relations and trees.
    pub record_size: usize,
    /// Generalization-tree (R-tree) fan-out.
    pub fanout: usize,
    /// Sample pairs per advisor selectivity estimate for `Auto`.
    pub selectivity_samples: usize,
    /// Seed for the advisor's estimator — fixed, so identical requests
    /// against the same version resolve to the same strategy.
    pub seed: u64,
    /// Base workload profile the advisor scores (`operation` and
    /// `selectivity` are overridden per request).
    pub profile: WorkloadProfile,
    /// Probability that a physical page read on a worker shard faults;
    /// 0.0 (the default) disarms injection entirely.
    pub fault_read_prob: f64,
    /// Probability that a physical page write on a worker shard faults.
    pub fault_write_prob: f64,
    /// Base seed of the fault-injection streams. Each attempt derives
    /// its own stream from this seed, the dataset version, the request
    /// fingerprint, and the attempt number — deterministic end to end.
    pub fault_seed: u64,
    /// Compute attempts per request before degradation/failure (min 1).
    pub retry_attempts: u32,
    /// Requests a worker drains per dequeue wakeup (min 1): the batch's
    /// deadline sheds and cache hits are answered before any executor
    /// runs, amortizing queue synchronization across the batch.
    pub batch_size: usize,
    /// How [`SpatialService::commit`] applies a batch to the snapshot:
    /// incremental page-level maintenance (the default) or the
    /// pre-redesign full scan-and-rebuild (kept as the bench baseline).
    pub apply_mode: ApplyMode,
    /// Store geometry as compressed v2 pages: relations carry a
    /// quantized sidecar (margin-governed refinement, decode-on-demand)
    /// and the paged trees use quantized node records. Query results
    /// stay byte-identical; the savings land in page I/O.
    pub compress_geometry: bool,
    /// Mutation-guard bound for compressed frames: an insert/upsert
    /// whose v2 frame exceeds this outcome as
    /// [`MutationOutcome::TooLarge`], so every committed geometry fits
    /// the sidecar and tree files (which are never sized below it).
    /// Ignored unless `compress_geometry` is set.
    pub quant_record_size: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_depth: 64,
            cache_capacity: 256,
            pool_capacity: 256,
            shard_capacity: 32,
            record_size: 300,
            fanout: 8,
            selectivity_samples: 64,
            seed: 0xC0FFEE,
            profile: WorkloadProfile {
                params: ModelParams::paper(),
                distribution: Distribution::Uniform,
                selectivity: 1e-6,
                updates_per_query: 0.0,
                operation: Operation::Join,
            },
            fault_read_prob: 0.0,
            fault_write_prob: 0.0,
            fault_seed: 0,
            retry_attempts: 3,
            batch_size: 8,
            apply_mode: ApplyMode::Incremental,
            compress_geometry: false,
            quant_record_size: 160,
        }
    }
}

/// One immutable, version-tagged dataset snapshot. Workers pin a
/// snapshot per batch through their [`SnapshotReader`]; updates build
/// the next one from scratch and publish it atomically.
struct DataState {
    pool: BufferPool,
    r: StoredRelation,
    s: StoredRelation,
    r_tree: TreeRelation,
    s_tree: TreeRelation,
    /// In-memory R-trees mirroring the paged trees — the live-id
    /// authority for mutation outcomes and the structure incremental
    /// commits evolve the paged trees against.
    r_index: RTree,
    s_index: RTree,
    world: Rect,
    version: u64,
}

/// One queued unit of work.
struct Job {
    req: Request,
    submitted: Instant,
    reply_to: Sender<ServiceResult>,
    /// Test hook: makes the worker panic while holding a cache-shard
    /// lock, exercising panic containment and poison recovery end to
    /// end.
    #[cfg(test)]
    poison: bool,
}

impl Job {
    fn new(req: Request, reply_to: Sender<ServiceResult>) -> Self {
        Job {
            req,
            submitted: Instant::now(),
            reply_to,
            #[cfg(test)]
            poison: false,
        }
    }
}

/// A dequeued request that passed its deadline check and missed the
/// cache: phase 2 of the batch computes it.
struct Miss {
    job: Job,
    key: CacheKey,
    queue_us: u64,
}

/// State shared between the handle and the workers. Note what is *not*
/// here anymore: no dataset `RwLock`, no global cache mutex, no global
/// metrics mutex — every structure is either immutable, sharded, or
/// per-worker.
struct Shared {
    config: ServiceConfig,
    /// The current dataset snapshot (epoch-stamped publish/subscribe).
    snapshot: SnapshotCell<DataState>,
    /// The write-ahead log. Its mutex serializes writers only — never
    /// touched by the request path — and commit order IS log order.
    wal: Mutex<WriteAheadLog>,
    queue: ShardedQueue<Job>,
    cache: CacheShards,
    /// One lock-free metrics slab per worker, merged on export.
    worker_metrics: Vec<Arc<WorkerMetrics>>,
    /// Write-path counters (commits, WAL activity, apply I/O, cache
    /// invalidation precision).
    write_metrics: WriteMetrics,
}

/// A running multi-threaded spatial query service. Dropping the handle
/// closes the admission queue, drains the backlog, and joins the
/// workers.
pub struct SpatialService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl SpatialService {
    /// Builds the dataset (stored relations plus clustered
    /// generalization trees) on a fresh paper-geometry disk and spawns
    /// the worker pool.
    ///
    /// Empty relations are allowed: a shard-local instance may own no
    /// slice of one (or either) side of the data, in which case joins
    /// and selects simply return empty results and `Auto` dispatch skips
    /// selectivity sampling (the estimator needs tuples to draw).
    pub fn start(
        config: ServiceConfig,
        r_tuples: &[(u64, Geometry)],
        s_tuples: &[(u64, Geometry)],
        world: Rect,
    ) -> Self {
        let workers = config.workers.max(1);
        let state = build_state(&config, r_tuples, s_tuples, world, 0);
        let shared = Arc::new(Shared {
            config,
            snapshot: SnapshotCell::new(Arc::new(state)),
            wal: Mutex::new(WriteAheadLog::new()),
            queue: ShardedQueue::new(workers, config.queue_depth, config.batch_size.max(1)),
            cache: CacheShards::new(workers, config.cache_capacity),
            worker_metrics: (0..workers)
                .map(|_| Arc::new(WorkerMetrics::new()))
                .collect(),
            write_metrics: WriteMetrics::new(),
        });
        let workers = (0..workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, worker))
            })
            .collect();
        SpatialService { shared, workers }
    }

    /// Submits a request. Returns the response channel, or an immediate
    /// rejection when the θ-operator is unsupported by the named
    /// strategy or every admission shard is full.
    pub fn submit(&self, req: Request) -> Result<Receiver<ServiceResult>, Rejection> {
        if let QueryKind::Join { strategy } = &req.kind {
            if !strategy.supports(req.theta) {
                return Err(Rejection::UnsupportedTheta);
            }
        }
        let (tx, rx) = mpsc::channel();
        match self.shared.queue.try_push(Job::new(req, tx)) {
            Ok(()) => Ok(rx),
            Err(_) => Err(Rejection::QueueFull),
        }
    }

    /// Test hook: submits a job whose processing panics while holding
    /// a cache-shard lock — the worst case for lock poisoning.
    #[cfg(test)]
    fn submit_poisoned(&self) -> Receiver<ServiceResult> {
        let (tx, rx) = mpsc::channel();
        let mut job = Job::new(
            Request::join(Strategy::NestedLoop, sj_geom::ThetaOp::Overlaps),
            tx,
        );
        job.poison = true;
        self.shared
            .queue
            .try_push(job)
            .unwrap_or_else(|_| panic!("queue full in test")); // PANIC-OK: cfg(test) hook
        rx
    }

    /// Submits and blocks for the answer.
    pub fn call(&self, req: Request) -> ServiceResult {
        let rx = self.submit(req)?;
        rx.recv().unwrap_or(Err(Rejection::Closed))
    }

    /// Executes `req` synchronously on the calling thread — same
    /// computation as the workers but with *no* fault injector armed,
    /// bypassing queue, cache, and metrics. This is the fault-free
    /// sequential reference for replay validation: every `Ok` response
    /// a chaos run produces must carry a result identical to this.
    pub fn execute_reference(&self, req: &Request) -> Reply {
        let state = self.shared.snapshot.load();
        try_compute(&state, &self.shared.config, req, None)
            .unwrap_or_else(|e| panic!("reference compute failed: {e}")) // PANIC-OK: no injector armed
    }

    /// Commits a [`WriteBatch`] durably and atomically, off the hot
    /// path. The protocol, under the WAL lock (writers serialize with
    /// each other only; the queue keeps admitting and workers keep
    /// serving throughout):
    ///
    /// 1. Append the batch's redo record to the WAL tail.
    /// 2. Build the next snapshot per [`ServiceConfig::apply_mode`] —
    ///    incrementally on a copy-on-write fork of the current pool, or
    ///    by full rebuild. An apply fault rolls the tail back and aborts.
    /// 3. Sync the WAL — **the commit point**. A sync fault loses the
    ///    tail, aborts with [`Rejection::Failed`], and publishes
    ///    nothing: the service state is exactly as before the call.
    /// 4. Publish the snapshot in O(1) and invalidate the cache —
    ///    fine-grained (region-intersection) for incremental commits, a
    ///    blanket stale purge for rebuilds.
    ///
    /// Per-op results come back in the [`CommitReceipt`]: rejected
    /// operations (duplicate insert, missing-id delete, oversized
    /// geometry) carry typed [`MutationOutcome`]s and never abort the
    /// batch. Readers never block: in-flight requests finish against
    /// the snapshot they pinned.
    pub fn commit(&self, batch: &WriteBatch) -> Result<CommitReceipt, Rejection> {
        let mut wal = self
            .shared
            .wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let wal_lsn = wal.append(&batch.encode());
        let current = self.shared.snapshot.load();
        let applied = match build_next(&self.shared.config, &current, batch) {
            Ok(applied) => applied,
            Err(e) => {
                wal.rollback_tail();
                self.shared.write_metrics.record_aborted_commit();
                self.record_wal_gauges(&wal);
                return Err(Rejection::Failed(e));
            }
        };
        // The commit point: the redo record must be durable before the
        // snapshot becomes visible. sync() rolls the tail back itself
        // on a fault, so an aborted commit leaves no trace in the log.
        if let Err(e) = wal.sync() {
            self.shared.write_metrics.record_aborted_commit();
            self.record_wal_gauges(&wal);
            return Err(Rejection::Failed(e));
        }
        let version = applied.state.version;
        drop(current);
        self.shared.snapshot.publish(Arc::new(applied.state));
        let (cache_purged, cache_retained) = match self.shared.config.apply_mode {
            ApplyMode::Incremental => self.shared.cache.purge_region(version, &applied.touched),
            ApplyMode::Rebuild => {
                self.shared.cache.purge_stale(version);
                (0, 0)
            }
        };
        let applied_ops = applied.outcomes.iter().filter(|o| o.applied()).count() as u64;
        let rejected_ops = applied.outcomes.len() as u64 - applied_ops;
        self.shared.write_metrics.record_commit(
            applied_ops,
            rejected_ops,
            applied.io.physical_writes + applied.io.physical_reads,
            cache_purged as u64,
            cache_retained as u64,
        );
        self.record_wal_gauges(&wal);
        Ok(CommitReceipt {
            version,
            wal_lsn,
            outcomes: applied.outcomes,
            io: applied.io,
            cache_purged,
            cache_retained,
        })
    }

    /// Rebuilds a service from a seed dataset plus a WAL image: strict
    /// recovery parses the image (corruption is a typed
    /// [`StorageError::WalCorrupt`], never a wrong answer), drops any
    /// unsynced tail, and replays every durable batch in commit order —
    /// without re-logging — so the recovered service observes exactly
    /// the synced history's state and versions.
    pub fn recover(
        config: ServiceConfig,
        r_tuples: &[(u64, Geometry)],
        s_tuples: &[(u64, Geometry)],
        world: Rect,
        image: &[u8],
    ) -> Result<SpatialService, StorageError> {
        let (wal, payloads) = WriteAheadLog::recover(image)?;
        let batches = payloads
            .iter()
            .map(|p| WriteBatch::decode(p))
            .collect::<Result<Vec<_>, _>>()?;
        let svc = SpatialService::start(config, r_tuples, s_tuples, world);
        *svc.shared
            .wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = wal;
        for batch in &batches {
            svc.replay(batch)?;
        }
        Ok(svc)
    }

    /// Applies an already-durable batch (recovery replay): same apply
    /// and publish as [`commit`](Self::commit), no logging, no sync.
    fn replay(&self, batch: &WriteBatch) -> Result<(), StorageError> {
        let _wal = self
            .shared
            .wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let current = self.shared.snapshot.load();
        let applied = build_next(&self.shared.config, &current, batch)?;
        let version = applied.state.version;
        drop(current);
        self.shared.snapshot.publish(Arc::new(applied.state));
        match self.shared.config.apply_mode {
            ApplyMode::Incremental => {
                self.shared.cache.purge_region(version, &applied.touched);
            }
            ApplyMode::Rebuild => self.shared.cache.purge_stale(version),
        }
        Ok(())
    }

    /// The durable WAL image — magic header plus every synced frame,
    /// excluding any unsynced tail. This is the byte string crash
    /// recovery consumes ([`SpatialService::recover`]).
    pub fn wal_image(&self) -> Vec<u8> {
        self.shared
            .wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .durable_image()
    }

    /// Arms (or disarms) fault injection on WAL sync attempts — the
    /// chaos hook for crash-at-the-commit-point testing. The injector
    /// is consulted once per sync attempt with `FaultOp::Write` on
    /// `PageId(attempt)`.
    pub fn set_wal_fault_injector(&self, injector: Option<FaultInjector>) {
        self.shared
            .wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .set_fault_injector(injector);
    }

    /// The write path's counters (commits, aborts, WAL gauges, apply
    /// I/O, cache invalidation precision).
    pub fn write_metrics(&self) -> &WriteMetrics {
        &self.shared.write_metrics
    }

    /// Mirrors the WAL's own counters into the write metrics gauges.
    fn record_wal_gauges(&self, wal: &WriteAheadLog) {
        self.shared.write_metrics.set_wal_gauges(
            wal.records(),
            wal.syncs(),
            wal.sync_failures(),
            wal.durable_bytes() as u64,
        );
    }

    /// Current dataset version (starts at 0, bumped per update batch).
    pub fn version(&self) -> u64 {
        self.shared.snapshot.load().version
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Aggregate latency/outcome metrics: per-worker atomic slabs
    /// merged at call time.
    pub fn metrics(&self) -> ServiceMetrics {
        let mut total = ServiceMetrics::new();
        for worker in &self.shared.worker_metrics {
            total.merge(&worker.snapshot());
        }
        total
    }

    /// `(hits, misses, resident entries)` summed over the cache shards.
    pub fn cache_stats(&self) -> (u64, u64, usize) {
        self.shared.cache.stats()
    }

    /// Result-cache hit rate over all lookups so far.
    pub fn cache_hit_rate(&self) -> f64 {
        self.shared.cache.hit_rate()
    }

    /// `(shed at admission, shed at deadline)` so far.
    pub fn shed_counts(&self) -> (u64, u64) {
        let full = self.shared.queue.shed_full_count();
        let deadline = self.metrics().shed_deadline;
        (full, deadline)
    }

    /// Requests currently waiting for a worker, across all shards.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Total publisher-lock acquisitions on the snapshot cell so far.
    /// Flat across a stretch of traffic at a constant version ⇒ that
    /// stretch never took a lock to reach the dataset.
    pub fn snapshot_lock_count(&self) -> u64 {
        self.shared.snapshot.publisher_lock_count()
    }

    /// Emits latency histograms, outcome counters, cache and admission
    /// statistics as JSONL trace events, plus the snapshot pool's
    /// counter gauges — the full `sj-obs` vocabulary for one service
    /// run.
    pub fn emit_metrics(&self, sink: &mut TraceSink) {
        self.metrics().emit(sink);
        let (hits, misses, len) = self.cache_stats();
        sink.emit(
            "service/cache",
            0,
            &[("hits", hits), ("misses", misses), ("resident", len as u64)],
        );
        sink.emit(
            "service/admission",
            0,
            &[
                ("admitted", self.shared.queue.admitted_count()),
                ("shed_queue_full", self.shared.queue.shed_full_count()),
                ("stolen", self.shared.queue.stolen_count()),
            ],
        );
        let mut reg = sj_obs::CounterRegistry::new();
        self.shared.snapshot.load().pool.export_counters(&mut reg);
        sink.emit("service/pool", 0, reg.as_counters());
        self.shared.write_metrics.emit(sink);
    }

    /// Stops admitting work; workers drain the backlog and exit. Called
    /// automatically on drop.
    pub fn close(&self) {
        self.shared.queue.close();
    }
}

impl Drop for SpatialService {
    fn drop(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Builds a complete snapshot — pool, relations, trees — on a fresh
/// paper-geometry disk. Deterministic given the tuple sets, so replay
/// validation can reconstruct any version from its update history.
fn build_state(
    config: &ServiceConfig,
    r_tuples: &[(u64, Geometry)],
    s_tuples: &[(u64, Geometry)],
    world: Rect,
    version: u64,
) -> DataState {
    let mut pool = BufferPool::new(Disk::new(DiskConfig::paper()), config.pool_capacity);
    let build_rel = |pool: &mut BufferPool, tuples: &[(u64, Geometry)]| {
        if config.compress_geometry {
            let qsize = StoredRelation::quant_record_size_for(tuples).max(config.quant_record_size);
            StoredRelation::build_compressed(
                pool,
                tuples,
                config.record_size,
                qsize,
                Layout::Clustered,
            )
        } else {
            StoredRelation::build(pool, tuples, config.record_size, Layout::Clustered)
        }
    };
    let r = build_rel(&mut pool, r_tuples);
    let s = build_rel(&mut pool, s_tuples);
    let (r_index, r_tree) = build_tree(&mut pool, &r, config);
    let (s_index, s_tree) = build_tree(&mut pool, &s, config);
    DataState {
        pool,
        r,
        s,
        r_tree,
        s_tree,
        r_index,
        s_index,
        world,
        version,
    }
}

/// Scans `rel` and bulk-loads a clustered generalization tree over it,
/// returning both the in-memory R-tree (kept live for incremental
/// maintenance) and its paged counterpart.
fn build_tree(
    pool: &mut BufferPool,
    rel: &StoredRelation,
    config: &ServiceConfig,
) -> (RTree, TreeRelation) {
    let tuples = rel.scan(pool);
    let rt = RTree::bulk_load(RTreeConfig::with_fanout(config.fanout), tuples);
    let paged = if config.compress_geometry {
        TreeRelation::new_compressed(
            pool,
            rt.tree().clone(),
            config.quant_record_size,
            Layout::Clustered,
        )
    } else {
        TreeRelation::new(
            pool,
            rt.tree().clone(),
            config.record_size,
            Layout::Clustered,
        )
    };
    (rt, paged)
}

/// A batch applied to (a fork of) the current snapshot, awaiting the
/// commit point.
struct Applied {
    state: DataState,
    outcomes: Vec<MutationOutcome>,
    touched: TouchedRegions,
    io: IoStats,
}

/// Builds the next snapshot from `current` plus `batch`, per the
/// configured apply mode.
fn build_next(
    config: &ServiceConfig,
    current: &DataState,
    batch: &WriteBatch,
) -> Result<Applied, StorageError> {
    match config.apply_mode {
        ApplyMode::Incremental => apply_incremental(config, current, batch),
        ApplyMode::Rebuild => apply_rebuild(config, current, batch),
    }
}

/// The incremental apply path: fork the current pool (page-granular
/// copy-on-write, so untouched pages are shared, not copied), apply
/// each mutation in batch order to cloned relation handles and
/// in-memory R-trees, then evolve each touched side's paged tree
/// in place ([`TreeRelation::try_evolve`]). Total physical I/O is
/// O(batch · tree height) pages, independent of relation size — the
/// receipt's `io` proves it per commit.
fn apply_incremental(
    config: &ServiceConfig,
    current: &DataState,
    batch: &WriteBatch,
) -> Result<Applied, StorageError> {
    let mut pool = current.pool.fork_view(config.pool_capacity);
    let mut r = current.r.clone();
    let mut s = current.s.clone();
    let mut r_index = current.r_index.clone();
    let mut s_index = current.s_index.clone();
    let mut world = current.world;
    let mut touched = TouchedRegions::default();
    let mut outcomes = Vec::with_capacity(batch.len());
    for (side, op) in &batch.ops {
        let (rel, index) = match side {
            Side::R => (&mut r, &mut r_index),
            Side::S => (&mut s, &mut s_index),
        };
        outcomes.push(apply_one(
            &mut pool,
            config,
            rel,
            index,
            *side,
            op,
            &mut touched,
            &mut world,
        )?);
    }
    // Evolve only the sides the batch actually changed; an untouched
    // side's paged tree is shared with the previous snapshot for free.
    let r_tree = if touched.r.is_some() {
        current
            .r_tree
            .try_evolve(&mut pool, r_index.tree(), config.record_size)?
    } else {
        current.r_tree.clone()
    };
    let s_tree = if touched.s.is_some() {
        current
            .s_tree
            .try_evolve(&mut pool, s_index.tree(), config.record_size)?
    } else {
        current.s_tree.clone()
    };
    let io = pool.stats();
    Ok(Applied {
        state: DataState {
            pool,
            r,
            s,
            r_tree,
            s_tree,
            r_index,
            s_index,
            world,
            version: current.version + 1,
        },
        outcomes,
        touched,
        io,
    })
}

/// One mutation against one side's stored relation and in-memory
/// R-tree. Outcomes are a pure function of the pre-state and the op —
/// presence checks go through the R-tree (the live-id authority) — so
/// WAL replay reproduces them exactly. Deletes are order-preserving
/// (`StoredRelation::try_delete` shifts positions, never swaps), which
/// keeps the tuple sequence identical to a sequential rebuild — the
/// invariant the linearizability property suite leans on.
/// Shared mutation-size screen for both apply paths: the exact frame
/// must fit the relation's record size, and — when compressed pages are
/// on — the v2 frame must fit the quant sidecar. Incremental and
/// rebuild applies must agree on this bound or replay validation
/// diverges.
fn geometry_too_large(config: &ServiceConfig, value: &Geometry) -> bool {
    codec::encoded_len(value) > config.record_size
        || (config.compress_geometry && codec::encoded_qlen(value) > config.quant_record_size)
}

#[allow(clippy::too_many_arguments)]
fn apply_one(
    pool: &mut BufferPool,
    config: &ServiceConfig,
    rel: &mut StoredRelation,
    index: &mut RTree,
    side: Side,
    op: &Mutation,
    touched: &mut TouchedRegions,
    world: &mut Rect,
) -> Result<MutationOutcome, StorageError> {
    match op {
        Mutation::Insert { id, value } => {
            if index.get(*id).is_some() {
                return Ok(MutationOutcome::DuplicateId);
            }
            if geometry_too_large(config, value) {
                return Ok(MutationOutcome::TooLarge);
            }
            rel.try_insert(pool, *id, value)?;
            index.insert(*id, value.clone());
            touched.touch_geometry(side, value);
            *world = world.union(&value.mbr());
            Ok(MutationOutcome::Inserted)
        }
        Mutation::Delete { id } => {
            let Some(old) = index.get(*id).map(Bounded::mbr) else {
                return Ok(MutationOutcome::MissingId);
            };
            rel.try_delete(pool, *id)?;
            index.remove(*id);
            touched.touch(side, &old);
            Ok(MutationOutcome::Deleted)
        }
        Mutation::Upsert { id, value } => {
            if geometry_too_large(config, value) {
                return Ok(MutationOutcome::TooLarge);
            }
            let replaced = match index.get(*id).map(Bounded::mbr) {
                Some(old) => {
                    rel.try_replace(pool, *id, value)?;
                    index.remove(*id);
                    touched.touch(side, &old);
                    true
                }
                None => {
                    rel.try_insert(pool, *id, value)?;
                    false
                }
            };
            index.insert(*id, value.clone());
            touched.touch_geometry(side, value);
            *world = world.union(&value.mbr());
            Ok(MutationOutcome::Upserted { replaced })
        }
    }
}

/// The pre-redesign apply path, kept as the bench baseline: scan both
/// relations through a read-only fork, apply the batch to the in-memory
/// tuple vectors (order-preserving, so it is the semantic oracle for
/// the incremental path), and rebuild everything on a fresh pool —
/// O(n) I/O regardless of batch size.
fn apply_rebuild(
    config: &ServiceConfig,
    current: &DataState,
    batch: &WriteBatch,
) -> Result<Applied, StorageError> {
    let mut view = current.pool.fork_view(config.pool_capacity);
    let mut r_tuples = current.r.try_scan(&mut view)?;
    let mut s_tuples = current.s.try_scan(&mut view)?;
    let mut world = current.world;
    let mut touched = TouchedRegions::default();
    let mut outcomes = Vec::with_capacity(batch.len());
    for (side, op) in &batch.ops {
        let tuples = match side {
            Side::R => &mut r_tuples,
            Side::S => &mut s_tuples,
        };
        outcomes.push(apply_in_memory(
            config,
            tuples,
            *side,
            op,
            &mut touched,
            &mut world,
        ));
    }
    let mut io = view.stats();
    let state = build_state(config, &r_tuples, &s_tuples, world, current.version + 1);
    io.merge(&state.pool.stats());
    Ok(Applied {
        state,
        outcomes,
        touched,
        io,
    })
}

/// [`apply_one`]'s semantics over a plain tuple vector: same outcomes,
/// same order discipline (in-place replace, shifting delete, appending
/// insert).
fn apply_in_memory(
    config: &ServiceConfig,
    tuples: &mut Vec<(u64, Geometry)>,
    side: Side,
    op: &Mutation,
    touched: &mut TouchedRegions,
    world: &mut Rect,
) -> MutationOutcome {
    let position = |tuples: &[(u64, Geometry)], id: u64| tuples.iter().position(|(t, _)| *t == id);
    match op {
        Mutation::Insert { id, value } => {
            if position(tuples, *id).is_some() {
                return MutationOutcome::DuplicateId;
            }
            if geometry_too_large(config, value) {
                return MutationOutcome::TooLarge;
            }
            touched.touch_geometry(side, value);
            *world = world.union(&value.mbr());
            tuples.push((*id, value.clone()));
            MutationOutcome::Inserted
        }
        Mutation::Delete { id } => {
            let Some(pos) = position(tuples, *id) else {
                return MutationOutcome::MissingId;
            };
            touched.touch_geometry(side, &tuples[pos].1);
            tuples.remove(pos);
            MutationOutcome::Deleted
        }
        Mutation::Upsert { id, value } => {
            if geometry_too_large(config, value) {
                return MutationOutcome::TooLarge;
            }
            touched.touch_geometry(side, value);
            *world = world.union(&value.mbr());
            match position(tuples, *id) {
                Some(pos) => {
                    touched.touch_geometry(side, &tuples[pos].1);
                    tuples[pos] = (*id, value.clone());
                    MutationOutcome::Upserted { replaced: true }
                }
                None => {
                    tuples.push((*id, value.clone()));
                    MutationOutcome::Upserted { replaced: false }
                }
            }
        }
    }
}

/// The worker main loop: drain a batch from the own shard (stealing
/// when idle), pin one snapshot for the whole batch, answer its
/// deadline sheds and cache hits first (phase 1), then compute the
/// misses (phase 2). Any panic is contained per job at the worker
/// boundary — a crashed request answers `WorkerPanicked` and the worker
/// moves on instead of dying (which would shrink the pool forever and
/// poison whatever lock it held).
fn worker_loop(shared: &Shared, worker: usize) {
    let metrics = Arc::clone(&shared.worker_metrics[worker]);
    let mut reader = shared.snapshot.reader();
    let batch_max = shared.config.batch_size.max(1);
    while let Some(batch) = shared.queue.pop_batch(worker, batch_max) {
        metrics.record_batch();
        let state = Arc::clone(reader.get(&shared.snapshot));
        let mut misses = Vec::with_capacity(batch.len());
        for job in batch {
            let reply_to = job.reply_to.clone();
            match catch_unwind(AssertUnwindSafe(|| {
                admit_job(shared, &metrics, &state, job)
            })) {
                Ok(Some(miss)) => misses.push(miss),
                Ok(None) => {}
                Err(_) => {
                    metrics.record_worker_panic();
                    let _ = reply_to.send(Err(Rejection::WorkerPanicked));
                }
            }
        }
        for miss in misses {
            let reply_to = miss.job.reply_to.clone();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                compute_job(shared, &metrics, &state, miss)
            }));
            if outcome.is_err() {
                metrics.record_worker_panic();
                let _ = reply_to.send(Err(Rejection::WorkerPanicked));
            }
        }
    }
}

/// Batch phase 1 for one job: shed it if its deadline expired, answer
/// it if the cache holds its reply (the lock-free path: snapshot
/// already pinned, one shard-local cache probe, atomic metrics), or
/// hand it to phase 2 as a [`Miss`].
fn admit_job(
    shared: &Shared,
    metrics: &WorkerMetrics,
    state: &DataState,
    job: Job,
) -> Option<Miss> {
    let queue_us = job.submitted.elapsed().as_micros() as u64;
    if let Some(deadline) = job.req.deadline_us {
        if queue_us > deadline {
            metrics.record_shed_deadline(queue_us);
            let _ = job
                .reply_to
                .send(Err(Rejection::DeadlineExceeded { queue_us }));
            return None;
        }
    }
    #[cfg(test)]
    if job.poison {
        let _shard = shared.cache.lock_shard_for_test(0);
        panic!("poison-pill job: worker dies holding a cache-shard lock"); // PANIC-OK: cfg(test) hook
    }
    let key = CacheKey::for_request(state.version, &job.req);
    if let Some(reply) = shared.cache.get(&key, key.fingerprint()) {
        metrics.record_completion(queue_us, 0, true);
        let _ = job.reply_to.send(Ok(Response {
            reply,
            cached: true,
            version: state.version,
            queue_us,
            exec_us: 0,
            attempts: 0,
            degraded: false,
        }));
        return None;
    }
    Some(Miss { job, key, queue_us })
}

/// Batch phase 2 for one miss: compute with the full retry/degradation
/// ladder against the batch's pinned snapshot, fill the cache, respond,
/// and record metrics — all shard-local or atomic.
fn compute_job(shared: &Shared, metrics: &WorkerMetrics, state: &DataState, miss: Miss) {
    let Miss { job, key, queue_us } = miss;
    let fingerprint = key.fingerprint();
    let started = Instant::now();
    let outcome = compute_with_retry(state, &shared.config, &job.req, fingerprint);
    let exec_us = started.elapsed().as_micros() as u64;
    match outcome {
        Ok(done) => {
            let region = CacheKey::region_for_request(&job.req);
            shared
                .cache
                .insert(key, fingerprint, done.reply.clone(), region);
            metrics.record_completion(queue_us, exec_us, false);
            metrics.record_recovery(done.faulted_attempts, done.backoff_units, done.degraded);
            let _ = job.reply_to.send(Ok(Response {
                reply: done.reply,
                cached: false,
                version: state.version,
                queue_us,
                exec_us,
                attempts: done.attempts,
                degraded: done.degraded,
            }));
        }
        Err(failed) => {
            metrics.record_failed(failed.faulted_attempts, failed.backoff_units, queue_us);
            let _ = job.reply_to.send(Err(Rejection::Failed(failed.error)));
        }
    }
}

/// A computation that eventually succeeded, with its recovery footprint.
struct Computed {
    reply: Reply,
    /// Total compute attempts, including the successful one.
    attempts: u32,
    /// Attempts aborted by a storage fault.
    faulted_attempts: u32,
    /// Model-time backoff units spent between attempts.
    backoff_units: u64,
    /// True when the resilient nested-loop fallback produced the reply.
    degraded: bool,
}

/// A request that faulted on every attempt, degraded fallback included.
struct Exhausted {
    error: StorageError,
    faulted_attempts: u32,
    backoff_units: u64,
}

/// Runs `req` with the full fail-stop recovery ladder: up to
/// `retry_attempts` tries of the requested computation (each on a fresh
/// shard with its own deterministic injector stream, exponential
/// model-time backoff between them), then — for joins — one resilient
/// degraded nested-loop pass, then typed failure. Backoff is accounted
/// in model units, not slept: the simulated disk has no wall-clock to
/// wait out.
fn compute_with_retry(
    state: &DataState,
    config: &ServiceConfig,
    req: &Request,
    fingerprint: u64,
) -> Result<Computed, Exhausted> {
    let max_attempts = config.retry_attempts.max(1);
    let mut attempts = 0u32;
    let mut faulted_attempts = 0u32;
    let mut backoff_units = 0u64;
    let error = loop {
        attempts += 1;
        let faults = attempt_faults(config, state.version, fingerprint, attempts);
        match try_compute(state, config, req, faults) {
            Ok(reply) => {
                return Ok(Computed {
                    reply,
                    attempts,
                    faulted_attempts,
                    backoff_units,
                    degraded: false,
                })
            }
            Err(e) => {
                faulted_attempts += 1;
                if attempts >= max_attempts {
                    break e;
                }
                // Exponential model-time backoff: 1, 2, 4, … units.
                backoff_units += 1u64 << (attempts - 1).min(16);
            }
        }
    };
    // Graceful degradation for joins: every fail-stop attempt above
    // aborts on its *first* fault, so at high fault rates no strategy —
    // nested loop included — can finish a whole attempt. The degraded
    // pass instead retries each record read individually (the faulted
    // page is non-resident, so a retry re-draws from the injector
    // stream) and joins in memory: exact result, degraded cost profile.
    if matches!(req.kind, QueryKind::Join { .. }) {
        attempts += 1;
        let faults = attempt_faults(config, state.version, fingerprint, attempts);
        match try_degraded_join(state, config, req.theta, faults) {
            Ok(reply) => {
                return Ok(Computed {
                    reply,
                    attempts,
                    faulted_attempts,
                    backoff_units,
                    degraded: true,
                })
            }
            Err(e) => {
                faulted_attempts += 1;
                return Err(Exhausted {
                    error: e,
                    faulted_attempts,
                    backoff_units,
                });
            }
        }
    }
    Err(Exhausted {
        error,
        faulted_attempts,
        backoff_units,
    })
}

/// The injector policy for one compute attempt, or `None` when fault
/// injection is disarmed. Seeds mix the configured base seed with the
/// dataset version, the request fingerprint, and the attempt number, so
/// every attempt draws an independent — but fully reproducible — stream.
fn attempt_faults(
    config: &ServiceConfig,
    version: u64,
    fingerprint: u64,
    attempt: u32,
) -> Option<FaultConfig> {
    if config.fault_read_prob <= 0.0 && config.fault_write_prob <= 0.0 {
        return None;
    }
    Some(FaultConfig {
        seed: mix_seed(config.fault_seed, version, fingerprint, attempt),
        read_prob: config.fault_read_prob,
        write_prob: config.fault_write_prob,
        ..FaultConfig::default()
    })
}

/// splitmix64-style finalizer over the four seed components.
fn mix_seed(base: u64, version: u64, fingerprint: u64, attempt: u32) -> u64 {
    let mut z = base
        .wrapping_add(version.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(fingerprint.rotate_left(17))
        .wrapping_add(u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evaluates one request against `state` on a private cold shard,
/// optionally armed with a fault injector. Deterministic given
/// `(state.version, req, faults)`: the advisor seed is fixed, every
/// executor is deterministic, and results are sorted — so concurrent
/// execution, cached replays, and the sequential reference all agree
/// byte-for-byte. Fail-stop: the first storage fault aborts the attempt
/// with a typed error and nothing partial escapes.
fn try_compute(
    state: &DataState,
    config: &ServiceConfig,
    req: &Request,
    faults: Option<FaultConfig>,
) -> Result<Reply, StorageError> {
    let mut shard = state.pool.fork_view(config.shard_capacity);
    if let Some(fault_config) = faults {
        shard.set_fault_injector(Some(FaultInjector::new(fault_config)));
    }
    match &req.kind {
        QueryKind::Select { side, probe } => {
            let tree = match side {
                Side::R => &state.r_tree,
                Side::S => &state.s_tree,
            };
            // Batched descent through the relation's flattened child-MBR
            // snapshot (identical matches and counters to the scalar path).
            let outcome = sj_gentree::select::try_select_flat(
                &tree.tree,
                Some(&tree.flat),
                probe,
                req.theta,
                |node| tree.paged.try_touch_io(&mut shard, node),
            )?;
            let mut matches = outcome.matches;
            matches.sort_unstable();
            Ok(Reply::Select {
                matches: Arc::new(matches),
            })
        }
        QueryKind::Join { strategy } => {
            let chooser = auto_chooser(
                config.profile,
                &state.r,
                &state.s,
                config.selectivity_samples,
                config.seed,
            );
            let ops = JoinOperands::flat(&state.r, &state.s, state.world)
                .with_trees(&state.r_tree, &state.s_tree)
                .with_chooser(&chooser);
            let mut exec = match strategy.executor(&ops) {
                Some(exec) => exec,
                // Absent operands are a construction bug, not a storage
                // fault; the service always supplies both operand kinds.
                None => unreachable!("operands cover every strategy"), // PANIC-OK: logic error
            };
            let run = exec.try_execute(&JoinRequest::new(req.theta), &mut shard)?;
            let mut pairs = run.pairs;
            pairs.sort_unstable();
            Ok(Reply::Join {
                pairs: Arc::new(pairs),
                resolved: exec.resolved_strategy(),
            })
        }
    }
}

/// The degraded join pass: scan both relations with per-record-read
/// retries, then nested-loop in memory. Same exact match set as every
/// strategy executor (results sorted), but it survives fault rates
/// where fail-stop whole-attempt execution cannot — a read only fails
/// the pass after [`DEGRADED_READ_RETRIES`] consecutive faulted draws.
fn try_degraded_join(
    state: &DataState,
    config: &ServiceConfig,
    theta: ThetaOp,
    faults: Option<FaultConfig>,
) -> Result<Reply, StorageError> {
    let mut shard = state.pool.fork_view(config.shard_capacity);
    if let Some(fault_config) = faults {
        shard.set_fault_injector(Some(FaultInjector::new(fault_config)));
    }
    let r = resilient_scan(&state.r, &mut shard)?;
    let s = resilient_scan(&state.s, &mut shard)?;
    let mut pairs = Vec::new();
    for (r_id, r_geom) in &r {
        for (s_id, s_geom) in &s {
            if theta.eval(r_geom, s_geom) {
                pairs.push((*r_id, *s_id));
            }
        }
    }
    pairs.sort_unstable();
    Ok(Reply::Join {
        pairs: Arc::new(pairs),
        resolved: Strategy::NestedLoop,
    })
}

/// Reads every tuple of `rel`, retrying each record read up to
/// [`DEGRADED_READ_RETRIES`] times. A faulted fetch leaves the page
/// non-resident, so every retry performs a fresh physical read and
/// draws the next value from the deterministic injector stream.
fn resilient_scan(
    rel: &StoredRelation,
    shard: &mut BufferPool,
) -> Result<Vec<(u64, Geometry)>, StorageError> {
    let mut tuples = Vec::with_capacity(rel.len());
    for i in 0..rel.len() {
        let mut outcome = rel.try_read_at(shard, i);
        let mut tries = 1;
        while outcome.is_err() && tries < DEGRADED_READ_RETRIES {
            outcome = rel.try_read_at(shard, i);
            tries += 1;
        }
        tuples.push(outcome?);
    }
    Ok(tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geom::{Point, ThetaOp};
    use sj_joins::Strategy;

    fn grid_tuples(n: usize, step: f64, id0: u64) -> Vec<(u64, Geometry)> {
        (0..n * n)
            .map(|i| {
                (
                    id0 + i as u64,
                    Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
                )
            })
            .collect()
    }

    fn world() -> Rect {
        Rect::from_bounds(0.0, 0.0, 64.0, 64.0)
    }

    fn small_service(config: ServiceConfig) -> SpatialService {
        SpatialService::start(
            config,
            &grid_tuples(5, 10.0, 0),
            &grid_tuples(5, 10.0, 500),
            world(),
        )
    }

    #[test]
    fn select_matches_exhaustive_reference() {
        let svc = small_service(ServiceConfig::default());
        let probe = Geometry::Point(Point::new(20.0, 20.0));
        let theta = ThetaOp::WithinDistance(15.0);
        let resp = svc
            .call(Request::select(Side::R, probe.clone(), theta))
            .expect("no shedding at idle");
        let Reply::Select { matches } = &resp.reply else {
            panic!("select reply expected");
        };
        // Reference: exhaustive θ-test over the same tree.
        let state = svc.shared.snapshot.load();
        let mut want =
            sj_gentree::select::select_exhaustive(&state.r_tree.tree, &probe, theta).matches;
        want.sort_unstable();
        assert_eq!(**matches, want);
        assert!(!matches.is_empty(), "probe must hit something");
    }

    #[test]
    fn join_matches_direct_execution_for_every_strategy() {
        let svc = small_service(ServiceConfig::default());
        let theta = ThetaOp::Overlaps;
        let want = {
            let Reply::Join { pairs, .. } =
                svc.execute_reference(&Request::join(Strategy::NestedLoop, theta))
            else {
                panic!("join reply expected");
            };
            pairs
        };
        for strategy in Strategy::ALL.into_iter().chain([Strategy::Auto]) {
            let resp = svc
                .call(Request::join(strategy, theta))
                .expect("no shedding at idle");
            let Reply::Join { pairs, resolved } = &resp.reply else {
                panic!("join reply expected");
            };
            assert_eq!(*pairs, want, "{} diverges", strategy.name());
            assert_ne!(*resolved, Strategy::Auto, "auto must resolve");
        }
    }

    #[test]
    fn unsupported_strategy_theta_pairs_are_rejected_at_submit() {
        let svc = small_service(ServiceConfig::default());
        let theta = ThetaOp::DirectionOf(sj_geom::Direction::North);
        let err = svc
            .submit(Request::join(Strategy::Grid, theta))
            .expect_err("grid cannot run directional joins");
        assert_eq!(err, Rejection::UnsupportedTheta);
        // Auto with the same θ succeeds by resolving to a capable
        // strategy.
        let resp = svc.call(Request::join(Strategy::Auto, theta)).expect("ok");
        let Reply::Join { resolved, .. } = &resp.reply else {
            panic!("join reply expected");
        };
        assert!(resolved.supports(theta));
    }

    #[test]
    fn repeated_queries_hit_the_cache_and_updates_invalidate() {
        let svc = small_service(ServiceConfig::default());
        let probe = Geometry::Point(Point::new(0.0, 0.0));
        let theta = ThetaOp::WithinDistance(5.0);
        let req = Request::select(Side::R, probe, theta);

        let first = svc.call(req.clone()).expect("ok");
        assert!(!first.cached);
        let second = svc.call(req.clone()).expect("ok");
        assert!(second.cached, "identical query must be cache-served");
        assert_eq!(first.reply, second.reply);
        assert!(svc.cache_hit_rate() > 0.0);

        // Insert a tuple right at the probe: the cached result's region
        // intersects the write, so it must be invalidated, not served.
        let receipt = svc
            .commit(&WriteBatch::new().insert(Side::R, 9999, Geometry::Point(Point::new(1.0, 1.0))))
            .expect("commit succeeds");
        assert_eq!(receipt.version, 1);
        assert_eq!(receipt.outcomes, vec![MutationOutcome::Inserted]);
        assert!(receipt.changed());
        assert!(receipt.cache_purged >= 1, "the stale entry must be purged");
        let third = svc.call(req).expect("ok");
        assert!(!third.cached, "version bump must invalidate");
        assert_eq!(third.version, 1);
        let (Reply::Select { matches: before }, Reply::Select { matches: after }) =
            (&second.reply, &third.reply)
        else {
            panic!("select replies expected");
        };
        assert_eq!(after.len(), before.len() + 1);
        assert!(after.contains(&9999));
    }

    #[test]
    fn cache_hits_never_touch_the_publisher_lock() {
        // THE tentpole property: once warm, a cache-hit request touches
        // the pinned snapshot (atomic epoch compare) and one shard-local
        // cache probe — never the snapshot publisher mutex. The
        // publisher lock counter must stay exactly flat across a
        // stretch of hit traffic.
        let svc = small_service(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let req = Request::select(
            Side::R,
            Geometry::Point(Point::new(20.0, 20.0)),
            ThetaOp::WithinDistance(15.0),
        );
        svc.call(req.clone()).expect("warm the cache");
        let baseline = svc.snapshot_lock_count();
        for _ in 0..200 {
            let resp = svc.call(req.clone()).expect("ok");
            assert!(resp.cached, "warm identical query must hit");
        }
        assert_eq!(
            svc.snapshot_lock_count(),
            baseline,
            "cache-hit traffic must never acquire the snapshot publisher lock"
        );
        let m = svc.metrics();
        assert!(m.served_from_cache >= 200);
        assert_eq!(m.cache_hit_latency_us.count(), m.served_from_cache);
        assert!(m.batches > 0, "every wakeup must account a batch");
    }

    #[test]
    fn full_queue_sheds_at_admission() {
        let config = ServiceConfig {
            workers: 1,
            queue_depth: 1,
            cache_capacity: 0, // every request computes
            batch_size: 1,     // no batching: the backlog must overflow
            ..ServiceConfig::default()
        };
        let svc = SpatialService::start(
            config,
            &grid_tuples(12, 4.0, 0),
            &grid_tuples(12, 4.0, 5000),
            world(),
        );
        // Submissions land microseconds apart; each nested-loop join
        // over 144×144 tuples takes far longer, so the depth-1 queue
        // must overflow.
        let receivers: Vec<_> = (0..12)
            .map(|_| svc.submit(Request::join(Strategy::NestedLoop, ThetaOp::Overlaps)))
            .collect();
        let shed = receivers.iter().filter(|r| r.is_err()).count();
        assert!(shed > 0, "expected queue-full shedding");
        for rx in receivers.into_iter().flatten() {
            assert!(rx.recv().expect("worker responds").is_ok());
        }
        assert_eq!(svc.shed_counts().0, shed as u64);
    }

    #[test]
    fn expired_deadlines_shed_at_dequeue() {
        let config = ServiceConfig {
            workers: 1,
            queue_depth: 64,
            cache_capacity: 0,
            ..ServiceConfig::default()
        };
        let svc = SpatialService::start(
            config,
            &grid_tuples(12, 4.0, 0),
            &grid_tuples(12, 4.0, 5000),
            world(),
        );
        // Build a backlog of slow joins, then queue deadline-1µs
        // requests behind it: by the time a worker reaches them their
        // budget is long gone.
        let slow: Vec<_> = (0..3)
            .map(|_| {
                svc.submit(Request::join(Strategy::NestedLoop, ThetaOp::Overlaps))
                    .expect("queue has room")
            })
            .collect();
        let dead: Vec<_> = (0..3)
            .map(|_| {
                svc.submit(
                    Request::select(
                        Side::R,
                        Geometry::Point(Point::new(0.0, 0.0)),
                        ThetaOp::Overlaps,
                    )
                    .with_deadline_us(1),
                )
                .expect("queue has room")
            })
            .collect();
        for rx in slow {
            assert!(rx.recv().expect("worker responds").is_ok());
        }
        let mut sheds = 0;
        for rx in dead {
            match rx.recv().expect("worker responds") {
                Err(Rejection::DeadlineExceeded { queue_us }) => {
                    assert!(queue_us > 1);
                    sheds += 1;
                }
                Ok(_) => {}
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
        }
        assert!(sheds > 0, "expected deadline shedding behind the backlog");
        assert_eq!(svc.shed_counts().1, sheds as u64);
        assert_eq!(svc.metrics().shed_deadline, sheds as u64);
    }

    #[test]
    fn worker_panic_is_contained_and_the_pool_keeps_serving() {
        // The poison-pill job panics while holding a cache-shard lock —
        // the worst case: a dead worker AND a poisoned mutex. The
        // single-worker service must contain the panic, answer the
        // poisoned request with `WorkerPanicked`, recover the lock, and
        // keep serving (including through that same cache shard).
        let svc = small_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let rx = svc.submit_poisoned();
        assert!(matches!(
            rx.recv().expect("worker must answer"),
            Err(Rejection::WorkerPanicked)
        ));
        let resp = svc
            .call(Request::select(
                Side::R,
                Geometry::Point(Point::new(20.0, 20.0)),
                ThetaOp::WithinDistance(15.0),
            ))
            .expect("the worker survived the panic");
        assert!(!resp.reply.is_empty());
        let m = svc.metrics();
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn injected_faults_retry_to_the_exact_fault_free_result() {
        let config = ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            fault_read_prob: 0.02,
            fault_seed: 0xFEED,
            retry_attempts: 3,
            ..ServiceConfig::default()
        };
        let svc = small_service(config);
        let mut completed = 0u64;
        let mut failed = 0u64;
        for i in 0..40 {
            let d = 5.0 + f64::from(i) * 0.37;
            let req = Request::join(Strategy::Sweep, ThetaOp::WithinDistance(d));
            match svc.call(req.clone()) {
                Ok(resp) => {
                    completed += 1;
                    assert!(resp.attempts >= 1);
                    let reference = svc.execute_reference(&req);
                    let (Reply::Join { pairs: got, .. }, Reply::Join { pairs: want, .. }) =
                        (&resp.reply, &reference)
                    else {
                        panic!("join replies expected");
                    };
                    assert_eq!(got, want, "Ok result must match fault-free replay exactly");
                    if !resp.degraded {
                        assert_eq!(resp.reply, reference);
                    }
                }
                Err(Rejection::Failed(e)) => {
                    failed += 1;
                    assert!(!e.kind().is_empty(), "failures carry a typed error");
                }
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
        }
        assert_eq!(completed + failed, 40);
        let m = svc.metrics();
        assert_eq!(m.completed, completed);
        assert_eq!(m.failed, failed);
        assert!(
            m.injected_faults > 0,
            "a 2% read-fault rate over 40 sweep joins must inject something"
        );
        assert!(completed > 0, "retries must rescue at least some requests");
    }

    #[test]
    fn fault_outcomes_are_deterministic_across_identical_services() {
        let run = || {
            let config = ServiceConfig {
                workers: 1,
                cache_capacity: 0,
                fault_read_prob: 0.03,
                fault_seed: 0xBEEF,
                retry_attempts: 2,
                ..ServiceConfig::default()
            };
            let svc = small_service(config);
            let mut outcomes = Vec::new();
            for i in 0..20 {
                let d = 4.0 + f64::from(i) * 0.51;
                let req = Request::join(Strategy::Sweep, ThetaOp::WithinDistance(d));
                outcomes.push(match svc.call(req) {
                    Ok(resp) => (true, resp.attempts, resp.degraded, resp.reply.len()),
                    Err(Rejection::Failed(_)) => (false, 0, false, 0),
                    Err(other) => panic!("unexpected rejection {other:?}"),
                });
            }
            (outcomes, svc.metrics().injected_faults)
        };
        assert_eq!(
            run(),
            run(),
            "same seeds and request stream must replay the same fault trace"
        );
    }

    #[test]
    fn heavy_fault_rates_degrade_to_the_resilient_nested_loop() {
        // At a 20% read-fault rate with a single configured attempt,
        // fail-stop execution (which aborts on the first fault) almost
        // never survives — but the degraded pass retries each record
        // read individually and must rescue requests *exactly*: every
        // degraded reply matches the fault-free reference.
        let config = ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            fault_read_prob: 0.2,
            fault_seed: 0x5EED,
            retry_attempts: 1,
            ..ServiceConfig::default()
        };
        let svc = small_service(config);
        let mut degraded = 0u64;
        for i in 0..10 {
            let d = 5.0 + f64::from(i) * 0.7;
            let req = Request::join(Strategy::Tree, ThetaOp::WithinDistance(d));
            match svc.call(req.clone()) {
                Ok(resp) => {
                    if resp.degraded {
                        degraded += 1;
                        let reference = svc.execute_reference(&req);
                        let (Reply::Join { pairs: got, .. }, Reply::Join { pairs: want, .. }) =
                            (&resp.reply, &reference)
                        else {
                            panic!("join replies expected");
                        };
                        assert_eq!(got, want, "degraded replies must still be exact");
                    }
                }
                Err(Rejection::Failed(_)) => {}
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
        }
        assert!(
            degraded > 0,
            "heavy fault rates must exercise the degraded path"
        );
        assert_eq!(svc.metrics().degraded, degraded);
    }

    #[test]
    fn total_fault_saturation_yields_a_typed_failure() {
        // Every physical read faults: all retry attempts AND the
        // degraded resilient pass (whose per-read retries all re-draw
        // faults at probability 1.0) fail, so the request must come
        // back as a typed `Rejection::Failed` — never a panic, never a
        // partial result.
        let config = ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            fault_read_prob: 1.0,
            fault_seed: 7,
            retry_attempts: 2,
            ..ServiceConfig::default()
        };
        let svc = small_service(config);
        let err = svc
            .call(Request::join(Strategy::Tree, ThetaOp::Overlaps))
            .expect_err("nothing can survive a 100% fault rate");
        let Rejection::Failed(e) = err else {
            panic!("expected Failed, got {err:?}");
        };
        assert_eq!(e.kind(), "injected_fault");
        let m = svc.metrics();
        assert_eq!(m.failed, 1);
        // Two configured attempts plus the degraded fallback all faulted.
        assert_eq!(m.injected_faults, 3);
        assert_eq!(m.degraded, 0, "a failed fallback is not a degradation");
        assert!(m.retry_backoff_units > 0, "retries must charge backoff");
    }

    #[test]
    fn metrics_emit_the_service_trace_vocabulary() {
        let svc = small_service(ServiceConfig::default());
        let req = Request::select(
            Side::R,
            Geometry::Point(Point::new(0.0, 0.0)),
            ThetaOp::Overlaps,
        );
        svc.call(req.clone()).expect("ok");
        svc.call(req).expect("ok");
        let mut sink = TraceSink::vec();
        svc.emit_metrics(&mut sink);
        let spans: Vec<&str> = sink.events().iter().map(|e| e.span.as_str()).collect();
        for want in [
            "service/latency_us",
            "service/queue_wait_us",
            "service/exec_us",
            "service/cache_hit_us",
            "service/summary",
            "service/cache",
            "service/admission",
            "service/pool",
            "service/wal",
            "service/apply",
        ] {
            assert!(spans.contains(&want), "missing span {want}");
        }
        let m = svc.metrics();
        assert_eq!(m.completed, 2);
        assert_eq!(m.served_from_cache, 1);
        assert_eq!(m.latency_us.count(), 2);
        assert!(m.batches >= 1, "wakeups must be accounted as batches");
        // The admission event carries the steal counter.
        let admission = sink
            .events()
            .iter()
            .find(|e| e.span == "service/admission")
            .expect("admission event");
        assert!(admission.counters.iter().any(|(k, _)| *k == "stolen"));
        // The pool gauge event carries the new capacity counter.
        let pool_event = sink
            .events()
            .iter()
            .find(|e| e.span == "service/pool")
            .expect("pool event");
        assert!(pool_event
            .counters
            .iter()
            .any(|(k, v)| *k == "bufferpool.capacity" && *v > 0));
    }

    #[test]
    fn commit_outcomes_are_typed_and_reads_observe_writes() {
        let svc = small_service(ServiceConfig::default());
        let batch = WriteBatch::new()
            .insert(Side::R, 9000, Geometry::Point(Point::new(2.0, 2.0)))
            .insert(Side::R, 9000, Geometry::Point(Point::new(3.0, 3.0))) // duplicate
            .delete(Side::S, 501)
            .delete(Side::S, 424242) // missing
            .upsert(Side::R, 0, Geometry::Point(Point::new(1.0, 1.0))) // replace
            .upsert(Side::S, 9001, Geometry::Point(Point::new(4.0, 4.0))); // insert
        let receipt = svc.commit(&batch).expect("commit succeeds");
        assert_eq!(receipt.version, 1);
        assert_eq!(
            receipt.outcomes,
            vec![
                MutationOutcome::Inserted,
                MutationOutcome::DuplicateId,
                MutationOutcome::Deleted,
                MutationOutcome::MissingId,
                MutationOutcome::Upserted { replaced: true },
                MutationOutcome::Upserted { replaced: false },
            ]
        );
        assert!(receipt.wal_lsn >= 1);

        // Reads observe every applied write: 9000 and the moved 0 are
        // R-matches near the origin, 9001 is an S-match, 501 is gone.
        let r = svc
            .call(Request::select(
                Side::R,
                Geometry::Point(Point::new(2.0, 2.0)),
                ThetaOp::WithinDistance(2.0),
            ))
            .expect("ok");
        let Reply::Select { matches } = &r.reply else {
            panic!("select reply expected");
        };
        assert!(matches.contains(&9000));
        assert!(matches.contains(&0), "upsert must have moved 0 to (1,1)");
        let s = svc
            .call(Request::select(
                Side::S,
                Geometry::Point(Point::new(0.0, 0.0)),
                ThetaOp::WithinDistance(10.0),
            ))
            .expect("ok");
        let Reply::Select { matches } = &s.reply else {
            panic!("select reply expected");
        };
        assert!(matches.contains(&9001));
        assert!(!matches.contains(&501), "deleted id must not match");
        assert_eq!(svc.version(), 1);
        assert_eq!(svc.write_metrics().commits(), 1);
    }

    #[test]
    fn incremental_apply_costs_pages_proportional_to_the_batch() {
        // The pre-redesign bug: every update scanned and rewrote BOTH
        // relations and trees — O(n) pages for a 1-tuple write. The
        // incremental path must touch O(batch) pages instead. Same
        // batch, both modes, measured via the receipt's IoStats.
        let cost = |mode: ApplyMode| {
            let svc = SpatialService::start(
                ServiceConfig {
                    apply_mode: mode,
                    ..ServiceConfig::default()
                },
                &grid_tuples(15, 4.0, 0),
                &grid_tuples(15, 4.0, 5000),
                world(),
            );
            let batch = WriteBatch::new()
                .insert(Side::R, 9000, Geometry::Point(Point::new(7.0, 7.0)))
                .delete(Side::S, 5003);
            let receipt = svc.commit(&batch).expect("commit succeeds");
            assert_eq!(
                receipt.outcomes,
                vec![MutationOutcome::Inserted, MutationOutcome::Deleted]
            );
            receipt.io.physical_reads + receipt.io.physical_writes
        };
        let incremental = cost(ApplyMode::Incremental);
        let rebuild = cost(ApplyMode::Rebuild);
        assert!(
            incremental * 4 < rebuild,
            "incremental apply must touch far fewer pages than a rebuild \
             (incremental {incremental}, rebuild {rebuild})"
        );
    }

    #[test]
    fn disjoint_region_writes_retain_cache_entries() {
        let svc = small_service(ServiceConfig::default());
        let near = Request::select(
            Side::R,
            Geometry::Point(Point::new(0.0, 0.0)),
            ThetaOp::WithinDistance(5.0),
        );
        let far = Request::select(
            Side::R,
            Geometry::Point(Point::new(40.0, 40.0)),
            ThetaOp::WithinDistance(5.0),
        );
        svc.call(near.clone()).expect("warm near");
        let far_reply = svc.call(far.clone()).expect("warm far").reply;

        // Write at (1,1): inside near's region, 50+ units from far's.
        let receipt = svc
            .commit(&WriteBatch::new().insert(Side::R, 9000, Geometry::Point(Point::new(1.0, 1.0))))
            .expect("commit succeeds");
        assert!(receipt.cache_purged >= 1, "near must be invalidated");
        assert!(receipt.cache_retained >= 1, "far must survive");

        // The survivor serves a *cached* hit at the new version, and
        // its reply is still exact.
        let resp = svc.call(far.clone()).expect("ok");
        assert!(resp.cached, "region-disjoint entry must survive the commit");
        assert_eq!(resp.version, 1);
        assert_eq!(resp.reply, far_reply);
        assert_eq!(resp.reply, svc.execute_reference(&far));
        // The invalidated entry recomputes and now sees the insert.
        let resp = svc.call(near).expect("ok");
        assert!(!resp.cached);
        let Reply::Select { matches } = &resp.reply else {
            panic!("select reply expected");
        };
        assert!(matches.contains(&9000));
    }

    #[test]
    fn wal_sync_fault_aborts_the_commit_and_state_is_unchanged() {
        use std::collections::HashSet;
        let svc = small_service(ServiceConfig::default());
        let probe = Request::select(
            Side::R,
            Geometry::Point(Point::new(0.0, 0.0)),
            ThetaOp::WithinDistance(5.0),
        );
        let before = svc.call(probe.clone()).expect("ok").reply;

        // Fault exactly the first sync attempt (attempt ids are 0-based).
        svc.set_wal_fault_injector(Some(FaultInjector::new(FaultConfig {
            write_prob: 1.0,
            target_pages: Some(HashSet::from([sj_storage::PageId(0)])),
            ..FaultConfig::default()
        })));
        let batch = WriteBatch::new().insert(Side::R, 9000, Geometry::Point(Point::new(1.0, 1.0)));
        let err = svc.commit(&batch).expect_err("sync fault must abort");
        let Rejection::Failed(e) = err else {
            panic!("expected Failed, got {err:?}");
        };
        assert_eq!(e.kind(), "injected_fault");

        // Nothing published, nothing durable, reads unchanged.
        assert_eq!(svc.version(), 0);
        assert_eq!(svc.call(probe.clone()).expect("ok").reply, before);
        assert_eq!(svc.write_metrics().aborted_commits(), 1);
        let recovered = SpatialService::recover(
            *svc.config(),
            &grid_tuples(5, 10.0, 0),
            &grid_tuples(5, 10.0, 500),
            world(),
            &svc.wal_image(),
        )
        .expect("image with no synced records recovers");
        assert_eq!(recovered.version(), 0);

        // The retried commit (sync attempt 2 is not targeted) succeeds.
        let receipt = svc.commit(&batch).expect("retry commits");
        assert_eq!(receipt.version, 1);
        let Reply::Select { matches } = &svc.call(probe).expect("ok").reply else {
            panic!("select reply expected");
        };
        assert!(matches.contains(&9000));
    }

    #[test]
    fn recovery_replays_the_durable_history_exactly() {
        let svc = small_service(ServiceConfig::default());
        svc.commit(
            &WriteBatch::new()
                .insert(Side::R, 9000, Geometry::Point(Point::new(2.0, 2.0)))
                .delete(Side::S, 501),
        )
        .expect("first commit");
        svc.commit(&WriteBatch::new().upsert(Side::R, 0, Geometry::Point(Point::new(31.0, 31.0))))
            .expect("second commit");

        let recovered = SpatialService::recover(
            *svc.config(),
            &grid_tuples(5, 10.0, 0),
            &grid_tuples(5, 10.0, 500),
            world(),
            &svc.wal_image(),
        )
        .expect("recovery succeeds");
        assert_eq!(recovered.version(), 2);
        for req in [
            Request::select(
                Side::R,
                Geometry::Point(Point::new(0.0, 0.0)),
                ThetaOp::WithinDistance(35.0),
            ),
            Request::select(
                Side::S,
                Geometry::Point(Point::new(0.0, 0.0)),
                ThetaOp::WithinDistance(35.0),
            ),
            Request::join(Strategy::Auto, ThetaOp::WithinDistance(3.0)),
        ] {
            assert_eq!(
                svc.execute_reference(&req),
                recovered.execute_reference(&req),
                "recovered state must answer identically"
            );
        }

        // A corrupt image is a typed error, never a wrong answer.
        let mut image = svc.wal_image();
        let last = image.len() - 1;
        image[last] ^= 0xFF;
        assert!(matches!(
            SpatialService::recover(
                *svc.config(),
                &grid_tuples(5, 10.0, 0),
                &grid_tuples(5, 10.0, 500),
                world(),
                &image,
            ),
            Err(StorageError::WalCorrupt { .. })
        ));
    }

    fn poly_tuples(n: usize, off: f64, id0: u64) -> Vec<(u64, Geometry)> {
        (0..n)
            .map(|i| {
                let c = Point::new((i % 8) as f64 * 7.0 + off, (i / 8) as f64 * 7.0 + off);
                (
                    id0 + i as u64,
                    Geometry::Polygon(sj_geom::Polygon::regular(c, 3.0, 12)),
                )
            })
            .collect()
    }

    #[test]
    fn compressed_pages_serve_identical_results_and_survive_commits() {
        let config = ServiceConfig {
            compress_geometry: true,
            // Tight v2 bound: a 16-gon (267 exact bytes, well inside
            // `record_size`) overflows its 115-byte v2 frame, so the
            // quant guard — not the exact guard — screens it.
            quant_record_size: 100,
            ..ServiceConfig::default()
        };
        let (r, s) = (poly_tuples(40, 0.0, 0), poly_tuples(40, 2.5, 500));
        let exact = SpatialService::start(ServiceConfig::default(), &r, &s, world());
        let svc = SpatialService::start(config, &r, &s, world());
        {
            let state = svc.shared.snapshot.load();
            assert!(state.r.is_compressed() && state.s.is_compressed());
            assert!(state.r_tree.is_compressed());
        }

        for theta in [
            ThetaOp::Overlaps,
            ThetaOp::WithinDistance(2.0),
            ThetaOp::ContainedIn,
        ] {
            for strategy in [Strategy::Sweep, Strategy::Partition, Strategy::Tree] {
                if !strategy.supports(theta) {
                    continue;
                }
                let req = Request::join(strategy, theta);
                assert_eq!(
                    svc.call(req.clone()).expect("ok").reply,
                    exact.call(req).expect("ok").reply,
                    "{} diverges under compression",
                    strategy.name()
                );
            }
        }

        // Mutations keep the compressed snapshot consistent, and an
        // oversized v2 frame is screened as TooLarge — identically on
        // both apply modes (the rebuild path replays the same guard).
        let fat = Geometry::Polygon(sj_geom::Polygon::regular(Point::new(30.0, 30.0), 4.0, 16));
        let receipt = svc
            .commit(
                &WriteBatch::new()
                    .insert(Side::R, 9000, fat.clone())
                    .upsert(Side::S, 500, Geometry::Point(Point::new(1.0, 1.0)))
                    .delete(Side::R, 1),
            )
            .expect("commit succeeds");
        assert_eq!(
            receipt.outcomes,
            vec![
                MutationOutcome::TooLarge,
                MutationOutcome::Upserted { replaced: true },
                MutationOutcome::Deleted,
            ]
        );
        exact
            .commit(
                &WriteBatch::new()
                    .upsert(Side::S, 500, Geometry::Point(Point::new(1.0, 1.0)))
                    .delete(Side::R, 1),
            )
            .expect("commit succeeds");
        let req = Request::join(Strategy::Sweep, ThetaOp::Overlaps);
        assert_eq!(
            svc.call(req.clone()).expect("ok").reply,
            exact.call(req).expect("ok").reply,
            "post-commit compressed join diverges"
        );
    }
}
