//! Per-request latency accounting: log₂-bucketed histograms for
//! end-to-end latency plus its queue-wait vs execution-time breakdown,
//! and counters for completions, cache service, and deadline sheds.
//!
//! Two shapes:
//!
//! - [`WorkerMetrics`]: the *recording* side — one per worker, every
//!   field an atomic ([`AtomicHistogram`] for the latency breakdowns,
//!   `AtomicU64` for the outcome counters). Recording takes no lock
//!   anywhere, so the request hot path stays shared-nothing; the
//!   exporter reads a [`WorkerMetrics::snapshot`] whenever asked.
//! - [`ServiceMetrics`]: the *reporting* side — a plain mergeable
//!   aggregate ([`ServiceMetrics::merge`] folds per-worker snapshots
//!   into service totals), exported through the existing `sj-obs`
//!   JSONL trace vocabulary via [`ServiceMetrics::emit`].

use std::sync::atomic::{AtomicU64, Ordering};

use sj_obs::{AtomicHistogram, Histogram, TraceSink};

/// The service's aggregate latency and outcome metrics.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// End-to-end latency (queue wait + execution), µs.
    pub latency_us: Histogram,
    /// Time spent in the admission queue, µs.
    pub queue_wait_us: Histogram,
    /// Time spent computing (≈0 for cache hits), µs.
    pub exec_us: Histogram,
    /// End-to-end latency of cache-hit responses only, µs — the
    /// isolated hit path the scaling bench reports as `cache_hit_p95_us`.
    pub cache_hit_latency_us: Histogram,
    /// Requests answered (computed or cache-served).
    pub completed: u64,
    /// Of `completed`, answered straight from the result cache.
    pub served_from_cache: u64,
    /// Requests shed at dequeue because their deadline had passed.
    pub shed_deadline: u64,
    /// Dequeue wakeups (each drains a batch of ≥ 1 requests).
    pub batches: u64,
    /// Compute attempts aborted by an injected (or real) storage fault.
    pub injected_faults: u64,
    /// Requests that completed only after at least one retry.
    pub retried: u64,
    /// Requests answered by the degraded nested-loop fallback.
    pub degraded: u64,
    /// Requests that exhausted every attempt and were rejected with
    /// `Rejection::Failed`.
    pub failed: u64,
    /// Worker panics contained at the worker boundary.
    pub worker_panics: u64,
    /// Total model-time backoff units spent between retry attempts.
    pub retry_backoff_units: u64,
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// Records one answered request.
    pub fn record_completion(&mut self, queue_us: u64, exec_us: u64, cached: bool) {
        self.latency_us.record(queue_us + exec_us);
        self.queue_wait_us.record(queue_us);
        self.exec_us.record(exec_us);
        self.completed += 1;
        if cached {
            self.served_from_cache += 1;
            self.cache_hit_latency_us.record(queue_us + exec_us);
        }
    }

    /// Records one request shed at dequeue for missing its deadline.
    /// The wasted queue wait is still charged to the wait histogram.
    pub fn record_shed_deadline(&mut self, queue_us: u64) {
        self.queue_wait_us.record(queue_us);
        self.shed_deadline += 1;
    }

    /// Records the fault-recovery footprint of one completed request:
    /// how many attempts faulted before success, the backoff spent, and
    /// whether the degraded fallback answered it.
    pub fn record_recovery(&mut self, faulted_attempts: u32, backoff_units: u64, degraded: bool) {
        self.injected_faults += u64::from(faulted_attempts);
        self.retry_backoff_units += backoff_units;
        if faulted_attempts > 0 {
            self.retried += 1;
        }
        if degraded {
            self.degraded += 1;
        }
    }

    /// Records one request that exhausted every attempt and failed.
    pub fn record_failed(&mut self, faulted_attempts: u32, backoff_units: u64, queue_us: u64) {
        self.injected_faults += u64::from(faulted_attempts);
        self.retry_backoff_units += backoff_units;
        self.failed += 1;
        self.queue_wait_us.record(queue_us);
    }

    /// Records one contained worker panic.
    pub fn record_worker_panic(&mut self) {
        self.worker_panics += 1;
    }

    /// Folds another metrics object in (bucket-wise histogram merge plus
    /// counter sums) — e.g. to aggregate per-worker snapshots.
    pub fn merge(&mut self, other: &ServiceMetrics) {
        self.latency_us.merge(&other.latency_us);
        self.queue_wait_us.merge(&other.queue_wait_us);
        self.exec_us.merge(&other.exec_us);
        self.cache_hit_latency_us.merge(&other.cache_hit_latency_us);
        self.completed += other.completed;
        self.served_from_cache += other.served_from_cache;
        self.shed_deadline += other.shed_deadline;
        self.batches += other.batches;
        self.injected_faults += other.injected_faults;
        self.retried += other.retried;
        self.degraded += other.degraded;
        self.failed += other.failed;
        self.worker_panics += other.worker_panics;
        self.retry_backoff_units += other.retry_backoff_units;
    }

    /// Emits six JSONL events: one per histogram (count/p50/p95/p99/
    /// max/mean as counters), a `service/summary` with the outcome
    /// counters, and a `service/fault` with the fault-recovery counters,
    /// all through the standard trace vocabulary.
    pub fn emit(&self, sink: &mut TraceSink) {
        self.latency_us.emit(sink, "service/latency_us");
        self.queue_wait_us.emit(sink, "service/queue_wait_us");
        self.exec_us.emit(sink, "service/exec_us");
        self.cache_hit_latency_us.emit(sink, "service/cache_hit_us");
        sink.emit(
            "service/summary",
            0,
            &[
                ("completed", self.completed),
                ("served_from_cache", self.served_from_cache),
                ("shed_deadline", self.shed_deadline),
                ("batches", self.batches),
            ],
        );
        sink.emit(
            "service/fault",
            0,
            &[
                ("injected_faults", self.injected_faults),
                ("retried", self.retried),
                ("degraded", self.degraded),
                ("failed", self.failed),
                ("worker_panics", self.worker_panics),
                ("retry_backoff_units", self.retry_backoff_units),
            ],
        );
    }
}

/// One worker's lock-free metrics slab. Recording is `&self` on atomics
/// only — a cache-hit request touches **no mutex** to account itself —
/// and the exporter folds [`WorkerMetrics::snapshot`]s together with
/// [`ServiceMetrics::merge`]. Snapshots taken while traffic is flowing
/// are transiently inconsistent across fields (count vs sum), which is
/// the standard telemetry trade; quiescent snapshots are exact.
#[derive(Debug, Default)]
pub struct WorkerMetrics {
    latency_us: AtomicHistogram,
    queue_wait_us: AtomicHistogram,
    exec_us: AtomicHistogram,
    cache_hit_latency_us: AtomicHistogram,
    completed: AtomicU64,
    served_from_cache: AtomicU64,
    shed_deadline: AtomicU64,
    batches: AtomicU64,
    injected_faults: AtomicU64,
    retried: AtomicU64,
    degraded: AtomicU64,
    failed: AtomicU64,
    worker_panics: AtomicU64,
    retry_backoff_units: AtomicU64,
}

impl WorkerMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        WorkerMetrics::default()
    }

    /// Records one answered request (lock-free).
    pub fn record_completion(&self, queue_us: u64, exec_us: u64, cached: bool) {
        self.latency_us.record(queue_us + exec_us);
        self.queue_wait_us.record(queue_us);
        self.exec_us.record(exec_us);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if cached {
            self.served_from_cache.fetch_add(1, Ordering::Relaxed);
            self.cache_hit_latency_us.record(queue_us + exec_us);
        }
    }

    /// Records one request shed at dequeue for missing its deadline.
    pub fn record_shed_deadline(&self, queue_us: u64) {
        self.queue_wait_us.record(queue_us);
        self.shed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dequeue wakeup that drained `_n ≥ 1` requests.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the fault-recovery footprint of one completed request.
    pub fn record_recovery(&self, faulted_attempts: u32, backoff_units: u64, degraded: bool) {
        self.injected_faults
            .fetch_add(u64::from(faulted_attempts), Ordering::Relaxed);
        self.retry_backoff_units
            .fetch_add(backoff_units, Ordering::Relaxed);
        if faulted_attempts > 0 {
            self.retried.fetch_add(1, Ordering::Relaxed);
        }
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one request that exhausted every attempt and failed.
    pub fn record_failed(&self, faulted_attempts: u32, backoff_units: u64, queue_us: u64) {
        self.injected_faults
            .fetch_add(u64::from(faulted_attempts), Ordering::Relaxed);
        self.retry_backoff_units
            .fetch_add(backoff_units, Ordering::Relaxed);
        self.failed.fetch_add(1, Ordering::Relaxed);
        self.queue_wait_us.record(queue_us);
    }

    /// Records one contained worker panic.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain mergeable copy of this worker's counters.
    pub fn snapshot(&self) -> ServiceMetrics {
        ServiceMetrics {
            latency_us: self.latency_us.snapshot(),
            queue_wait_us: self.queue_wait_us.snapshot(),
            exec_us: self.exec_us.snapshot(),
            cache_hit_latency_us: self.cache_hit_latency_us.snapshot(),
            completed: self.completed.load(Ordering::Relaxed),
            served_from_cache: self.served_from_cache.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            retry_backoff_units: self.retry_backoff_units.load(Ordering::Relaxed),
        }
    }
}

/// The write path's lock-free counters — one per service, recorded by
/// [`SpatialService::commit`](crate::service::SpatialService::commit)
/// under the WAL lock but readable at any time without one. Exported as
/// two spans alongside the read-path vocabulary: `service/wal`
/// (durability: records, syncs, sync failures, bytes, aborts) and
/// `service/apply` (mutation outcomes, apply I/O, cache invalidation
/// precision).
#[derive(Debug, Default)]
pub struct WriteMetrics {
    /// Batches committed (synced and published).
    commits: AtomicU64,
    /// Batches aborted at the sync point (WAL fault; nothing published).
    aborted_commits: AtomicU64,
    /// Operations that changed state, over all commits.
    mutations_applied: AtomicU64,
    /// Operations rejected with typed outcomes (duplicate insert,
    /// missing-id delete, oversized geometry).
    mutations_rejected: AtomicU64,
    /// Redo records appended to the WAL.
    wal_records: AtomicU64,
    /// Successful fsync points.
    wal_syncs: AtomicU64,
    /// Failed sync attempts (each one an aborted commit).
    wal_sync_failures: AtomicU64,
    /// Durable WAL bytes, including frame headers and sync markers.
    wal_bytes: AtomicU64,
    /// Physical pages written while applying batches (the incremental
    /// path keeps this O(batch); a rebuild pays O(n)).
    apply_pages_touched: AtomicU64,
    /// Cache entries invalidated because their region intersected a
    /// commit's touched MBRs.
    cache_purged: AtomicU64,
    /// Cache entries retained across commits (region-disjoint
    /// survivors) — the fine-grained invalidation win.
    cache_retained: AtomicU64,
}

impl WriteMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        WriteMetrics::default()
    }

    /// Records one committed batch: its per-op outcome split, the
    /// physical pages its apply touched, and the cache purge/retain
    /// split of its invalidation.
    pub fn record_commit(
        &self,
        applied: u64,
        rejected: u64,
        pages: u64,
        purged: u64,
        retained: u64,
    ) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.mutations_applied.fetch_add(applied, Ordering::Relaxed);
        self.mutations_rejected
            .fetch_add(rejected, Ordering::Relaxed);
        self.apply_pages_touched.fetch_add(pages, Ordering::Relaxed);
        self.cache_purged.fetch_add(purged, Ordering::Relaxed);
        self.cache_retained.fetch_add(retained, Ordering::Relaxed);
    }

    /// Records one commit aborted at its sync point.
    pub fn record_aborted_commit(&self) {
        self.aborted_commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Overwrites the WAL gauges from the log's own counters (the WAL is
    /// the source of truth; these are mirrors for the trace).
    pub fn set_wal_gauges(&self, records: u64, syncs: u64, sync_failures: u64, bytes: u64) {
        self.wal_records.store(records, Ordering::Relaxed);
        self.wal_syncs.store(syncs, Ordering::Relaxed);
        self.wal_sync_failures
            .store(sync_failures, Ordering::Relaxed);
        self.wal_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Batches committed so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Commits aborted at the sync point so far.
    pub fn aborted_commits(&self) -> u64 {
        self.aborted_commits.load(Ordering::Relaxed)
    }

    /// `(purged, retained)` cache-invalidation totals.
    pub fn cache_invalidation(&self) -> (u64, u64) {
        (
            self.cache_purged.load(Ordering::Relaxed),
            self.cache_retained.load(Ordering::Relaxed),
        )
    }

    /// Emits the `service/wal` and `service/apply` events.
    pub fn emit(&self, sink: &mut TraceSink) {
        sink.emit(
            "service/wal",
            0,
            &[
                ("commits", self.commits.load(Ordering::Relaxed)),
                (
                    "aborted_commits",
                    self.aborted_commits.load(Ordering::Relaxed),
                ),
                ("records", self.wal_records.load(Ordering::Relaxed)),
                ("syncs", self.wal_syncs.load(Ordering::Relaxed)),
                (
                    "sync_failures",
                    self.wal_sync_failures.load(Ordering::Relaxed),
                ),
                ("durable_bytes", self.wal_bytes.load(Ordering::Relaxed)),
            ],
        );
        sink.emit(
            "service/apply",
            0,
            &[
                (
                    "mutations_applied",
                    self.mutations_applied.load(Ordering::Relaxed),
                ),
                (
                    "mutations_rejected",
                    self.mutations_rejected.load(Ordering::Relaxed),
                ),
                (
                    "pages_touched",
                    self.apply_pages_touched.load(Ordering::Relaxed),
                ),
                ("cache_purged", self.cache_purged.load(Ordering::Relaxed)),
                (
                    "cache_retained",
                    self.cache_retained.load(Ordering::Relaxed),
                ),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_updates_all_three_histograms() {
        let mut m = ServiceMetrics::new();
        m.record_completion(10, 90, false);
        m.record_completion(5, 0, true);
        assert_eq!(m.completed, 2);
        assert_eq!(m.served_from_cache, 1);
        assert_eq!(m.latency_us.count(), 2);
        assert_eq!(m.latency_us.max(), 100);
        assert_eq!(m.queue_wait_us.max(), 10);
        assert_eq!(m.exec_us.max(), 90);
        // Only the cached completion lands in the hit-path histogram.
        assert_eq!(m.cache_hit_latency_us.count(), 1);
        assert_eq!(m.cache_hit_latency_us.max(), 5);
    }

    #[test]
    fn deadline_shed_charges_queue_wait_only() {
        let mut m = ServiceMetrics::new();
        m.record_shed_deadline(500);
        assert_eq!(m.shed_deadline, 1);
        assert_eq!(m.completed, 0);
        assert_eq!(m.queue_wait_us.count(), 1);
        assert_eq!(m.latency_us.count(), 0);
        assert_eq!(m.exec_us.count(), 0);
    }

    #[test]
    fn merge_sums_counters_and_buckets() {
        let mut a = ServiceMetrics::new();
        a.record_completion(1, 2, false);
        let mut b = ServiceMetrics::new();
        b.record_completion(3, 4, true);
        b.record_shed_deadline(9);
        b.batches += 2;
        a.merge(&b);
        assert_eq!(a.completed, 2);
        assert_eq!(a.served_from_cache, 1);
        assert_eq!(a.shed_deadline, 1);
        assert_eq!(a.batches, 2);
        assert_eq!(a.latency_us.count(), 2);
        assert_eq!(a.queue_wait_us.count(), 3);
        assert_eq!(a.cache_hit_latency_us.count(), 1);
    }

    #[test]
    fn fault_counters_record_and_merge() {
        let mut m = ServiceMetrics::new();
        m.record_recovery(2, 3, true);
        m.record_recovery(0, 0, false); // clean first try: not a retry
        m.record_failed(3, 7, 42);
        m.record_worker_panic();
        assert_eq!(m.injected_faults, 5);
        assert_eq!(m.retried, 1);
        assert_eq!(m.degraded, 1);
        assert_eq!(m.failed, 1);
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.retry_backoff_units, 10);
        let mut other = ServiceMetrics::new();
        other.record_recovery(1, 1, false);
        m.merge(&other);
        assert_eq!(m.injected_faults, 6);
        assert_eq!(m.retried, 2);
        assert_eq!(m.retry_backoff_units, 11);

        let mut sink = TraceSink::vec();
        m.emit(&mut sink);
        let fault = sink
            .events()
            .iter()
            .find(|e| e.span == "service/fault")
            .expect("fault event");
        for key in [
            "injected_faults",
            "retried",
            "degraded",
            "failed",
            "worker_panics",
            "retry_backoff_units",
        ] {
            assert!(
                fault.counters.iter().any(|(k, _)| *k == key),
                "fault event must carry {key}"
            );
        }
    }

    #[test]
    fn emit_writes_the_trace_vocabulary() {
        let mut m = ServiceMetrics::new();
        m.record_completion(10, 20, false);
        let mut sink = TraceSink::vec();
        m.emit(&mut sink);
        let spans: Vec<&str> = sink.events().iter().map(|e| e.span.as_str()).collect();
        assert_eq!(
            spans,
            [
                "service/latency_us",
                "service/queue_wait_us",
                "service/exec_us",
                "service/cache_hit_us",
                "service/summary",
                "service/fault"
            ]
        );
        let latency = &sink.events()[0];
        for key in ["count", "p50", "p95", "p99", "max", "mean"] {
            assert!(
                latency.counters.iter().any(|(k, _)| *k == key),
                "histogram event must carry {key}"
            );
        }
        let summary = sink
            .events()
            .iter()
            .find(|e| e.span == "service/summary")
            .expect("summary event");
        assert!(
            summary.counters.iter().any(|(k, _)| *k == "batches"),
            "summary must carry the batch counter"
        );
    }

    #[test]
    fn worker_metrics_snapshot_matches_sequential_recording() {
        let w = WorkerMetrics::new();
        let mut reference = ServiceMetrics::new();
        w.record_completion(10, 90, false);
        reference.record_completion(10, 90, false);
        w.record_completion(5, 0, true);
        reference.record_completion(5, 0, true);
        w.record_shed_deadline(33);
        reference.record_shed_deadline(33);
        w.record_batch();
        reference.batches += 1;
        w.record_recovery(2, 3, true);
        reference.record_recovery(2, 3, true);
        w.record_failed(1, 4, 7);
        reference.record_failed(1, 4, 7);
        w.record_worker_panic();
        reference.record_worker_panic();

        let snap = w.snapshot();
        assert_eq!(snap.completed, reference.completed);
        assert_eq!(snap.served_from_cache, reference.served_from_cache);
        assert_eq!(snap.shed_deadline, reference.shed_deadline);
        assert_eq!(snap.batches, reference.batches);
        assert_eq!(snap.injected_faults, reference.injected_faults);
        assert_eq!(snap.retried, reference.retried);
        assert_eq!(snap.degraded, reference.degraded);
        assert_eq!(snap.failed, reference.failed);
        assert_eq!(snap.worker_panics, reference.worker_panics);
        assert_eq!(snap.retry_backoff_units, reference.retry_backoff_units);
        assert_eq!(snap.latency_us.count(), reference.latency_us.count());
        assert_eq!(snap.latency_us.sum(), reference.latency_us.sum());
        assert_eq!(
            snap.cache_hit_latency_us.max(),
            reference.cache_hit_latency_us.max()
        );
        assert_eq!(snap.queue_wait_us.count(), reference.queue_wait_us.count());
    }

    #[test]
    fn write_metrics_count_and_emit_the_write_spans() {
        let w = WriteMetrics::new();
        w.record_commit(3, 1, 7, 2, 5);
        w.record_commit(1, 0, 2, 0, 6);
        w.record_aborted_commit();
        w.set_wal_gauges(3, 2, 1, 640);
        assert_eq!(w.commits(), 2);
        assert_eq!(w.aborted_commits(), 1);
        assert_eq!(w.cache_invalidation(), (2, 11));

        let mut sink = TraceSink::vec();
        w.emit(&mut sink);
        let spans: Vec<&str> = sink.events().iter().map(|e| e.span.as_str()).collect();
        assert_eq!(spans, ["service/wal", "service/apply"]);
        let wal = &sink.events()[0];
        for (key, want) in [
            ("commits", 2),
            ("aborted_commits", 1),
            ("records", 3),
            ("syncs", 2),
            ("sync_failures", 1),
            ("durable_bytes", 640),
        ] {
            assert!(
                wal.counters.iter().any(|(k, v)| *k == key && *v == want),
                "wal event must carry {key}={want}"
            );
        }
        let apply = &sink.events()[1];
        for (key, want) in [
            ("mutations_applied", 4),
            ("mutations_rejected", 1),
            ("pages_touched", 9),
            ("cache_purged", 2),
            ("cache_retained", 11),
        ] {
            assert!(
                apply.counters.iter().any(|(k, v)| *k == key && *v == want),
                "apply event must carry {key}={want}"
            );
        }
    }

    #[test]
    fn worker_snapshots_merge_into_service_totals() {
        let a = WorkerMetrics::new();
        let b = WorkerMetrics::new();
        a.record_completion(1, 10, false);
        b.record_completion(2, 0, true);
        b.record_shed_deadline(5);
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.completed, 2);
        assert_eq!(total.served_from_cache, 1);
        assert_eq!(total.shed_deadline, 1);
        assert_eq!(total.latency_us.count(), 2);
        assert_eq!(total.queue_wait_us.count(), 3);
    }
}
