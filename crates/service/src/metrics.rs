//! Per-request latency accounting: log₂-bucketed histograms for
//! end-to-end latency plus its queue-wait vs execution-time breakdown,
//! and counters for completions, cache service, and deadline sheds.
//! Everything exports through the existing `sj-obs` JSONL trace
//! vocabulary via [`ServiceMetrics::emit`].

use sj_obs::{Histogram, TraceSink};

/// The service's aggregate latency and outcome metrics.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// End-to-end latency (queue wait + execution), µs.
    pub latency_us: Histogram,
    /// Time spent in the admission queue, µs.
    pub queue_wait_us: Histogram,
    /// Time spent computing (≈0 for cache hits), µs.
    pub exec_us: Histogram,
    /// Requests answered (computed or cache-served).
    pub completed: u64,
    /// Of `completed`, answered straight from the result cache.
    pub served_from_cache: u64,
    /// Requests shed at dequeue because their deadline had passed.
    pub shed_deadline: u64,
    /// Compute attempts aborted by an injected (or real) storage fault.
    pub injected_faults: u64,
    /// Requests that completed only after at least one retry.
    pub retried: u64,
    /// Requests answered by the degraded nested-loop fallback.
    pub degraded: u64,
    /// Requests that exhausted every attempt and were rejected with
    /// `Rejection::Failed`.
    pub failed: u64,
    /// Worker panics contained at the worker boundary.
    pub worker_panics: u64,
    /// Total model-time backoff units spent between retry attempts.
    pub retry_backoff_units: u64,
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// Records one answered request.
    pub fn record_completion(&mut self, queue_us: u64, exec_us: u64, cached: bool) {
        self.latency_us.record(queue_us + exec_us);
        self.queue_wait_us.record(queue_us);
        self.exec_us.record(exec_us);
        self.completed += 1;
        if cached {
            self.served_from_cache += 1;
        }
    }

    /// Records one request shed at dequeue for missing its deadline.
    /// The wasted queue wait is still charged to the wait histogram.
    pub fn record_shed_deadline(&mut self, queue_us: u64) {
        self.queue_wait_us.record(queue_us);
        self.shed_deadline += 1;
    }

    /// Records the fault-recovery footprint of one completed request:
    /// how many attempts faulted before success, the backoff spent, and
    /// whether the degraded fallback answered it.
    pub fn record_recovery(&mut self, faulted_attempts: u32, backoff_units: u64, degraded: bool) {
        self.injected_faults += u64::from(faulted_attempts);
        self.retry_backoff_units += backoff_units;
        if faulted_attempts > 0 {
            self.retried += 1;
        }
        if degraded {
            self.degraded += 1;
        }
    }

    /// Records one request that exhausted every attempt and failed.
    pub fn record_failed(&mut self, faulted_attempts: u32, backoff_units: u64, queue_us: u64) {
        self.injected_faults += u64::from(faulted_attempts);
        self.retry_backoff_units += backoff_units;
        self.failed += 1;
        self.queue_wait_us.record(queue_us);
    }

    /// Records one contained worker panic.
    pub fn record_worker_panic(&mut self) {
        self.worker_panics += 1;
    }

    /// Folds another metrics object in (bucket-wise histogram merge plus
    /// counter sums) — e.g. to aggregate per-worker snapshots.
    pub fn merge(&mut self, other: &ServiceMetrics) {
        self.latency_us.merge(&other.latency_us);
        self.queue_wait_us.merge(&other.queue_wait_us);
        self.exec_us.merge(&other.exec_us);
        self.completed += other.completed;
        self.served_from_cache += other.served_from_cache;
        self.shed_deadline += other.shed_deadline;
        self.injected_faults += other.injected_faults;
        self.retried += other.retried;
        self.degraded += other.degraded;
        self.failed += other.failed;
        self.worker_panics += other.worker_panics;
        self.retry_backoff_units += other.retry_backoff_units;
    }

    /// Emits five JSONL events: one per histogram (count/p50/p95/p99/
    /// max/mean as counters), a `service/summary` with the outcome
    /// counters, and a `service/fault` with the fault-recovery counters,
    /// all through the standard trace vocabulary.
    pub fn emit(&self, sink: &mut TraceSink) {
        self.latency_us.emit(sink, "service/latency_us");
        self.queue_wait_us.emit(sink, "service/queue_wait_us");
        self.exec_us.emit(sink, "service/exec_us");
        sink.emit(
            "service/summary",
            0,
            &[
                ("completed", self.completed),
                ("served_from_cache", self.served_from_cache),
                ("shed_deadline", self.shed_deadline),
            ],
        );
        sink.emit(
            "service/fault",
            0,
            &[
                ("injected_faults", self.injected_faults),
                ("retried", self.retried),
                ("degraded", self.degraded),
                ("failed", self.failed),
                ("worker_panics", self.worker_panics),
                ("retry_backoff_units", self.retry_backoff_units),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_updates_all_three_histograms() {
        let mut m = ServiceMetrics::new();
        m.record_completion(10, 90, false);
        m.record_completion(5, 0, true);
        assert_eq!(m.completed, 2);
        assert_eq!(m.served_from_cache, 1);
        assert_eq!(m.latency_us.count(), 2);
        assert_eq!(m.latency_us.max(), 100);
        assert_eq!(m.queue_wait_us.max(), 10);
        assert_eq!(m.exec_us.max(), 90);
    }

    #[test]
    fn deadline_shed_charges_queue_wait_only() {
        let mut m = ServiceMetrics::new();
        m.record_shed_deadline(500);
        assert_eq!(m.shed_deadline, 1);
        assert_eq!(m.completed, 0);
        assert_eq!(m.queue_wait_us.count(), 1);
        assert_eq!(m.latency_us.count(), 0);
        assert_eq!(m.exec_us.count(), 0);
    }

    #[test]
    fn merge_sums_counters_and_buckets() {
        let mut a = ServiceMetrics::new();
        a.record_completion(1, 2, false);
        let mut b = ServiceMetrics::new();
        b.record_completion(3, 4, true);
        b.record_shed_deadline(9);
        a.merge(&b);
        assert_eq!(a.completed, 2);
        assert_eq!(a.served_from_cache, 1);
        assert_eq!(a.shed_deadline, 1);
        assert_eq!(a.latency_us.count(), 2);
        assert_eq!(a.queue_wait_us.count(), 3);
    }

    #[test]
    fn fault_counters_record_and_merge() {
        let mut m = ServiceMetrics::new();
        m.record_recovery(2, 3, true);
        m.record_recovery(0, 0, false); // clean first try: not a retry
        m.record_failed(3, 7, 42);
        m.record_worker_panic();
        assert_eq!(m.injected_faults, 5);
        assert_eq!(m.retried, 1);
        assert_eq!(m.degraded, 1);
        assert_eq!(m.failed, 1);
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.retry_backoff_units, 10);
        let mut other = ServiceMetrics::new();
        other.record_recovery(1, 1, false);
        m.merge(&other);
        assert_eq!(m.injected_faults, 6);
        assert_eq!(m.retried, 2);
        assert_eq!(m.retry_backoff_units, 11);

        let mut sink = TraceSink::vec();
        m.emit(&mut sink);
        let fault = sink
            .events()
            .iter()
            .find(|e| e.span == "service/fault")
            .expect("fault event");
        for key in [
            "injected_faults",
            "retried",
            "degraded",
            "failed",
            "worker_panics",
            "retry_backoff_units",
        ] {
            assert!(
                fault.counters.iter().any(|(k, _)| *k == key),
                "fault event must carry {key}"
            );
        }
    }

    #[test]
    fn emit_writes_the_trace_vocabulary() {
        let mut m = ServiceMetrics::new();
        m.record_completion(10, 20, false);
        let mut sink = TraceSink::vec();
        m.emit(&mut sink);
        let spans: Vec<&str> = sink.events().iter().map(|e| e.span.as_str()).collect();
        assert_eq!(
            spans,
            [
                "service/latency_us",
                "service/queue_wait_us",
                "service/exec_us",
                "service/summary",
                "service/fault"
            ]
        );
        let latency = &sink.events()[0];
        for key in ["count", "p50", "p95", "p99", "max", "mean"] {
            assert!(
                latency.counters.iter().any(|(k, _)| *k == key),
                "histogram event must carry {key}"
            );
        }
    }
}
