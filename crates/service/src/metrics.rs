//! Per-request latency accounting: log₂-bucketed histograms for
//! end-to-end latency plus its queue-wait vs execution-time breakdown,
//! and counters for completions, cache service, and deadline sheds.
//! Everything exports through the existing `sj-obs` JSONL trace
//! vocabulary via [`ServiceMetrics::emit`].

use sj_obs::{Histogram, TraceSink};

/// The service's aggregate latency and outcome metrics.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// End-to-end latency (queue wait + execution), µs.
    pub latency_us: Histogram,
    /// Time spent in the admission queue, µs.
    pub queue_wait_us: Histogram,
    /// Time spent computing (≈0 for cache hits), µs.
    pub exec_us: Histogram,
    /// Requests answered (computed or cache-served).
    pub completed: u64,
    /// Of `completed`, answered straight from the result cache.
    pub served_from_cache: u64,
    /// Requests shed at dequeue because their deadline had passed.
    pub shed_deadline: u64,
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// Records one answered request.
    pub fn record_completion(&mut self, queue_us: u64, exec_us: u64, cached: bool) {
        self.latency_us.record(queue_us + exec_us);
        self.queue_wait_us.record(queue_us);
        self.exec_us.record(exec_us);
        self.completed += 1;
        if cached {
            self.served_from_cache += 1;
        }
    }

    /// Records one request shed at dequeue for missing its deadline.
    /// The wasted queue wait is still charged to the wait histogram.
    pub fn record_shed_deadline(&mut self, queue_us: u64) {
        self.queue_wait_us.record(queue_us);
        self.shed_deadline += 1;
    }

    /// Folds another metrics object in (bucket-wise histogram merge plus
    /// counter sums) — e.g. to aggregate per-worker snapshots.
    pub fn merge(&mut self, other: &ServiceMetrics) {
        self.latency_us.merge(&other.latency_us);
        self.queue_wait_us.merge(&other.queue_wait_us);
        self.exec_us.merge(&other.exec_us);
        self.completed += other.completed;
        self.served_from_cache += other.served_from_cache;
        self.shed_deadline += other.shed_deadline;
    }

    /// Emits four JSONL events: one per histogram (count/p50/p95/p99/
    /// max/mean as counters) and a `service/summary` with the outcome
    /// counters, all through the standard trace vocabulary.
    pub fn emit(&self, sink: &mut TraceSink) {
        self.latency_us.emit(sink, "service/latency_us");
        self.queue_wait_us.emit(sink, "service/queue_wait_us");
        self.exec_us.emit(sink, "service/exec_us");
        sink.emit(
            "service/summary",
            0,
            &[
                ("completed", self.completed),
                ("served_from_cache", self.served_from_cache),
                ("shed_deadline", self.shed_deadline),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_updates_all_three_histograms() {
        let mut m = ServiceMetrics::new();
        m.record_completion(10, 90, false);
        m.record_completion(5, 0, true);
        assert_eq!(m.completed, 2);
        assert_eq!(m.served_from_cache, 1);
        assert_eq!(m.latency_us.count(), 2);
        assert_eq!(m.latency_us.max(), 100);
        assert_eq!(m.queue_wait_us.max(), 10);
        assert_eq!(m.exec_us.max(), 90);
    }

    #[test]
    fn deadline_shed_charges_queue_wait_only() {
        let mut m = ServiceMetrics::new();
        m.record_shed_deadline(500);
        assert_eq!(m.shed_deadline, 1);
        assert_eq!(m.completed, 0);
        assert_eq!(m.queue_wait_us.count(), 1);
        assert_eq!(m.latency_us.count(), 0);
        assert_eq!(m.exec_us.count(), 0);
    }

    #[test]
    fn merge_sums_counters_and_buckets() {
        let mut a = ServiceMetrics::new();
        a.record_completion(1, 2, false);
        let mut b = ServiceMetrics::new();
        b.record_completion(3, 4, true);
        b.record_shed_deadline(9);
        a.merge(&b);
        assert_eq!(a.completed, 2);
        assert_eq!(a.served_from_cache, 1);
        assert_eq!(a.shed_deadline, 1);
        assert_eq!(a.latency_us.count(), 2);
        assert_eq!(a.queue_wait_us.count(), 3);
    }

    #[test]
    fn emit_writes_the_trace_vocabulary() {
        let mut m = ServiceMetrics::new();
        m.record_completion(10, 20, false);
        let mut sink = TraceSink::vec();
        m.emit(&mut sink);
        let spans: Vec<&str> = sink.events().iter().map(|e| e.span.as_str()).collect();
        assert_eq!(
            spans,
            [
                "service/latency_us",
                "service/queue_wait_us",
                "service/exec_us",
                "service/summary"
            ]
        );
        let latency = &sink.events()[0];
        for key in ["count", "p50", "p95", "p99", "max", "mean"] {
            assert!(
                latency.counters.iter().any(|(k, _)| *k == key),
                "histogram event must carry {key}"
            );
        }
    }
}
