//! Service-level correctness properties:
//!
//! (a) a cache-enabled service returns byte-identical match sets to a
//!     cache-disabled one across all eight θ-operators, with updates
//!     interleaved arbitrarily between queries;
//! (b) responses are invariant under worker count and equal the
//!     sequential reference execution.
//!
//! Random scripts are decoded from plain byte vectors so the vendored
//! proptest shim needs nothing beyond `vec` + integer strategies.

use proptest::prelude::*;
use sj_geom::{Direction, Geometry, Point, Rect, ThetaOp};
use sj_joins::Strategy;
use sj_service::{Reply, Request, ServiceConfig, Side, SpatialService, WriteBatch};

fn grid_tuples(n: usize, step: f64, id0: u64) -> Vec<(u64, Geometry)> {
    (0..n * n)
        .map(|i| {
            (
                id0 + i as u64,
                Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
            )
        })
        .collect()
}

fn world() -> Rect {
    Rect::from_bounds(0.0, 0.0, 64.0, 64.0)
}

const ALL_THETAS: [ThetaOp; 8] = [
    ThetaOp::WithinCenterDistance(9.0),
    ThetaOp::WithinDistance(7.5),
    ThetaOp::Overlaps,
    ThetaOp::Includes,
    ThetaOp::ContainedIn,
    ThetaOp::DirectionOf(Direction::NorthWest),
    ThetaOp::ReachableWithin {
        minutes: 3.0,
        speed: 2.0,
    },
    ThetaOp::Adjacent,
];

/// Join strategies that support all eight operators (so any decoded
/// combination is submittable).
const JOIN_STRATEGIES: [Strategy; 4] = [
    Strategy::Auto,
    Strategy::NestedLoop,
    Strategy::Sweep,
    Strategy::Tree,
];

enum Op {
    Query(Request),
    Insert(Side, Geometry),
}

/// Decodes one operation from a 3-byte chunk.
fn decode(chunk: &[u8]) -> Op {
    let (a, b, c) = (chunk[0], chunk[1], chunk[2]);
    if a % 5 == 0 {
        let side = if b % 2 == 0 { Side::R } else { Side::S };
        let g = Geometry::Point(Point::new(
            (c % 16) as f64 * 4.0,
            ((c / 16) % 16) as f64 * 4.0,
        ));
        Op::Insert(side, g)
    } else if a % 2 == 0 {
        let side = if b % 2 == 0 { Side::R } else { Side::S };
        let probe = Geometry::Point(Point::new((c % 8) as f64 * 8.0, ((c / 8) % 8) as f64 * 8.0));
        Op::Query(Request::select(side, probe, ALL_THETAS[(b % 8) as usize]))
    } else {
        Op::Query(Request::join(
            JOIN_STRATEGIES[(b % 4) as usize],
            ALL_THETAS[(c % 8) as usize],
        ))
    }
}

fn service(cache_capacity: usize, workers: usize) -> SpatialService {
    let config = ServiceConfig {
        cache_capacity,
        workers,
        queue_depth: 128,
        ..ServiceConfig::default()
    };
    SpatialService::start(
        config,
        &grid_tuples(4, 8.0, 0),
        &grid_tuples(4, 8.0, 500),
        world(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property (a): caching is semantically invisible. The script
    /// interleaves inserts with queries; after it, a deterministic
    /// sweep queries every θ-operator as both SELECT and JOIN so all
    /// eight are exercised on every case.
    #[test]
    fn cache_on_and_off_are_byte_identical(
        script in prop::collection::vec(0u8..=255, 0..36),
    ) {
        let cached = service(64, 2);
        let uncached = service(0, 2);
        let mut next_id = 10_000u64;
        for chunk in script.chunks(3) {
            if chunk.len() < 3 {
                break;
            }
            match decode(chunk) {
                Op::Insert(side, g) => {
                    let batch = WriteBatch::new().insert(side, next_id, g);
                    cached.commit(&batch).expect("commit succeeds");
                    uncached.commit(&batch).expect("commit succeeds");
                    next_id += 1;
                }
                Op::Query(req) => {
                    let a = cached.call(req.clone()).expect("idle service never sheds");
                    let b = uncached.call(req).expect("idle service never sheds");
                    prop_assert_eq!(a.reply, b.reply);
                }
            }
        }
        for theta in ALL_THETAS {
            let probe = Geometry::Point(Point::new(8.0, 8.0));
            let sel = Request::select(Side::R, probe, theta);
            let a = cached.call(sel.clone()).expect("ok");
            let b = uncached.call(sel).expect("ok");
            prop_assert_eq!(a.reply, b.reply, "select under {:?}", theta);
            let join = Request::join(Strategy::Auto, theta);
            let a = cached.call(join.clone()).expect("ok");
            let b = uncached.call(join).expect("ok");
            prop_assert_eq!(a.reply, b.reply, "join under {:?}", theta);
        }
        let (hits, _, _) = uncached.cache_stats();
        prop_assert_eq!(hits, 0, "a disabled cache must never hit");
    }

    /// Property (b): worker count cannot change any answer. All
    /// requests are submitted before any response is collected, so
    /// multi-worker runs genuinely interleave.
    #[test]
    fn responses_are_invariant_under_worker_count(
        script in prop::collection::vec(0u8..=255, 0..30),
    ) {
        let requests: Vec<Request> = script
            .chunks(3)
            .filter(|c| c.len() == 3)
            .filter_map(|c| match decode(c) {
                Op::Query(req) => Some(req),
                Op::Insert(..) => None,
            })
            .collect();

        let reference_svc = service(0, 1);
        let reference: Vec<Reply> = requests
            .iter()
            .map(|req| reference_svc.execute_reference(req))
            .collect();

        for workers in [1usize, 2, 4] {
            let svc = service(32, workers);
            let receivers: Vec<_> = requests
                .iter()
                .map(|req| svc.submit(req.clone()).expect("queue_depth covers the batch"))
                .collect();
            for (i, rx) in receivers.into_iter().enumerate() {
                let resp = rx
                    .recv()
                    .expect("worker answers")
                    .expect("no deadline, no shedding");
                prop_assert_eq!(
                    &resp.reply, &reference[i],
                    "request {} diverged at {} workers", i, workers
                );
            }
        }
    }
}

/// Satellite of the fail-stop work: a stale record id is a typed
/// [`StorageError::DanglingRecord`] at the storage boundary, and the
/// *service-level* recovery from staleness is structural — a cached
/// reply is keyed by dataset version, so an update makes it
/// unreachable and the recomputation runs against the rebuilt trees'
/// fresh rids instead of ever probing stale ones.
#[test]
fn stale_rid_probe_recovers_via_version_bump() {
    use sj_storage::{BufferPool, Disk, DiskConfig, HeapFile, Layout, RecordId, StorageError};

    // Storage half: probing an emptied/out-of-range slot stops with a
    // typed error instead of panicking (the bug this PR fixes), and the
    // pool keeps serving valid rids afterwards.
    let mut pool = BufferPool::new(Disk::new(DiskConfig::paper()), 8);
    let file = HeapFile::bulk_load(&mut pool, 300, 3, Layout::Clustered);
    let stale = RecordId {
        page: file.rid(0).page,
        slot: 99,
    };
    assert!(matches!(
        pool.try_read_record(&file, stale),
        Err(StorageError::DanglingRecord { slot: 99, .. })
    ));
    assert_eq!(pool.try_read_record(&file, file.rid(1)).unwrap().len(), 300);

    // Service half: warm the cache, then commit a write inside the
    // cached query's region. The invalidation drops the stale reply, so
    // the follow-up recomputes on the evolved trees — fresh rids, no
    // stale probe — and reports the new version.
    let svc = service(64, 1);
    let req = Request::select(
        Side::R,
        Geometry::Point(Point::new(8.0, 8.0)),
        ThetaOp::WithinDistance(10.0),
    );
    let cold = svc.call(req.clone()).expect("computes");
    let warm = svc.call(req.clone()).expect("cache serves");
    assert!(!cold.cached && warm.cached, "second call must be a hit");
    let new_version = svc
        .commit(&WriteBatch::new().insert(Side::R, 9_000, Geometry::Point(Point::new(8.5, 8.0))))
        .expect("commit succeeds")
        .version;
    let fresh = svc.call(req).expect("recomputes");
    assert!(
        !fresh.cached,
        "version bump must invalidate the stale cached reply"
    );
    assert_eq!(fresh.version, new_version);
    assert_eq!(
        fresh.reply.len(),
        cold.reply.len() + 1,
        "recomputation must see the inserted tuple"
    );
}
