//! Read-your-writes linearizability of the durable mutation API.
//!
//! A random script interleaves [`WriteBatch`] commits — inserts, deletes
//! (some deliberately targeting absent ids), and upserts — with SELECT
//! and JOIN queries (including `Strategy::Auto`, whose resolution samples
//! the relations and is therefore sensitive to tuple *order*). After
//! every step the live incremental service must agree byte-for-byte with
//! a sequential oracle: an in-memory replica of both relations mutated
//! by the same position-preserving discipline, rebuilt into a fresh
//! single-threaded service at the reply's reported version.
//!
//! This is the tentpole's contract: incremental tree maintenance and
//! fine-grained cache invalidation are pure optimizations — no
//! interleaving of writes and reads can produce a reply that a full
//! sequential rebuild would not.

use proptest::prelude::*;
use sj_geom::{Geometry, Point, Rect, ThetaOp};
use sj_joins::Strategy;
use sj_service::{
    Mutation, MutationOutcome, Reply, Request, ServiceConfig, Side, SpatialService, WriteBatch,
};

fn grid_tuples(n: usize, step: f64, id0: u64) -> Vec<(u64, Geometry)> {
    (0..n * n)
        .map(|i| {
            (
                id0 + i as u64,
                Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
            )
        })
        .collect()
}

fn world() -> Rect {
    Rect::from_bounds(0.0, 0.0, 64.0, 64.0)
}

fn service(cache_capacity: usize, workers: usize) -> SpatialService {
    let config = ServiceConfig {
        cache_capacity,
        workers,
        queue_depth: 128,
        ..ServiceConfig::default()
    };
    SpatialService::start(
        config,
        &grid_tuples(4, 8.0, 0),
        &grid_tuples(4, 8.0, 500),
        world(),
    )
}

/// The oracle's replica of one relation side, mutated with exactly the
/// position discipline the service uses: append on insert, order-
/// preserving remove on delete, in-place replace on upsert. Tuple order
/// determines `Strategy::Auto`'s sampling, so the discipline is part of
/// the spec, not an implementation detail.
fn apply_oracle(tuples: &mut Vec<(u64, Geometry)>, op: &Mutation) -> MutationOutcome {
    match op {
        Mutation::Insert { id, value } => {
            if tuples.iter().any(|(i, _)| i == id) {
                MutationOutcome::DuplicateId
            } else {
                tuples.push((*id, value.clone()));
                MutationOutcome::Inserted
            }
        }
        Mutation::Delete { id } => match tuples.iter().position(|(i, _)| i == id) {
            Some(pos) => {
                tuples.remove(pos);
                MutationOutcome::Deleted
            }
            None => MutationOutcome::MissingId,
        },
        Mutation::Upsert { id, value } => {
            let replaced = match tuples.iter().position(|(i, _)| i == id) {
                Some(pos) => {
                    tuples[pos] = (*id, value.clone());
                    true
                }
                None => {
                    tuples.push((*id, value.clone()));
                    false
                }
            };
            MutationOutcome::Upserted { replaced }
        }
    }
}

enum Step {
    Commit(WriteBatch),
    Query(Request),
}

const QUERY_THETAS: [ThetaOp; 4] = [
    ThetaOp::WithinDistance(7.5),
    ThetaOp::WithinCenterDistance(9.0),
    ThetaOp::Overlaps,
    ThetaOp::Adjacent,
];

/// Decodes one step from a 4-byte chunk. Mutations target the id space
/// the script itself populates (`10_000..`) plus the seed grid, so
/// duplicate inserts, real deletes, and missing-id deletes all occur.
fn decode(chunk: &[u8], next_id: &mut u64) -> Step {
    let (a, b, c, d) = (chunk[0], chunk[1], chunk[2], chunk[3]);
    let side = if b.is_multiple_of(2) {
        Side::R
    } else {
        Side::S
    };
    let point = |v: u8| {
        Geometry::Point(Point::new(
            (v % 16) as f64 * 4.0,
            ((v / 16) % 16) as f64 * 4.0,
        ))
    };
    match a % 6 {
        0 | 1 => {
            // A write batch of 1–3 ops against both sides.
            let mut batch = WriteBatch::new();
            for (i, v) in [c, d, c ^ d].iter().enumerate().take(1 + (d % 3) as usize) {
                let side = if (b as usize + i).is_multiple_of(2) {
                    Side::R
                } else {
                    Side::S
                };
                match v % 4 {
                    0 => {
                        batch = batch.insert(side, 10_000 + *next_id, point(*v));
                        *next_id += 1;
                    }
                    1 => {
                        // Sometimes live (script-inserted or seed grid),
                        // sometimes absent — both outcomes are typed.
                        let id = if v.is_multiple_of(2) {
                            10_000 + u64::from(*v) % (*next_id).max(1)
                        } else {
                            u64::from(*v)
                        };
                        batch = batch.delete(side, id);
                    }
                    2 => {
                        batch = batch.upsert(side, u64::from(*v) % 16, point(v.wrapping_add(7)));
                    }
                    _ => {
                        batch = batch.insert(side, 10_000 + *next_id, point(v.wrapping_mul(3)));
                        *next_id += 1;
                    }
                }
            }
            Step::Commit(batch)
        }
        2 | 3 => {
            let probe = point(c);
            Step::Query(Request::select(side, probe, QUERY_THETAS[(d % 4) as usize]))
        }
        _ => {
            let strat = [Strategy::Auto, Strategy::Sweep, Strategy::Tree][(b % 3) as usize];
            Step::Query(Request::join(strat, QUERY_THETAS[(c % 4) as usize]))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of commits and queries is indistinguishable from
    /// the sequential history: replies (including `Auto` strategy
    /// resolution), per-op outcomes, and reported versions all match the
    /// oracle exactly.
    #[test]
    fn interleaved_writes_and_reads_linearize(
        script in prop::collection::vec(0u8..=255, 0..48),
    ) {
        let live = service(32, 2);
        let mut r: Vec<(u64, Geometry)> = grid_tuples(4, 8.0, 0);
        let mut s: Vec<(u64, Geometry)> = grid_tuples(4, 8.0, 500);
        let oracle_config = ServiceConfig {
            cache_capacity: 0,
            workers: 1,
            queue_depth: 128,
            ..ServiceConfig::default()
        };
        let mut version = 0u64;
        let mut next_id = 0u64;
        for chunk in script.chunks(4) {
            if chunk.len() < 4 {
                break;
            }
            match decode(chunk, &mut next_id) {
                Step::Commit(batch) => {
                    // A delete must never empty a side: the advisor
                    // samples live tuples. Skip batches that would.
                    let deletes = |side: Side| {
                        batch.ops.iter().filter(|(sd, op)| {
                            *sd == side && matches!(op, Mutation::Delete { .. })
                        }).count()
                    };
                    if deletes(Side::R) + 1 >= r.len() || deletes(Side::S) + 1 >= s.len() {
                        continue;
                    }
                    let want: Vec<MutationOutcome> = batch
                        .ops
                        .iter()
                        .map(|(side, op)| match side {
                            Side::R => apply_oracle(&mut r, op),
                            Side::S => apply_oracle(&mut s, op),
                        })
                        .collect();
                    let receipt = live.commit(&batch).expect("commit succeeds");
                    version += 1;
                    prop_assert_eq!(receipt.version, version, "versions count commits");
                    prop_assert_eq!(&receipt.outcomes, &want, "typed outcomes match the oracle");
                }
                Step::Query(req) => {
                    let resp = live.call(req.clone()).expect("idle service never sheds");
                    prop_assert_eq!(resp.version, version, "read-your-writes: replies report the committed version");
                    let oracle = SpatialService::start(oracle_config, &r, &s, world());
                    let want = oracle.execute_reference(&req);
                    prop_assert_eq!(&resp.reply, &want, "reply diverged from the sequential rebuild at version {}", version);
                }
            }
        }
        // Closing sweep: every θ as SELECT and as an Auto JOIN against
        // the final state, so every case ends with full coverage.
        let oracle = SpatialService::start(oracle_config, &r, &s, world());
        for theta in QUERY_THETAS {
            let sel = Request::select(Side::R, Geometry::Point(Point::new(8.0, 8.0)), theta);
            let a = live.call(sel.clone()).expect("ok");
            prop_assert_eq!(&a.reply, &oracle.execute_reference(&sel));
            let join = Request::join(Strategy::Auto, theta);
            let a = live.call(join.clone()).expect("ok");
            let Reply::Join { pairs: got, resolved, .. } = &a.reply else {
                panic!("join reply expected");
            };
            let Reply::Join { pairs: want, resolved: want_resolved, .. } =
                oracle.execute_reference(&join)
            else {
                panic!("join reply expected");
            };
            prop_assert_eq!(got, &want, "Auto pairs under {:?}", theta);
            prop_assert_eq!(resolved, &want_resolved, "Auto must resolve identically under {:?}", theta);
        }
    }
}
