//! WAL crash-recovery chaos: kill the log at every fsync boundary and
//! demand the recovered service is *exactly* the durable prefix of the
//! history — or a typed error. Never a wrong answer.
//!
//! The fault injector targets sync attempt `k` (the WAL consults
//! `FaultOp::Write` on `PageId(k)` for its `k`-th fsync, 0-based), so
//! one run per `k` simulates a crash at each commit point in turn: the
//! failed commit aborts (state and version unchanged), every other
//! commit lands, and recovery from the surviving durable image rebuilds
//! precisely the successful history. Corrupting any byte of the image
//! makes recovery fail-stop with [`StorageError::WalCorrupt`].

use std::collections::HashSet;

use sj_geom::{Geometry, Point, Rect, ThetaOp};
use sj_joins::Strategy;
use sj_service::{Rejection, Request, ServiceConfig, Side, SpatialService, WriteBatch};
use sj_storage::{FaultConfig, FaultInjector, PageId, StorageError};

fn grid_tuples(n: usize, step: f64, id0: u64) -> Vec<(u64, Geometry)> {
    (0..n * n)
        .map(|i| {
            (
                id0 + i as u64,
                Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
            )
        })
        .collect()
}

fn world() -> Rect {
    Rect::from_bounds(0.0, 0.0, 64.0, 64.0)
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        queue_depth: 64,
        ..ServiceConfig::default()
    }
}

/// The commit history every run replays: five small batches mixing
/// inserts, an upsert-rewrite, and a delete.
fn history() -> Vec<WriteBatch> {
    (0..5u64)
        .map(|k| {
            let x = 10.0 + k as f64 * 5.0;
            let mut batch = WriteBatch::new()
                .insert(Side::R, 7_000 + k, Geometry::Point(Point::new(x, 12.0)))
                .insert(Side::S, 8_000 + k, Geometry::Point(Point::new(12.0, x)));
            if k >= 2 {
                // Rewrite batch k-2's R insert and drop its S insert.
                batch = batch
                    .upsert(Side::R, 7_000 + k - 2, Geometry::Point(Point::new(x, 40.0)))
                    .delete(Side::S, 8_000 + k - 2);
            }
            batch
        })
        .collect()
}

/// Fault injector whose `write_prob: 1.0` fires only on the targeted
/// sync attempt.
fn sync_killer(attempt: u32) -> FaultInjector {
    FaultInjector::new(FaultConfig {
        seed: 7,
        read_prob: 0.0,
        write_prob: 1.0,
        alloc_prob: 0.0,
        target_pages: Some(HashSet::from([PageId(attempt)])),
        budget: None,
    })
}

fn probes() -> Vec<Request> {
    vec![
        Request::select(
            Side::R,
            Geometry::Point(Point::new(12.0, 12.0)),
            ThetaOp::WithinDistance(9.0),
        ),
        Request::select(
            Side::S,
            Geometry::Point(Point::new(12.0, 20.0)),
            ThetaOp::WithinCenterDistance(12.0),
        ),
        Request::join(Strategy::Auto, ThetaOp::WithinDistance(7.5)),
        Request::join(Strategy::Tree, ThetaOp::Adjacent),
    ]
}

#[test]
fn crash_at_every_fsync_boundary_recovers_the_durable_prefix() {
    let r0 = grid_tuples(5, 8.0, 0);
    let s0 = grid_tuples(5, 8.0, 500);
    let batches = history();

    for fail_at in 0..batches.len() {
        let svc = SpatialService::start(config(), &r0, &s0, world());
        svc.set_wal_fault_injector(Some(sync_killer(fail_at as u32)));

        // Sequential reference over the batches that actually land.
        let reference = SpatialService::start(config(), &r0, &s0, world());
        let mut committed = 0u64;
        for (k, batch) in batches.iter().enumerate() {
            match svc.commit(batch) {
                Ok(receipt) => {
                    reference.commit(batch).expect("reference has no injector");
                    committed += 1;
                    assert_eq!(
                        receipt.version, committed,
                        "crash run {fail_at}: surviving commits renumber densely"
                    );
                }
                Err(Rejection::Failed(e)) => {
                    assert_eq!(k, fail_at, "crash run {fail_at}: only the armed sync fails");
                    assert_eq!(e.kind(), "injected_fault");
                }
                Err(other) => panic!("crash run {fail_at}: unexpected rejection {other:?}"),
            }
        }
        assert_eq!(committed, batches.len() as u64 - 1);
        assert_eq!(
            svc.write_metrics().aborted_commits(),
            1,
            "crash run {fail_at}: exactly one abort"
        );

        // Recover from the durable image: the recovered service must be
        // indistinguishable from the sequential reference.
        let recovered = SpatialService::recover(config(), &r0, &s0, world(), &svc.wal_image())
            .expect("the durable image is well-formed");
        assert_eq!(recovered.version(), committed, "crash run {fail_at}");
        for req in probes() {
            assert_eq!(
                recovered.execute_reference(&req),
                reference.execute_reference(&req),
                "crash run {fail_at}: recovered state diverged on {req:?}"
            );
        }

        // Fail-stop on corruption: flipping any sampled byte of the
        // image must yield a typed WalCorrupt, never a wrong answer.
        let image = svc.wal_image();
        for pos in (0..image.len()).step_by(image.len() / 16 + 1) {
            let mut bad = image.clone();
            bad[pos] ^= 0x40;
            match SpatialService::recover(config(), &r0, &s0, world(), &bad) {
                Err(StorageError::WalCorrupt { .. }) => {}
                Err(other) => panic!("crash run {fail_at}: wrong error kind {other:?}"),
                Ok(recovered) => {
                    // A flip past the last sync marker only touches the
                    // discarded volatile tail — recovery may legally
                    // succeed, but then it must still equal the prefix.
                    for req in probes() {
                        assert_eq!(
                            recovered.execute_reference(&req),
                            reference.execute_reference(&req),
                            "crash run {fail_at}: corrupt-tail recovery diverged"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn retry_after_a_failed_sync_commits_cleanly() {
    let r0 = grid_tuples(4, 8.0, 0);
    let s0 = grid_tuples(4, 8.0, 500);
    let svc = SpatialService::start(config(), &r0, &s0, world());
    svc.set_wal_fault_injector(Some(sync_killer(0)));

    let batch = WriteBatch::new().insert(Side::R, 9_001, Geometry::Point(Point::new(9.0, 9.0)));
    let err = svc.commit(&batch).expect_err("armed sync must fail");
    assert!(matches!(err, Rejection::Failed(_)));
    assert_eq!(svc.version(), 0, "aborted commit leaves no trace");

    // The WAL rolled its volatile tail back, so the retry re-appends the
    // batch and lands at version 1 — and recovery sees it exactly once.
    let receipt = svc.commit(&batch).expect("sync attempt 1 is unarmed");
    assert_eq!(receipt.version, 1);
    let recovered = SpatialService::recover(config(), &r0, &s0, world(), &svc.wal_image())
        .expect("durable image recovers");
    assert_eq!(recovered.version(), 1);
    let probe = Request::select(
        Side::R,
        Geometry::Point(Point::new(9.0, 9.0)),
        ThetaOp::WithinDistance(2.0),
    );
    assert_eq!(
        recovered.execute_reference(&probe),
        svc.execute_reference(&probe),
        "the retried write is durable exactly once"
    );
}
