//! Snapshot-swap stress: worker threads JOIN continuously while a
//! writer streams update batches through the service. Every successful
//! response reports the dataset version it was computed against; the
//! test replays each one on a sequentially rebuilt service holding
//! exactly that version's tuples and demands byte-identical results.
//!
//! This pins down the tentpole's core correctness claim: publishing a
//! new snapshot never tears an in-flight request — a request computes
//! entirely against one version and says which.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sj_geom::{Geometry, Point, Rect, ThetaOp};
use sj_joins::Strategy;
use sj_service::{Rejection, Reply, Request, ServiceConfig, Side, SpatialService, WriteBatch};

/// One recorded response: (dataset version, θ-slot, sorted join pairs).
type Observation = (u64, usize, Vec<(u64, u64)>);

fn grid_tuples(n: usize, step: f64, id0: u64) -> Vec<(u64, Geometry)> {
    (0..n * n)
        .map(|i| {
            (
                id0 + i as u64,
                Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
            )
        })
        .collect()
}

fn world() -> Rect {
    Rect::from_bounds(0.0, 0.0, 64.0, 64.0)
}

/// The request stream both the live run and the replay use: a few
/// distinct θ-distances so the cache serves some repeats while others
/// compute.
fn request_for(slot: usize) -> Request {
    let d = 4.0 + (slot % 8) as f64 * 0.9;
    Request::join(Strategy::Sweep, ThetaOp::WithinDistance(d))
}

#[test]
fn concurrent_joins_match_sequential_replay_of_their_reported_version() {
    let config = ServiceConfig {
        workers: 4,
        queue_depth: 256,
        cache_capacity: 64,
        ..ServiceConfig::default()
    };
    let r0 = grid_tuples(6, 8.0, 0);
    let s0 = grid_tuples(6, 8.0, 1000);
    let svc = Arc::new(SpatialService::start(config, &r0, &s0, world()));

    // The update stream: each batch drops one fresh point per side into
    // the middle of the grid, where the θ-distances above will see it.
    let batches: Vec<Vec<(Side, u64, Geometry)>> = (0..5u64)
        .map(|b| {
            let x = 10.0 + b as f64 * 3.0;
            vec![
                (Side::R, 5000 + b, Geometry::Point(Point::new(x, 12.0))),
                (Side::S, 6000 + b, Geometry::Point(Point::new(12.0, x))),
            ]
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4usize)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen: Vec<Observation> = Vec::new();
                let mut k = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let slot = t * 3 + k;
                    k += 1;
                    match svc.call(request_for(slot)) {
                        Ok(resp) => {
                            let Reply::Join { pairs, .. } = &resp.reply else {
                                panic!("join reply expected");
                            };
                            seen.push((resp.version, slot % 8, pairs.to_vec()));
                        }
                        // Overload shedding is fine under stress; a
                        // closed queue means shutdown raced us.
                        Err(Rejection::QueueFull) => continue,
                        Err(Rejection::Closed) => break,
                        Err(other) => panic!("unexpected rejection {other:?}"),
                    }
                }
                seen
            })
        })
        .collect();

    // Stream the updates while the readers hammer the service.
    for batch in &batches {
        std::thread::sleep(Duration::from_millis(30));
        let wb = batch.iter().fold(WriteBatch::new(), |wb, (side, id, g)| {
            wb.insert(*side, *id, g.clone())
        });
        svc.commit(&wb).expect("stress commits must succeed");
    }
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let mut responses: Vec<Observation> = Vec::new();
    for reader in readers {
        responses.extend(reader.join().expect("reader thread must not panic"));
    }
    assert!(!responses.is_empty(), "the stress run must answer requests");

    let observed: std::collections::BTreeSet<u64> = responses.iter().map(|(v, _, _)| *v).collect();
    assert!(
        observed.len() >= 2,
        "the run must span multiple snapshot versions, saw {observed:?}"
    );
    assert!(
        *observed.iter().max().unwrap() as usize <= batches.len(),
        "versions beyond the update stream are impossible"
    );

    // Sequential replay: rebuild every observed version from the update
    // history and demand each response equals the fault-free reference
    // of exactly the version it reported.
    let replay_config = ServiceConfig {
        workers: 1,
        cache_capacity: 0,
        ..config
    };
    for &version in &observed {
        let mut r = r0.clone();
        let mut s = s0.clone();
        let mut w = world();
        for batch in batches.iter().take(version as usize) {
            for (side, id, g) in batch {
                w = w.union(&sj_geom::Bounded::mbr(g));
                match side {
                    Side::R => r.push((*id, g.clone())),
                    Side::S => s.push((*id, g.clone())),
                }
            }
        }
        let reference = SpatialService::start(replay_config, &r, &s, w);
        for slot in 0..8 {
            let Reply::Join { pairs: want, .. } = reference.execute_reference(&request_for(slot))
            else {
                panic!("join reply expected");
            };
            for (_, got_slot, got) in responses
                .iter()
                .filter(|(v, sl, _)| *v == version && *sl == slot)
            {
                assert_eq!(
                    got, &*want,
                    "slot {got_slot} at version {version} diverged from sequential replay"
                );
            }
        }
    }

    // Updates landed mid-traffic and never blocked the readers into
    // starvation: responses exist from before and after publishes.
    let m = svc.metrics();
    assert_eq!(m.completed, responses.len() as u64);
}
