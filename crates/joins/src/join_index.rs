//! Strategy III: join indices (Valduriez 1987) on a B⁺-tree.
//!
//! A join index is "a two-column relation that stores the tuple IDs of
//! matching tuples" (§2.1). Building it precomputes the full θ-join;
//! afterwards a join is a scan of the index plus tuple fetches, and a
//! selection is a prefix range-scan. The price is maintenance: every
//! insertion into either relation must be θ-checked against the entire
//! other relation (`U_III`, §4.2).
//!
//! Index pages are modelled by the B⁺-tree's nodes (order `z`, the model's
//! entries-per-page); every node visit is charged as one page read.

use sj_btree::BPlusTree;
use sj_geom::{Geometry, ThetaOp};
use sj_obs::{Phase, PhaseTimer, TraceSink};
use sj_storage::{BufferPool, StorageError};

use crate::relation::StoredRelation;
use crate::stats::{ExecStats, JoinRun, SelectRun};

/// A persistent, incrementally maintained join index for `R ⋈_θ S`.
#[derive(Debug)]
pub struct JoinIndex {
    /// `(r_id, s_id)` pairs in lexicographic order.
    forward: BPlusTree<(u64, u64), ()>,
    theta: ThetaOp,
}

impl JoinIndex {
    /// Precomputes the join index by θ-testing all pairs. Returns the
    /// index and the (substantial) build cost: a nested-loop pass priced
    /// in θ-evaluations, data-page reads, and index-page writes.
    pub fn build(
        pool: &mut BufferPool,
        r: &StoredRelation,
        s: &StoredRelation,
        theta: ThetaOp,
        z: usize,
    ) -> (Self, ExecStats) {
        Self::try_build(pool, r, s, theta, z)
            .unwrap_or_else(|e| panic!("join index build failed: {e}"))
    }

    /// Fail-stop [`JoinIndex::build`]: the first storage fault during the
    /// build scans aborts with a typed error (no partially built index).
    pub fn try_build(
        pool: &mut BufferPool,
        r: &StoredRelation,
        s: &StoredRelation,
        theta: ThetaOp,
        z: usize,
    ) -> Result<(Self, ExecStats), StorageError> {
        let before = pool.stats();
        let mut stats = ExecStats::default();
        let mut forward = BPlusTree::new(z);
        let r_rows = r.try_scan(pool)?;
        let s_rows = s.try_scan(pool)?;
        for (r_id, r_geom) in &r_rows {
            for (s_id, s_geom) in &s_rows {
                stats.theta_evals += 1;
                if theta.eval(r_geom, s_geom) {
                    forward.insert((*r_id, *s_id), ());
                }
            }
        }
        stats.add_io(pool.stats().since(&before));
        // Index construction I/O: one write per node built.
        stats.physical_writes += forward.node_count() as u64;
        forward.reset_accesses();
        Ok((JoinIndex { forward, theta }, stats))
    }

    /// Number of index entries (the model's `J`).
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True if no pairs are indexed.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Height of the underlying B⁺-tree (the model's `d`).
    pub fn height(&self) -> usize {
        self.forward.height()
    }

    /// The θ-operator this index materializes.
    pub fn theta(&self) -> ThetaOp {
        self.theta
    }

    /// Computes the full join from the index: read the index (leaf chain)
    /// and fetch every matching tuple pair through the pool.
    pub fn join(&self, pool: &mut BufferPool, r: &StoredRelation, s: &StoredRelation) -> JoinRun {
        self.join_traced(pool, r, s, &mut TraceSink::Null)
    }

    /// [`join`](JoinIndex::join) with phase instrumentation: index node
    /// accesses are the `index-probe` phase, tuple fetches the `refine`
    /// phase (strategy III does zero comparison work at query time).
    pub fn join_traced(
        &self,
        pool: &mut BufferPool,
        r: &StoredRelation,
        s: &StoredRelation,
        trace: &mut TraceSink,
    ) -> JoinRun {
        self.try_join_traced(pool, r, s, trace)
            .unwrap_or_else(|e| panic!("join index join failed: {e}"))
    }

    /// Fail-stop [`join_traced`](JoinIndex::join_traced).
    pub fn try_join_traced(
        &self,
        pool: &mut BufferPool,
        r: &StoredRelation,
        s: &StoredRelation,
        trace: &mut TraceSink,
    ) -> Result<JoinRun, StorageError> {
        let mut timer = PhaseTimer::for_sink(trace);
        timer.enter(Phase::IndexProbe);
        let window = pool.stats();
        self.forward.reset_accesses();
        let mut run = JoinRun::default();
        timer.enter(Phase::Refine);
        let mut refine = ExecStats::default();
        for ((r_id, s_id), ()) in self.forward.iter_all() {
            // Fetch the joined tuples — the buffer pool plays the role of
            // the model's (M − 10)-page memory window.
            let _ = r.try_read_by_id(pool, r_id)?;
            let _ = s.try_read_by_id(pool, s_id)?;
            run.pairs.push((r_id, s_id));
        }
        refine.add_io(pool.stats().since(&window));
        timer.stop();
        run.phases.record(
            Phase::IndexProbe,
            ExecStats {
                physical_reads: self.forward.accesses(),
                passes: 1,
                ..Default::default()
            },
        );
        run.phases.record(Phase::Refine, refine);
        run.seal("join_index", &timer, trace);
        Ok(run)
    }

    /// Spatial selection via the index: all `s_id` paired with `r_id`
    /// (a prefix range scan), fetching the matching `S` tuples.
    pub fn select_for_r(&self, pool: &mut BufferPool, r_id: u64, s: &StoredRelation) -> SelectRun {
        let before = pool.stats();
        self.forward.reset_accesses();
        let mut run = SelectRun::default();
        for ((_, s_id), ()) in self.forward.range(&(r_id, 0), &(r_id, u64::MAX)) {
            let _ = s.read_by_id(pool, s_id);
            run.matches.push(s_id);
        }
        run.stats.add_io(pool.stats().since(&before));
        run.stats.physical_reads += self.forward.accesses();
        run
    }

    /// Maintenance for an insertion into `R`: the new tuple must be
    /// θ-checked against every tuple of `S` (`U_III` with `T = |S|`).
    pub fn maintain_insert_r(
        &mut self,
        pool: &mut BufferPool,
        r_id: u64,
        r_geom: &Geometry,
        s: &StoredRelation,
    ) -> ExecStats {
        let before = pool.stats();
        let mut stats = ExecStats::default();
        self.forward.reset_accesses();
        let mut inserts = 0u64;
        for (s_id, s_geom) in s.scan(pool) {
            stats.theta_evals += 1;
            if self.theta.eval(r_geom, &s_geom) {
                self.forward.insert((r_id, s_id), ());
                inserts += 1;
            }
        }
        stats.add_io(pool.stats().since(&before));
        // Index-page writes: approximate one write per touched node.
        stats.physical_writes += self.forward.accesses().min(inserts * self.height() as u64);
        stats
    }

    /// Maintenance for a deletion from `R`: drop all pairs with this id.
    pub fn maintain_delete_r(&mut self, r_id: u64) -> usize {
        let doomed: Vec<(u64, u64)> = self
            .forward
            .range(&(r_id, 0), &(r_id, u64::MAX))
            .into_iter()
            .map(|(k, ())| k)
            .collect();
        for k in &doomed {
            self.forward.remove(k);
        }
        doomed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested_loop::nested_loop_join;
    use sj_geom::Point;
    use sj_storage::{Disk, DiskConfig, Layout};

    fn pool() -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), 64)
    }

    fn grid_rel(pool: &mut BufferPool, n: usize, step: f64, id0: u64) -> StoredRelation {
        let tuples: Vec<(u64, Geometry)> = (0..n * n)
            .map(|i| {
                (
                    id0 + i as u64,
                    Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
                )
            })
            .collect();
        StoredRelation::build(pool, &tuples, 300, Layout::Clustered)
    }

    #[test]
    fn indexed_join_equals_nested_loop() {
        let mut p = pool();
        let r = grid_rel(&mut p, 6, 10.0, 0);
        let s = grid_rel(&mut p, 6, 10.0, 500);
        let theta = ThetaOp::WithinDistance(10.5);
        let (idx, build_stats) = JoinIndex::build(&mut p, &r, &s, theta, 16);
        assert_eq!(build_stats.theta_evals, 36 * 36);

        let mut got = idx.join(&mut p, &r, &s).pairs;
        got.sort_unstable();
        let mut want = nested_loop_join(&mut p, &r, &s, theta).pairs;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn join_from_index_needs_no_theta_evals() {
        let mut p = pool();
        let r = grid_rel(&mut p, 5, 10.0, 0);
        let s = grid_rel(&mut p, 5, 10.0, 500);
        let (idx, _) = JoinIndex::build(&mut p, &r, &s, ThetaOp::WithinDistance(10.5), 16);
        let run = idx.join(&mut p, &r, &s);
        assert_eq!(
            run.stats.theta_evals, 0,
            "strategy III does no θ work at query time"
        );
        assert!(run.stats.physical_reads > 0);
    }

    #[test]
    fn select_for_r_matches_filtered_join() {
        let mut p = pool();
        let r = grid_rel(&mut p, 5, 10.0, 0);
        let s = grid_rel(&mut p, 5, 10.0, 500);
        let theta = ThetaOp::WithinDistance(10.5);
        let (idx, _) = JoinIndex::build(&mut p, &r, &s, theta, 8);
        let all = idx.join(&mut p, &r, &s).pairs;
        for probe in [0u64, 12, 24] {
            let mut got = idx.select_for_r(&mut p, probe, &s).matches;
            got.sort_unstable();
            let mut want: Vec<u64> = all
                .iter()
                .filter(|(a, _)| *a == probe)
                .map(|(_, b)| *b)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "probe {probe}");
        }
    }

    #[test]
    fn maintenance_insert_updates_index() {
        let mut p = pool();
        let r = grid_rel(&mut p, 4, 10.0, 0);
        let s = grid_rel(&mut p, 4, 10.0, 500);
        let theta = ThetaOp::WithinDistance(0.5);
        let (mut idx, _) = JoinIndex::build(&mut p, &r, &s, theta, 8);
        let before_len = idx.len();
        // A new R tuple exactly on top of S tuple 505 (grid cell (1, 1)).
        let g = Geometry::Point(Point::new(10.0, 10.0));
        let stats = idx.maintain_insert_r(&mut p, 99, &g, &s);
        assert_eq!(stats.theta_evals, 16, "must θ-check all of S");
        assert_eq!(idx.len(), before_len + 1);
        let found = idx.select_for_r(&mut p, 99, &s).matches;
        assert_eq!(found, vec![505]);
    }

    #[test]
    fn maintenance_delete_removes_pairs() {
        let mut p = pool();
        let r = grid_rel(&mut p, 4, 10.0, 0);
        let s = grid_rel(&mut p, 4, 10.0, 500);
        let (mut idx, _) = JoinIndex::build(&mut p, &r, &s, ThetaOp::WithinDistance(10.5), 8);
        let victim = 5u64;
        let had = idx.select_for_r(&mut p, victim, &s).matches.len();
        assert!(had > 0);
        assert_eq!(idx.maintain_delete_r(victim), had);
        assert!(idx.select_for_r(&mut p, victim, &s).matches.is_empty());
    }

    #[test]
    fn build_bears_all_theta_cost() {
        // The §4 trade-off in miniature: precomputation is a full nested
        // loop; the query does zero comparison work and touches at most
        // the index plus the data pages of the matching tuples.
        let mut p = pool();
        let r = grid_rel(&mut p, 6, 10.0, 0);
        let s = grid_rel(&mut p, 6, 10.0, 500);
        let (idx, build) = JoinIndex::build(&mut p, &r, &s, ThetaOp::WithinDistance(0.5), 16);
        p.clear();
        p.reset_stats();
        let query = idx.join(&mut p, &r, &s);
        assert_eq!(build.theta_evals, 36 * 36);
        assert_eq!(query.stats.theta_evals, 0);
        let data_pages = (r.page_count() + s.page_count()) as u64;
        let index_pages = idx.len().div_ceil(16) as u64 + idx.height() as u64;
        assert!(
            query.stats.physical_reads <= data_pages + index_pages + 2,
            "query reads {} exceed data {} + index {}",
            query.stats.physical_reads,
            data_pages,
            index_pages
        );
    }
}
