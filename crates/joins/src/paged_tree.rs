//! Storage mapping for generalization trees.
//!
//! §4.1: "the tree nodes contain the complete tuples that correspond to
//! the spatial object represented in that node" — i.e. the tree *is* the
//! relation's storage, and visiting a node costs the I/O of its tuple
//! record. [`PagedTree`] assigns every tree node a fixed-size record on a
//! heap file, in breadth-first order under [`Layout::Clustered`]
//! (strategy IIb) or scattered under [`Layout::Unclustered`]
//! (strategy IIa), and charges a record read per visit.

use sj_gentree::{FlatChildren, GenTree, NodeId};
use sj_geom::{codec, Geometry, QKind};
use sj_storage::{BufferPool, HeapFile, Layout, RecordId, StorageError};

/// Sentinel id for directory nodes (R-tree interiors), which carry no
/// application tuple but still occupy a stored record.
const DIRECTORY_ID: u64 = u64::MAX;

/// Record encoding used for the stored tree nodes.
///
/// [`CodecMode::Quantized`] stores entry geometries as v2 quantized
/// frames ([`codec::encode_qrecord`]): polygon/polyline vertices become
/// fixed-point grid cells, so node records shrink, more nodes share a
/// page, and every traversal pays fewer physical reads. θ-evaluation in
/// the tree executors runs on the in-memory [`GenTree`] — the stored
/// record is only the paper's per-node I/O charge — so the match set is
/// unchanged byte for byte (tested).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CodecMode {
    /// Lossless v1 records (the default).
    #[default]
    Exact,
    /// Quantized v2 records (smaller pages, conservative content).
    Quantized,
}

/// Logical node order used for clustered placement — §3.2's observation
/// that the efficiency of depth-first vs. breadth-first traversal depends
/// on the physical clustering of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterOrder {
    /// Level-by-level (the paper's default for strategy IIb).
    #[default]
    BreadthFirst,
    /// Pre-order.
    DepthFirst,
}

/// The node→record mapping for one generalization tree.
#[derive(Debug, Clone)]
pub struct PagedTree {
    file: HeapFile,
    /// `record[n.index()]` = the record that stores node `n`. Indexed by
    /// arena slot; only slots for live nodes are meaningful.
    record: Vec<RecordId>,
    mode: CodecMode,
}

impl PagedTree {
    /// Lays the tree's nodes out on a heap file in breadth-first logical
    /// order, placed per `layout`.
    pub fn build(
        pool: &mut BufferPool,
        tree: &GenTree,
        record_size: usize,
        layout: Layout,
    ) -> Self {
        Self::build_ordered(pool, tree, record_size, layout, ClusterOrder::BreadthFirst)
    }

    /// Like [`PagedTree::build`] with an explicit logical clustering
    /// order.
    pub fn build_ordered(
        pool: &mut BufferPool,
        tree: &GenTree,
        record_size: usize,
        layout: Layout,
        cluster: ClusterOrder,
    ) -> Self {
        Self::build_ordered_with(pool, tree, record_size, layout, cluster, CodecMode::Exact)
    }

    /// Like [`PagedTree::build_ordered`] with an explicit record codec.
    /// With [`CodecMode::Quantized`] pass a `record_size` sized for the
    /// v2 frames (see [`PagedTree::quant_record_size`]).
    pub fn build_ordered_with(
        pool: &mut BufferPool,
        tree: &GenTree,
        record_size: usize,
        layout: Layout,
        cluster: ClusterOrder,
        mode: CodecMode,
    ) -> Self {
        let order = match cluster {
            ClusterOrder::BreadthFirst => tree.bfs_order(),
            ClusterOrder::DepthFirst => tree.dfs_order(),
        };
        let max_slot = order.iter().map(|n| n.index()).max().unwrap_or(0);
        let file = HeapFile::bulk_load_with(pool, record_size, order.len(), layout, |i| {
            encode_node(tree, order[i], record_size, mode)
        });
        let mut record = vec![file.rid(0); max_slot + 1];
        for (i, node) in order.iter().enumerate() {
            record[node.index()] = file.rid(i);
        }
        PagedTree { file, record, mode }
    }

    /// The smallest record size that fits every node of `tree` as a v2
    /// quantized frame (directory nodes are rects — lossless v1 frames
    /// inside the v2 file).
    pub fn quant_record_size(tree: &GenTree) -> usize {
        tree.bfs_order()
            .iter()
            .map(|&n| match tree.entry(n) {
                Some(e) => codec::encoded_qlen(&e.geometry),
                None => codec::encoded_len(&Geometry::Rect(tree.mbr(n))),
            })
            .max()
            .unwrap_or(codec::QHEADER_LEN)
            .max(codec::QHEADER_LEN)
    }

    /// Record encoding of this stored tree.
    pub fn mode(&self) -> CodecMode {
        self.mode
    }

    /// Charges the I/O of visiting `node` (a record read through the
    /// pool) and returns the stored bytes' decoded content, or the I/O
    /// fault that prevented the visit. A record that fails to decode
    /// surfaces as [`StorageError::PageCorrupt`]. Under
    /// [`CodecMode::Quantized`], extended geometries come back as their
    /// MBR ([`Geometry::Rect`]) — the conservative content of the v2
    /// frame; exact content lives in the in-memory tree.
    pub fn try_touch(
        &self,
        pool: &mut BufferPool,
        node: NodeId,
    ) -> Result<(u64, Geometry), StorageError> {
        let rid = self.record[node.index()];
        let bytes = pool.try_read_record(&self.file, rid)?;
        let corrupt = |_| StorageError::PageCorrupt { page: rid.page };
        match self.mode {
            CodecMode::Exact => codec::try_decode_record(&bytes).map_err(corrupt),
            CodecMode::Quantized => {
                let (id, q) = codec::try_decode_qrecord(&bytes).map_err(corrupt)?;
                let g = match q.kind() {
                    QKind::Point => Geometry::Point(q.rect().lo),
                    _ => Geometry::Rect(q.rect()),
                };
                Ok((id, g))
            }
        }
    }

    /// Charges the I/O of visiting `node` without decoding the record —
    /// the hot path for the tree executors, whose θ-evaluation runs on
    /// the in-memory [`GenTree`]; the stored record is only the paper's
    /// per-node I/O charge.
    pub fn try_touch_io(&self, pool: &mut BufferPool, node: NodeId) -> Result<(), StorageError> {
        pool.try_read_record(&self.file, self.record[node.index()])
            .map(|_| ())
    }

    /// Charges the I/O of visiting `node` (a record read through the
    /// pool) and returns the stored bytes' decoded content.
    pub fn touch(&self, pool: &mut BufferPool, node: NodeId) -> (u64, Geometry) {
        // PANIC-OK: records written by build/evolve are well-formed; the
        // fallible twin is `try_touch`.
        self.try_touch(pool, node)
            .expect("stored tree node is well-formed")
    }

    /// Pages occupied by the stored tree.
    pub fn page_count(&self) -> usize {
        self.file.page_count()
    }

    /// Records per page (the model's `m`).
    pub fn records_per_page(&self) -> usize {
        self.file.records_per_page()
    }
}

/// One node's stored record under the given codec. Directory nodes store
/// their MBR as a rect in both modes (rect frames are lossless either
/// way).
fn encode_node(tree: &GenTree, node: NodeId, record_size: usize, mode: CodecMode) -> Vec<u8> {
    match tree.entry(node) {
        Some(e) => match mode {
            CodecMode::Exact => codec::encode_record(e.id, &e.geometry, record_size),
            CodecMode::Quantized => codec::encode_qrecord(e.id, &e.geometry, record_size),
        },
        None => codec::encode_record(DIRECTORY_ID, &Geometry::Rect(tree.mbr(node)), record_size),
    }
}

/// A relation stored *as* its generalization tree: the operand type of the
/// strategy-II executors.
#[derive(Debug, Clone)]
pub struct TreeRelation {
    /// The generalization tree (R-tree, cartographic hierarchy, balanced
    /// k-ary tree, …).
    pub tree: GenTree,
    /// Its storage mapping.
    pub paged: PagedTree,
    /// Flattened child-MBR snapshot for batched mask probes. Built
    /// together with the tree — a `TreeRelation` value is immutable, so
    /// the snapshot never goes stale; incremental maintenance produces a
    /// *new* `TreeRelation` via [`TreeRelation::try_evolve`].
    pub flat: FlatChildren,
}

impl TreeRelation {
    /// Stores `tree` with the given record size and layout.
    pub fn new(pool: &mut BufferPool, tree: GenTree, record_size: usize, layout: Layout) -> Self {
        let paged = PagedTree::build(pool, &tree, record_size, layout);
        let flat = FlatChildren::build(&tree);
        TreeRelation { tree, paged, flat }
    }

    /// Stores `tree` with v2 quantized node records sized to the tree's
    /// own maximum frame ([`PagedTree::quant_record_size`]), but never
    /// below `min_record_size` (pass 0 for pure auto-sizing; services
    /// that evolve the tree pass their mutation-guard bound so appended
    /// nodes always fit): same match sets from every tree executor,
    /// fewer pages and physical reads per traversal.
    pub fn new_compressed(
        pool: &mut BufferPool,
        tree: GenTree,
        min_record_size: usize,
        layout: Layout,
    ) -> Self {
        let record_size = PagedTree::quant_record_size(&tree).max(min_record_size);
        let paged = PagedTree::build_ordered_with(
            pool,
            &tree,
            record_size,
            layout,
            ClusterOrder::BreadthFirst,
            CodecMode::Quantized,
        );
        let flat = FlatChildren::build(&tree);
        TreeRelation { tree, paged, flat }
    }

    /// True when node records are stored as v2 quantized frames.
    pub fn is_compressed(&self) -> bool {
        self.paged.mode() == CodecMode::Quantized
    }

    /// Number of application tuples (entry-bearing nodes).
    pub fn tuple_count(&self) -> usize {
        self.tree.entry_nodes().len()
    }

    /// Produces the storage mapping of `next` — the same tree after a
    /// batch of incremental inserts/deletes — by *diffing* it against
    /// this relation's tree and touching only the records that changed,
    /// instead of rebuilding the file. Arena slots are stable across
    /// [`RTree`](sj_gentree::RTree) mutations, so the diff is per slot:
    ///
    /// * live here, dead in `next` → the record's page slot is cleared
    ///   (one charged write),
    /// * live in both with identical logical content (same entry, or
    ///   same directory MBR) → untouched (zero I/O),
    /// * live in both but changed → rewritten in place (one charged
    ///   write; records are fixed-size, so in-place is always legal),
    /// * new in `next` → appended to the file.
    ///
    /// I/O is O(nodes touched by the batch), not O(n); the in-memory
    /// diff is O(n) CPU. The flat snapshot is rebuilt (pure memory).
    /// On error the underlying pool may have absorbed partial writes —
    /// callers commit against a forked view and discard it on failure.
    pub fn try_evolve(
        &self,
        pool: &mut BufferPool,
        next: &GenTree,
        record_size: usize,
    ) -> Result<TreeRelation, StorageError> {
        use std::collections::HashMap;
        let old_live: HashMap<usize, NodeId> =
            self.tree.iter_live().map(|n| (n.index(), n)).collect();
        let new_live: HashMap<usize, NodeId> = next.iter_live().map(|n| (n.index(), n)).collect();

        let mut file = self.paged.file.clone();
        let mut record = self.paged.record.clone();
        let mode = self.paged.mode;
        // Records are fixed-size per file: rewritten and appended frames
        // must match the file's own record size (for a compressed tree
        // that size was derived from the tree at build, not passed in).
        let _ = record_size;
        let record_size = self.paged.file.record_size();

        // Clear records of nodes that died.
        for (slot, _) in old_live.iter().filter(|(s, _)| !new_live.contains_key(s)) {
            let rid = record[*slot];
            pool.try_update(rid.page, |p| p.remove(rid.slot))?;
        }

        // Evolution preserves the relation's codec mode record for record.
        let encode = |tree: &GenTree, node: NodeId| encode_node(tree, node, record_size, mode);

        for (&slot, &node) in &new_live {
            match old_live.get(&slot) {
                Some(&old_node) => {
                    // Compare logical content against the *old tree* in
                    // memory — storage was written from it, so they agree.
                    let unchanged = match (self.tree.entry(old_node), next.entry(node)) {
                        (Some(a), Some(b)) => a == b,
                        (None, None) => self.tree.mbr(old_node) == next.mbr(node),
                        _ => false,
                    };
                    if !unchanged {
                        let rid = record[slot];
                        let bytes = encode(next, node);
                        pool.try_update(rid.page, |p| p.update(rid.slot, bytes))?;
                    }
                }
                None => {
                    let bytes = encode(next, node);
                    let idx = file.try_append(pool, bytes)?;
                    if slot >= record.len() {
                        record.resize(slot + 1, file.rid(0));
                    }
                    record[slot] = file.rid(idx);
                }
            }
        }

        Ok(TreeRelation {
            tree: next.clone(),
            paged: PagedTree { file, record, mode },
            flat: FlatChildren::build(next),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_gentree::balanced::build_balanced;
    use sj_geom::{Point, Rect};
    use sj_storage::{Disk, DiskConfig};

    fn pool() -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), 64)
    }

    #[test]
    fn roundtrips_node_contents() {
        let mut p = pool();
        let tree = build_balanced(3, 2, Rect::from_bounds(0.0, 0.0, 9.0, 9.0));
        let pt = PagedTree::build(&mut p, &tree, 300, Layout::Clustered);
        for node in tree.bfs_order() {
            let (id, g) = pt.touch(&mut p, node);
            let e = tree
                .entry(node)
                .expect("balanced trees have entries everywhere");
            assert_eq!(id, e.id);
            assert_eq!(&g, &e.geometry);
        }
    }

    #[test]
    fn clustered_bfs_sweep_is_sequential() {
        let mut p = pool();
        let tree = build_balanced(4, 3, Rect::from_bounds(0.0, 0.0, 64.0, 64.0));
        let pt = PagedTree::build(&mut p, &tree, 300, Layout::Clustered);
        p.clear();
        p.reset_stats();
        for node in tree.bfs_order() {
            pt.touch(&mut p, node);
        }
        // A BFS sweep over a clustered tree touches each page exactly once.
        assert_eq!(p.stats().physical_reads as usize, pt.page_count());
    }

    #[test]
    fn unclustered_bfs_sweep_thrashes_with_tiny_pool() {
        let tree = build_balanced(4, 3, Rect::from_bounds(0.0, 0.0, 64.0, 64.0));
        let mut p = BufferPool::new(Disk::new(DiskConfig::paper()), 4);
        let pt = PagedTree::build(&mut p, &tree, 300, Layout::Unclustered { seed: 11 });
        p.clear();
        p.reset_stats();
        for node in tree.bfs_order() {
            pt.touch(&mut p, node);
        }
        assert!(
            p.stats().physical_reads as usize > pt.page_count(),
            "random placement with a tiny pool must exceed one read per page"
        );
    }

    #[test]
    fn dfs_clustering_favors_dfs_sweeps() {
        let tree = build_balanced(4, 4, Rect::from_bounds(0.0, 0.0, 256.0, 256.0));
        // Tiny pool: only matching traversal order stays sequential.
        let mut p = BufferPool::new(Disk::new(DiskConfig::paper()), 2);
        let pt = PagedTree::build_ordered(
            &mut p,
            &tree,
            300,
            Layout::Clustered,
            ClusterOrder::DepthFirst,
        );
        p.clear();
        p.reset_stats();
        for node in tree.dfs_order() {
            pt.touch(&mut p, node);
        }
        let dfs_reads = p.stats().physical_reads;
        assert_eq!(
            dfs_reads as usize,
            pt.page_count(),
            "DFS sweep is sequential"
        );

        p.clear();
        p.reset_stats();
        for node in tree.bfs_order() {
            pt.touch(&mut p, node);
        }
        let bfs_reads = p.stats().physical_reads;
        assert!(
            bfs_reads > dfs_reads,
            "BFS over DFS-clustered storage must thrash: {bfs_reads} vs {dfs_reads}"
        );
    }

    #[test]
    fn evolve_matches_fresh_build_with_batch_bounded_io() {
        use sj_gentree::rtree::{RTree, RTreeConfig};

        let mut p = pool();
        let entries: Vec<(u64, Geometry)> = (0..200u64)
            .map(|i| {
                let x = (i % 20) as f64 * 3.0;
                let y = (i / 20) as f64 * 3.0;
                (i, Geometry::Point(Point::new(x, y)))
            })
            .collect();
        let mut rt = RTree::bulk_load(RTreeConfig::with_fanout(8), entries);
        let rel = TreeRelation::new(&mut p, rt.tree().clone(), 300, Layout::Clustered);

        // A small batch of structural mutations.
        rt.insert(500, Geometry::Point(Point::new(1.5, 1.5)));
        rt.remove(7);
        rt.remove(8);
        rt.insert(501, Geometry::Point(Point::new(40.0, 2.0)));
        rt.check_invariants();

        let before = p.stats();
        let evolved = rel.try_evolve(&mut p, rt.tree(), 300).unwrap();
        let delta = p.stats().since(&before);

        // Every live node of the new tree round-trips through storage.
        for node in rt.tree().iter_live() {
            let (id, g) = evolved.paged.touch(&mut p, node);
            match rt.tree().entry(node) {
                Some(e) => {
                    assert_eq!(id, e.id);
                    assert_eq!(&g, &e.geometry);
                }
                None => {
                    assert_eq!(id, DIRECTORY_ID);
                    assert_eq!(g, Geometry::Rect(rt.tree().mbr(node)));
                }
            }
        }
        assert_eq!(evolved.tuple_count(), 200);
        // The diff touches O(batch · height) records, nowhere near the
        // ~229 writes a fresh build pays.
        assert!(
            delta.physical_writes < 60,
            "evolve wrote {} pages/records, expected a batch-bounded diff",
            delta.physical_writes
        );
    }

    #[test]
    fn quantized_tree_shrinks_storage_and_preserves_join_results() {
        use crate::tree_join::tree_join;
        use sj_gentree::rtree::{RTree, RTreeConfig};
        use sj_geom::{Polygon, ThetaOp};

        let mk = |off: f64, id0: u64| -> Vec<(u64, Geometry)> {
            (0..90u64)
                .map(|i| {
                    let c = Point::new((i % 10) as f64 * 4.0 + off, (i / 10) as f64 * 4.0);
                    (id0 + i, Geometry::Polygon(Polygon::regular(c, 1.5, 16)))
                })
                .collect()
        };
        let mut p = pool();
        let rt = RTree::bulk_load(RTreeConfig::with_fanout(8), mk(0.0, 0));
        let st = RTree::bulk_load(RTreeConfig::with_fanout(8), mk(1.3, 1_000));

        let re = TreeRelation::new(&mut p, rt.tree().clone(), 300, Layout::Clustered);
        let se = TreeRelation::new(&mut p, st.tree().clone(), 300, Layout::Clustered);
        let rq = TreeRelation::new_compressed(&mut p, rt.tree().clone(), 0, Layout::Clustered);
        let sq = TreeRelation::new_compressed(&mut p, st.tree().clone(), 0, Layout::Clustered);
        assert!(rq.is_compressed() && !re.is_compressed());
        assert!(
            rq.paged.page_count() < re.paged.page_count(),
            "quantized frames must shrink the stored tree: {} vs {}",
            rq.paged.page_count(),
            re.paged.page_count()
        );

        // Quantized touch: same id, conservative (MBR) content.
        for node in rt.tree().bfs_order() {
            let (id, g) = rq.paged.touch(&mut p, node);
            match rt.tree().entry(node) {
                Some(e) => {
                    assert_eq!(id, e.id);
                    assert_eq!(g, Geometry::Rect(sj_geom::Bounded::mbr(&e.geometry)));
                }
                None => assert_eq!(id, DIRECTORY_ID),
            }
        }

        // Identical match sets; the compressed traversal reads fewer
        // pages (clustered BFS touches each page once).
        let theta = ThetaOp::WithinDistance(1.0);
        p.clear();
        p.reset_stats();
        let exact = tree_join(&mut p, &re, &se, theta);
        p.clear();
        p.reset_stats();
        let quant = tree_join(&mut p, &rq, &sq, theta);
        let (mut a, mut b) = (exact.pairs.clone(), quant.pairs.clone());
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_eq!(exact.stats.theta_evals, quant.stats.theta_evals);
        assert!(
            quant.stats.physical_reads < exact.stats.physical_reads,
            "compressed tree pages must cut traversal I/O: {} vs {}",
            quant.stats.physical_reads,
            exact.stats.physical_reads
        );
    }

    #[test]
    fn directory_nodes_store_their_mbr() {
        let mut p = pool();
        let mut tree = GenTree::new(Rect::from_bounds(0.0, 0.0, 10.0, 10.0), None);
        tree.add_child(
            tree.root(),
            Rect::from_point(Point::new(1.0, 1.0)),
            Some(sj_gentree::Entry {
                id: 3,
                geometry: Geometry::Point(Point::new(1.0, 1.0)),
            }),
        );
        let pt = PagedTree::build(&mut p, &tree, 300, Layout::Clustered);
        let (id, g) = pt.touch(&mut p, tree.root());
        assert_eq!(id, u64::MAX);
        assert_eq!(g, Geometry::Rect(Rect::from_bounds(0.0, 0.0, 10.0, 10.0)));
    }
}
