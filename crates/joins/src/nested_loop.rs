//! Strategy I: (block) nested loop.
//!
//! "The simple nested loop strategy checks each tuple in R against each
//! tuple in S" (§2.1), with the memory-utilization refinement of §4.4:
//! fill most of main memory (`M − 10` pages worth of tuples) with a chunk
//! of `R`, scan `S` once per chunk.

use sj_geom::{Geometry, ThetaOp};
use sj_obs::{Phase, PhaseTimer, TraceSink};
use sj_storage::{BufferPool, StorageError};

use crate::relation::StoredRelation;
use crate::stats::{ExecStats, JoinRun, SelectRun};

/// Block nested-loop join `R ⋈_θ S`. The chunk size is
/// `(pool capacity − 10) · m` tuples, mirroring `m · (M − 10)` in `D_I`.
pub fn nested_loop_join(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
) -> JoinRun {
    nested_loop_join_traced(pool, r, s, theta, &mut TraceSink::Null)
}

/// [`nested_loop_join`] with phase instrumentation: chunk loads are the
/// `partition` phase, the S-scan with its θ-tests the `refine` phase.
pub fn nested_loop_join_traced(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> JoinRun {
    try_nested_loop_join_traced(pool, r, s, theta, trace)
        .unwrap_or_else(|e| panic!("nested loop join failed: {e}"))
}

/// Fail-stop [`nested_loop_join_traced`]: the first storage fault aborts
/// the run with a typed error instead of panicking.
pub fn try_nested_loop_join_traced(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> Result<JoinRun, StorageError> {
    let mut timer = PhaseTimer::for_sink(trace);
    let mut run = JoinRun::default();
    let mut partition = ExecStats::default();
    let mut refine = ExecStats::default();

    let m = r.tuples_per_page();
    let chunk_tuples = (pool.capacity().saturating_sub(10)).max(1) * m;

    let mut start = 0;
    while start < r.len() {
        let end = (start + chunk_tuples).min(r.len());
        // Load the R chunk into (executor) memory.
        timer.enter(Phase::Partition);
        let window = pool.stats();
        let chunk: Vec<(u64, Geometry)> = (start..end)
            .map(|i| r.try_read_at(pool, i))
            .collect::<Result<_, _>>()?;
        partition.add_io(pool.stats().since(&window));
        partition.passes += 1;
        // Scan all of S against the resident chunk.
        timer.enter(Phase::Refine);
        let window = pool.stats();
        for j in 0..s.len() {
            let (s_id, s_geom) = s.try_read_at(pool, j)?;
            for (r_id, r_geom) in &chunk {
                refine.theta_evals += 1;
                if theta.eval(r_geom, &s_geom) {
                    run.pairs.push((*r_id, s_id));
                }
            }
        }
        refine.add_io(pool.stats().since(&window));
        start = end;
    }
    timer.stop();
    run.phases.record(Phase::Partition, partition);
    run.phases.record(Phase::Refine, refine);
    run.seal("nested_loop", &timer, trace);
    Ok(run)
}

/// Strategy I for spatial selection: exhaustive scan of `R`, θ-testing
/// every tuple against the selector `o` (`C_I` in §4.3).
pub fn exhaustive_select(
    pool: &mut BufferPool,
    r: &StoredRelation,
    o: &Geometry,
    theta: ThetaOp,
) -> SelectRun {
    try_exhaustive_select(pool, r, o, theta)
        .unwrap_or_else(|e| panic!("exhaustive select failed: {e}"))
}

/// Fail-stop [`exhaustive_select`].
pub fn try_exhaustive_select(
    pool: &mut BufferPool,
    r: &StoredRelation,
    o: &Geometry,
    theta: ThetaOp,
) -> Result<SelectRun, StorageError> {
    let before = pool.stats();
    let mut run = SelectRun::default();
    for (id, g) in r.try_scan(pool)? {
        run.stats.theta_evals += 1;
        if theta.eval(o, &g) {
            run.matches.push(id);
        }
    }
    run.stats.passes = 1;
    run.stats.add_io(pool.stats().since(&before));
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geom::Point;
    use sj_storage::{Disk, DiskConfig, Layout};

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), frames)
    }

    fn grid_rel(pool: &mut BufferPool, n: usize, step: f64, id0: u64) -> StoredRelation {
        let tuples: Vec<(u64, Geometry)> = (0..n * n)
            .map(|i| {
                (
                    id0 + i as u64,
                    Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
                )
            })
            .collect();
        StoredRelation::build(pool, &tuples, 300, Layout::Clustered)
    }

    #[test]
    fn self_join_within_zero_matches_each_tuple_once() {
        let mut p = pool(32);
        let r = grid_rel(&mut p, 5, 10.0, 0);
        let s = grid_rel(&mut p, 5, 10.0, 100);
        let run = nested_loop_join(&mut p, &r, &s, ThetaOp::WithinDistance(0.1));
        assert_eq!(run.pairs.len(), 25);
        assert_eq!(run.stats.theta_evals, 25 * 25);
        for (a, b) in run.pairs {
            assert_eq!(a + 100, b);
        }
    }

    #[test]
    fn single_pass_when_r_fits_in_memory() {
        let mut p = pool(32); // 22 usable pages · 5 tuples ≫ 25 tuples
        let r = grid_rel(&mut p, 5, 10.0, 0);
        let s = grid_rel(&mut p, 5, 10.0, 100);
        p.clear();
        p.reset_stats();
        let run = nested_loop_join(&mut p, &r, &s, ThetaOp::WithinDistance(0.1));
        assert_eq!(run.stats.passes, 1);
        // One cold scan of each relation: 5 + 5 pages.
        assert_eq!(run.stats.physical_reads, 10);
    }

    #[test]
    fn multiple_passes_rescan_s() {
        // 12 frames → chunk = 2·5 = 10 tuples → 7 passes over 64 R tuples;
        // S (13 pages) cannot stay resident in 12 frames, so every pass
        // rereads it — the D_I memory-pass behaviour.
        let mut p = pool(12);
        let r = grid_rel(&mut p, 8, 10.0, 0);
        let s = grid_rel(&mut p, 8, 10.0, 100);
        p.clear();
        p.reset_stats();
        let run = nested_loop_join(&mut p, &r, &s, ThetaOp::WithinDistance(0.1));
        assert_eq!(run.stats.passes, 7);
        // Model: (passes + 1)·⌈N/m⌉ = 8·13 = 104 reads; the pool can shave
        // a little via residual caching but must stay in that regime.
        assert!(
            run.stats.physical_reads >= 80 && run.stats.physical_reads <= 104,
            "got {}",
            run.stats.physical_reads
        );
        assert_eq!(run.pairs.len(), 64);
        assert_eq!(run.stats.theta_evals, 64 * 64);
    }

    #[test]
    fn exhaustive_select_scans_once() {
        let mut p = pool(32);
        let r = grid_rel(&mut p, 5, 10.0, 0);
        p.clear();
        p.reset_stats();
        let o = Geometry::Point(Point::new(20.0, 20.0));
        let run = exhaustive_select(&mut p, &r, &o, ThetaOp::WithinDistance(10.5));
        let mut got = run.matches.clone();
        got.sort_unstable();
        assert_eq!(got, vec![7, 11, 12, 13, 17]);
        assert_eq!(run.stats.theta_evals, 25);
        assert_eq!(run.stats.physical_reads as usize, r.page_count());
    }

    #[test]
    fn empty_inputs() {
        let mut p = pool(16);
        let empty = StoredRelation::build(&mut p, &[], 300, Layout::Clustered);
        let r = grid_rel(&mut p, 3, 1.0, 0);
        assert!(nested_loop_join(&mut p, &empty, &r, ThetaOp::Overlaps)
            .pairs
            .is_empty());
        assert!(nested_loop_join(&mut p, &r, &empty, ThetaOp::Overlaps)
            .pairs
            .is_empty());
    }
}
