//! A z-value B⁺-tree index (UB-tree style) — the *index* half of
//! Orenstein's z-ordering machinery from §2.2: each object's MBR is
//! decomposed into z-elements, one `(z, id)` B⁺-tree entry per element;
//! a window query decomposes the window the same way and turns into plain
//! one-dimensional range scans.
//!
//! This rounds out the index-supported-join picture: the paper's
//! strategy II uses tree-structured *spatial* indices; this is the
//! corresponding strategy over a *one-dimensional* index on a space-
//! filling curve, the approach relational systems without spatial access
//! methods actually used.

use std::collections::HashSet;

use sj_btree::BPlusTree;
use sj_geom::{Bounded, Geometry, Rect, ThetaOp};
use sj_obs::{Phase, PhaseTimer, TraceSink};
use sj_storage::{BufferPool, StorageError};
use sj_zorder::ZGrid;

use crate::relation::StoredRelation;
use crate::stats::{ExecStats, JoinRun, SelectRun};

/// A secondary index mapping z-elements to tuple ids.
#[derive(Debug)]
pub struct ZIndex {
    grid: ZGrid,
    /// `(z_lo, id)` for each z-element; the element's `hi` is the value.
    tree: BPlusTree<(u64, u64), u64>,
    entries: usize,
}

impl ZIndex {
    /// Builds the index by scanning `rel` once and decomposing every
    /// object's MBR on `grid`.
    pub fn build(pool: &mut BufferPool, rel: &StoredRelation, grid: ZGrid, z: usize) -> Self {
        Self::try_build(pool, rel, grid, z).unwrap_or_else(|e| panic!("z-index build failed: {e}"))
    }

    /// Fail-stop [`ZIndex::build`]: the first storage fault during the
    /// build scan aborts with a typed error (no partially built index).
    pub fn try_build(
        pool: &mut BufferPool,
        rel: &StoredRelation,
        grid: ZGrid,
        z: usize,
    ) -> Result<Self, StorageError> {
        let mut tree = BPlusTree::new(z);
        let mut entries = 0;
        for (id, g) in rel.try_scan(pool)? {
            // Aligned (uncoalesced) blocks: the candidate lookup's prefix
            // enumeration is only complete for aligned element ranges.
            for range in grid.decompose_aligned(&g.mbr()) {
                tree.insert((range.lo, id), range.hi);
                entries += 1;
            }
        }
        tree.reset_accesses();
        Ok(ZIndex {
            grid,
            tree,
            entries,
        })
    }

    /// Number of `(z-element, id)` entries (objects spanning several
    /// elements appear several times — the §2.2 duplication).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Index height (the B⁺-tree's `d`).
    pub fn height(&self) -> usize {
        self.tree.height()
    }

    /// Candidate tuple ids whose z-elements intersect `window`'s
    /// decomposition — a superset of the ids whose MBR overlaps the
    /// window (complete by the z-element soundness property).
    pub fn candidates(&self, window: &Rect) -> Vec<u64> {
        let mut out = HashSet::new();
        let ranges = self.grid.decompose(window);
        if ranges.is_empty() {
            return Vec::new();
        }
        // An element [lo, hi] overlaps a query range [qlo, qhi] iff
        // lo ≤ qhi and hi ≥ qlo. Elements are keyed by lo; elements with
        // lo < qlo can still overlap, but only if they are *ancestral*
        // blocks containing qlo — and every aligned block containing qlo
        // has its own lo among qlo's block prefixes. Scan the key range
        // [prefix-min, qhi] which covers both cases cheaply.
        for q in &ranges {
            // Aligned ancestor blocks of q.lo start at prefixes of q.lo;
            // the smallest possible start of a block containing q.lo is 0,
            // but only blocks whose lo is one of the ⌊log₄⌋ prefixes can
            // contain it. Enumerate those exact starts.
            let mut starts: Vec<u64> = Vec::new();
            let mut size = 1u64;
            let total = self.grid.cell_count();
            while size <= total {
                starts.push(q.lo / size * size);
                size *= 4;
            }
            starts.sort_unstable();
            starts.dedup();
            for &s in &starts {
                if s == q.lo {
                    continue; // covered by the main range scan below
                }
                for ((_, id), hi) in self.tree.range(&(s, 0), &(s, u64::MAX)) {
                    if hi >= q.lo {
                        out.insert(id);
                    }
                }
            }
            // Elements starting inside the query range.
            for ((_, id), _) in self.tree.range(&(q.lo, 0), &(q.hi, u64::MAX)) {
                out.insert(id);
            }
        }
        let mut v: Vec<u64> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Window selection with exact refinement: all tuples of `rel` whose
    /// geometry satisfies `o θ tuple`, for overlap-family operators whose
    /// Θ-filter is MBR overlap.
    ///
    /// # Panics
    ///
    /// Panics for non-overlap-family operators (use the generalization
    /// tree for those).
    pub fn select(
        &self,
        pool: &mut BufferPool,
        rel: &StoredRelation,
        o: &Geometry,
        theta: ThetaOp,
    ) -> SelectRun {
        self.try_select(pool, rel, o, theta)
            .unwrap_or_else(|e| panic!("z-index select failed: {e}"))
    }

    /// Fail-stop [`ZIndex::select`]; same operator-support panic.
    pub fn try_select(
        &self,
        pool: &mut BufferPool,
        rel: &StoredRelation,
        o: &Geometry,
        theta: ThetaOp,
    ) -> Result<SelectRun, StorageError> {
        assert!(
            crate::sort_merge::supported_by_zorder(theta),
            "z-index selection supports overlap-family operators only, got {theta:?}"
        );
        let before = pool.stats();
        self.tree.reset_accesses();
        let mut run = SelectRun::default();
        for id in self.candidates(&o.mbr()) {
            let (_, g) = rel.try_read_by_id(pool, id)?;
            run.stats.theta_evals += 1;
            if theta.eval(o, &g) {
                run.matches.push(id);
            }
        }
        run.stats.add_io(pool.stats().since(&before));
        run.stats.physical_reads += self.tree.accesses();
        Ok(run)
    }

    /// Index-supported join (§2.1's "scan the other relation and use the
    /// index to find matching tuples"): scans `s`, probing this index
    /// (built on `r`) per tuple.
    pub fn join(
        &self,
        pool: &mut BufferPool,
        r: &StoredRelation,
        s: &StoredRelation,
        theta: ThetaOp,
    ) -> JoinRun {
        self.join_traced(pool, r, s, theta, &mut TraceSink::Null)
    }

    /// [`join`](ZIndex::join) with phase instrumentation: the S-scan is
    /// the `partition` phase, B⁺-tree node accesses the `index-probe`
    /// phase, candidate fetches plus θ-tests the `refine` phase.
    pub fn join_traced(
        &self,
        pool: &mut BufferPool,
        r: &StoredRelation,
        s: &StoredRelation,
        theta: ThetaOp,
        trace: &mut TraceSink,
    ) -> JoinRun {
        self.try_join_traced(pool, r, s, theta, trace)
            .unwrap_or_else(|e| panic!("z-index join failed: {e}"))
    }

    /// Fail-stop [`join_traced`](ZIndex::join_traced); same operator-
    /// support panic.
    pub fn try_join_traced(
        &self,
        pool: &mut BufferPool,
        r: &StoredRelation,
        s: &StoredRelation,
        theta: ThetaOp,
        trace: &mut TraceSink,
    ) -> Result<JoinRun, StorageError> {
        assert!(
            crate::sort_merge::supported_by_zorder(theta),
            "z-index join supports overlap-family operators only, got {theta:?}"
        );
        let mut timer = PhaseTimer::for_sink(trace);
        timer.enter(Phase::Partition);
        let window = pool.stats();
        self.tree.reset_accesses();
        let mut run = JoinRun::default();
        let mut partition = ExecStats::default();
        let s_rows = s.try_scan(pool)?;
        partition.add_io(pool.stats().since(&window));

        timer.enter(Phase::Refine);
        let window = pool.stats();
        let mut refine = ExecStats::default();
        for (s_id, s_geom) in s_rows {
            for r_id in self.candidates(&s_geom.mbr()) {
                let (_, r_geom) = r.try_read_by_id(pool, r_id)?;
                refine.theta_evals += 1;
                if theta.eval(&r_geom, &s_geom) {
                    run.pairs.push((r_id, s_id));
                }
            }
        }
        run.pairs.sort_unstable();
        refine.add_io(pool.stats().since(&window));
        timer.stop();

        run.phases.record(Phase::Partition, partition);
        run.phases.record(
            Phase::IndexProbe,
            ExecStats {
                physical_reads: self.tree.accesses(),
                passes: 1,
                ..Default::default()
            },
        );
        run.phases.record(Phase::Refine, refine);
        run.seal("zindex", &timer, trace);
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested_loop::{exhaustive_select, nested_loop_join};
    use sj_geom::Point;
    use sj_storage::{Disk, DiskConfig, Layout};

    fn pool() -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), 64)
    }

    fn world() -> Rect {
        Rect::from_bounds(0.0, 0.0, 64.0, 64.0)
    }

    fn mixed_rel(pool: &mut BufferPool, id0: u64, shift: f64) -> StoredRelation {
        let mut tuples: Vec<(u64, Geometry)> = Vec::new();
        for i in 0..40u64 {
            let x = (i % 8) as f64 * 8.0 + shift;
            let y = (i / 8) as f64 * 8.0 + shift;
            if i % 3 == 0 {
                tuples.push((
                    id0 + i,
                    Geometry::Rect(Rect::from_bounds(
                        x,
                        y,
                        (x + 6.0).min(64.0),
                        (y + 6.0).min(64.0),
                    )),
                ));
            } else {
                tuples.push((
                    id0 + i,
                    Geometry::Point(Point::new(x.min(63.9), y.min(63.9))),
                ));
            }
        }
        StoredRelation::build(pool, &tuples, 300, Layout::Clustered)
    }

    #[test]
    fn select_equals_exhaustive() {
        let mut p = pool();
        let rel = mixed_rel(&mut p, 0, 0.3);
        let idx = ZIndex::build(&mut p, &rel, ZGrid::new(world(), 5), 16);
        for (x0, y0, x1, y1) in [
            (0.0, 0.0, 10.0, 10.0),
            (20.0, 20.0, 45.0, 30.0),
            (0.0, 0.0, 64.0, 64.0),
            (63.0, 63.0, 64.0, 64.0),
        ] {
            let o = Geometry::Rect(Rect::from_bounds(x0, y0, x1, y1));
            let mut got = idx.select(&mut p, &rel, &o, ThetaOp::Overlaps).matches;
            got.sort_unstable();
            let mut want = exhaustive_select(&mut p, &rel, &o, ThetaOp::Overlaps).matches;
            want.sort_unstable();
            assert_eq!(got, want, "window ({x0},{y0})-({x1},{y1})");
        }
    }

    #[test]
    fn join_equals_nested_loop() {
        let mut p = pool();
        let r = mixed_rel(&mut p, 0, 0.0);
        let s = mixed_rel(&mut p, 1000, 3.0);
        let idx = ZIndex::build(&mut p, &r, ZGrid::new(world(), 5), 16);
        for theta in [ThetaOp::Overlaps, ThetaOp::Includes, ThetaOp::ContainedIn] {
            let got = idx.join(&mut p, &r, &s, theta).pairs;
            let mut want = nested_loop_join(&mut p, &r, &s, theta).pairs;
            want.sort_unstable();
            assert_eq!(got, want, "{theta:?}");
        }
    }

    #[test]
    fn large_object_spanning_many_cells_is_found_once() {
        let mut p = pool();
        let rel = StoredRelation::build(
            &mut p,
            &[(7, Geometry::Rect(Rect::from_bounds(1.0, 1.0, 60.0, 60.0)))],
            300,
            Layout::Clustered,
        );
        let idx = ZIndex::build(&mut p, &rel, ZGrid::new(world(), 5), 16);
        assert!(idx.len() > 1, "big rect spans many z-elements");
        let o = Geometry::Rect(Rect::from_bounds(30.0, 30.0, 31.0, 31.0));
        let run = idx.select(&mut p, &rel, &o, ThetaOp::Overlaps);
        assert_eq!(run.matches, vec![7]);
        assert_eq!(run.stats.theta_evals, 1, "candidates must be deduplicated");
    }

    #[test]
    fn probe_outside_world_matches_nothing() {
        let mut p = pool();
        let rel = mixed_rel(&mut p, 0, 0.0);
        let idx = ZIndex::build(&mut p, &rel, ZGrid::new(world(), 5), 16);
        let o = Geometry::Rect(Rect::from_bounds(100.0, 100.0, 110.0, 110.0));
        assert!(idx
            .select(&mut p, &rel, &o, ThetaOp::Overlaps)
            .matches
            .is_empty());
    }

    #[test]
    fn candidate_set_prunes_vs_full_scan() {
        let mut p = pool();
        let rel = mixed_rel(&mut p, 0, 0.0);
        let idx = ZIndex::build(&mut p, &rel, ZGrid::new(world(), 5), 16);
        let o = Geometry::Rect(Rect::from_bounds(0.0, 0.0, 9.0, 9.0));
        let run = idx.select(&mut p, &rel, &o, ThetaOp::Overlaps);
        assert!(
            run.stats.theta_evals < rel.len() as u64 / 2,
            "z-index should prune: {} of {}",
            run.stats.theta_evals,
            rel.len()
        );
    }

    #[test]
    #[should_panic(expected = "overlap-family")]
    fn distance_operator_rejected() {
        let mut p = pool();
        let rel = mixed_rel(&mut p, 0, 0.0);
        let idx = ZIndex::build(&mut p, &rel, ZGrid::new(world(), 5), 16);
        let o = Geometry::Point(Point::new(1.0, 1.0));
        let _ = idx.select(&mut p, &rel, &o, ThetaOp::WithinDistance(3.0));
    }
}
