//! The unified executor API: one [`JoinExecutor`] trait and one
//! [`Strategy`] enum covering all nine join strategies, so callers
//! (experiment harness, benchmark bins, tests) dispatch through a single
//! surface instead of nine differently-shaped entry points.
//!
//! A [`JoinRequest`] carries everything that parameterizes a run —
//! θ-operator, degree of parallelism, and an optional trace sink — while
//! the operands (stored relations, tree relations, world rectangle) live
//! in [`JoinOperands`]. [`Strategy::executor`] turns a strategy plus
//! operands into a boxed executor, or `None` when the operands a
//! strategy needs are absent (tree strategies need [`TreeRelation`]s,
//! flat strategies need [`StoredRelation`]s).
//!
//! Index-backed strategies (join index, local join index, z-value index)
//! build their index lazily on first [`JoinExecutor::execute`] and cache
//! it — keyed by θ where the index materializes a θ-join — so repeated
//! runs measure pure query cost. Build cost is *never* folded into the
//! returned [`JoinRun`]; it is the paper's precomputation, not the
//! query.
//!
//! The free functions (`nested_loop_join`, `sweep_join`, …) remain the
//! low-level entry points; every executor here is a thin stateful shim
//! over them, so both surfaces stay exactly equivalent (property-tested
//! in `tests/prop_phase_trace.rs`).

use std::cell::RefCell;

use sj_geom::{Rect, ThetaOp};
use sj_obs::TraceSink;
use sj_storage::{BufferPool, StorageError};
use sj_zorder::ZGrid;

use crate::grid::{try_grid_join_traced, GridConfig};
use crate::join_index::JoinIndex;
use crate::local_index::LocalJoinIndex;
use crate::nested_loop::try_nested_loop_join_traced;
use crate::paged_tree::TreeRelation;
use crate::parallel::{try_parallel_tree_join_traced, try_partition_join_traced, Parallelism};
use crate::relation::StoredRelation;
use crate::sort_merge::{supported_by_zorder, try_zorder_overlap_join_traced};
use crate::stats::JoinRun;
use crate::sweep::try_sweep_join_traced;
use crate::zindex::ZIndex;

/// Default B⁺-tree order for lazily built indices (the model's `z`).
const DEFAULT_Z: usize = 16;
/// Default generalization-tree level for local join indices.
const DEFAULT_LOCAL_LEVEL: usize = 1;
/// Default z-order grid resolution (`2^bits` cells per axis).
const DEFAULT_Z_BITS: u8 = 5;
/// Default uniform-grid resolution per axis.
const DEFAULT_GRID_CELLS: u32 = 16;

/// Everything that parameterizes one join run, independent of the
/// strategy executing it.
///
/// The trace sink lives in a [`RefCell`] so that executors — which only
/// receive `&JoinRequest` — can still write spans into it; after the run
/// completes, recover the sink (and its buffered events, for
/// [`TraceSink::Vec`]) with [`JoinRequest::take_trace`].
#[derive(Debug)]
pub struct JoinRequest {
    /// The θ-operator to evaluate.
    pub theta: ThetaOp,
    /// Worker threads for the strategies that parallelize
    /// ([`Strategy::Partition`], [`Strategy::Tree`]); the rest ignore it.
    pub parallelism: Parallelism,
    /// Structured-trace destination; [`TraceSink::Null`] (the default)
    /// compiles the instrumentation down to plain counter arithmetic.
    pub trace: RefCell<TraceSink>,
}

impl JoinRequest {
    /// A sequential, untraced request for `theta`.
    pub fn new(theta: ThetaOp) -> Self {
        JoinRequest {
            theta,
            parallelism: Parallelism::sequential(),
            trace: RefCell::new(TraceSink::Null),
        }
    }

    /// Sets the degree of parallelism.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Attaches a trace sink.
    pub fn with_trace(self, sink: TraceSink) -> Self {
        *self.trace.borrow_mut() = sink;
        self
    }

    /// Takes the trace sink out of the request (leaving
    /// [`TraceSink::Null`] behind), e.g. to inspect buffered
    /// [`TraceSink::Vec`] events or flush a file sink.
    pub fn take_trace(&self) -> TraceSink {
        std::mem::take(&mut self.trace.borrow_mut())
    }
}

/// A join strategy with whatever state it needs (lazily built indices,
/// operand references) to execute [`JoinRequest`]s.
pub trait JoinExecutor {
    /// Which strategy this executor implements.
    fn strategy(&self) -> Strategy;

    /// Whether the strategy can evaluate `theta` at all (some index
    /// structures only support the overlap family, the grid cannot
    /// localize directional predicates).
    fn supports(&self, theta: ThetaOp) -> bool {
        self.strategy().supports(theta)
    }

    /// The concrete strategy the *last* [`JoinExecutor::execute`] call
    /// dispatched to. Identical to [`JoinExecutor::strategy`] for every
    /// concrete executor; [`Strategy::Auto`] overrides it to report the
    /// per-request advisor choice.
    fn resolved_strategy(&self) -> Strategy {
        self.strategy()
    }

    /// Runs the join, charging all I/O through `pool` and writing spans
    /// into `req.trace` when it is live. The first storage fault aborts
    /// the run with a typed error; an `Ok` run is always the complete,
    /// exact match set (fail-stop, never fail-wrong).
    fn try_execute(
        &mut self,
        req: &JoinRequest,
        pool: &mut BufferPool,
    ) -> Result<JoinRun, StorageError>;

    /// Infallible [`JoinExecutor::try_execute`]: panics on a storage
    /// fault. With no fault injector armed and a healthy disk, storage
    /// never faults, so this behaves exactly like the historical API.
    fn execute(&mut self, req: &JoinRequest, pool: &mut BufferPool) -> JoinRun {
        self.try_execute(req, pool)
            .unwrap_or_else(|e| panic!("join execution failed: {e}"))
    }
}

/// Per-request strategy chooser consulted by [`Strategy::Auto`]: given
/// the θ-operator and the pool (for sampling-based selectivity
/// estimation, charged like any other I/O), name a concrete strategy.
/// Because estimation performs real page reads, a chooser can itself hit
/// a storage fault — hence the fallible signature. `sj-core::advisor`
/// provides the cost-model-backed implementation; the executor layer
/// only defines the hook so the dependency points upward.
pub type StrategyChooser<'a> =
    &'a (dyn Fn(ThetaOp, &mut BufferPool) -> Result<Strategy, StorageError> + 'a);

/// The nine concrete join strategies of this crate as data, plus
/// [`Strategy::Auto`], which resolves to one of them per request via a
/// cost-model chooser (see [`StrategyChooser`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Strategy I: block-nested loop with memory passes.
    NestedLoop,
    /// Forward-scan plane-sweep filter with exact refinement.
    Sweep,
    /// Strategy II: generalization-tree join (parallel when asked).
    Tree,
    /// Strategy III: precomputed join index on a B⁺-tree.
    JoinIndex,
    /// §5's local join indices over tree partitions.
    LocalIndex,
    /// Orenstein's z-order sort-merge overlap join.
    ZOrderMerge,
    /// Z-value B⁺-tree index probe join.
    ZIndex,
    /// Rotem's grid-file join.
    Grid,
    /// PBSM-style partition-parallel filter-and-refine.
    Partition,
    /// Per-request cost-model dispatch: consult the operands' chooser
    /// ([`JoinOperands::with_chooser`]), fall back to the first
    /// applicable concrete strategy if the choice cannot run the
    /// request's θ-operator or lacks operands.
    Auto,
}

impl Strategy {
    /// Every strategy, in a stable display order.
    pub const ALL: [Strategy; 9] = [
        Strategy::NestedLoop,
        Strategy::Sweep,
        Strategy::Tree,
        Strategy::JoinIndex,
        Strategy::LocalIndex,
        Strategy::ZOrderMerge,
        Strategy::ZIndex,
        Strategy::Grid,
        Strategy::Partition,
    ];

    /// Stable snake-case name (used in traces, bench output, CLIs).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::NestedLoop => "nested_loop",
            Strategy::Sweep => "sweep",
            Strategy::Tree => "tree",
            Strategy::JoinIndex => "join_index",
            Strategy::LocalIndex => "local_index",
            Strategy::ZOrderMerge => "zorder_merge",
            Strategy::ZIndex => "zindex",
            Strategy::Grid => "grid",
            Strategy::Partition => "partition",
            Strategy::Auto => "auto",
        }
    }

    /// Parses [`Strategy::name`] back into a strategy.
    pub fn from_name(name: &str) -> Option<Strategy> {
        if name == Strategy::Auto.name() {
            return Some(Strategy::Auto);
        }
        Strategy::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Whether the strategy can evaluate `theta`. Z-order strategies are
    /// complete only for the overlap family; the grid cannot localize
    /// directional half-planes. Everything else handles all eight
    /// operators; `Auto` resolves to a concrete strategy that does.
    pub fn supports(self, theta: ThetaOp) -> bool {
        match self {
            Strategy::ZOrderMerge | Strategy::ZIndex => supported_by_zorder(theta),
            Strategy::Grid => !matches!(theta, ThetaOp::DirectionOf(_)),
            Strategy::Auto => Strategy::ALL.into_iter().any(|s| s.supports(theta)),
            _ => true,
        }
    }

    /// Builds an executor for this strategy over `ops`, or `None` when
    /// the operands the strategy requires are absent.
    pub fn executor<'a>(self, ops: &JoinOperands<'a>) -> Option<Box<dyn JoinExecutor + 'a>> {
        match self {
            Strategy::NestedLoop => {
                let (r, s) = ops.flat?;
                Some(Box::new(NestedLoopExec { r, s }))
            }
            Strategy::Sweep => {
                let (r, s) = ops.flat?;
                Some(Box::new(SweepExec { r, s }))
            }
            Strategy::Tree => {
                let (r, s) = ops.trees?;
                Some(Box::new(TreeExec { r, s }))
            }
            Strategy::JoinIndex => {
                let (r, s) = ops.flat?;
                Some(Box::new(JoinIndexExec { r, s, cache: None }))
            }
            Strategy::LocalIndex => {
                let (r, s) = ops.trees?;
                Some(Box::new(LocalIndexExec { r, s, cache: None }))
            }
            Strategy::ZOrderMerge => {
                let (r, s) = ops.flat?;
                let grid = ZGrid::new(ops.world, DEFAULT_Z_BITS);
                Some(Box::new(ZOrderMergeExec { r, s, grid }))
            }
            Strategy::ZIndex => {
                let (r, s) = ops.flat?;
                let grid = ZGrid::new(ops.world, DEFAULT_Z_BITS);
                Some(Box::new(ZIndexExec {
                    r,
                    s,
                    grid,
                    cache: None,
                }))
            }
            Strategy::Grid => {
                let (r, s) = ops.flat?;
                let config = GridConfig {
                    world: ops.world,
                    nx: DEFAULT_GRID_CELLS,
                    ny: DEFAULT_GRID_CELLS,
                };
                Some(Box::new(GridExec { r, s, config }))
            }
            Strategy::Partition => {
                let (r, s) = ops.flat?;
                Some(Box::new(PartitionExec { r, s }))
            }
            Strategy::Auto => {
                let chooser = ops.chooser?;
                if ops.flat.is_none() && ops.trees.is_none() {
                    return None;
                }
                Some(Box::new(AutoExec {
                    ops: *ops,
                    chooser,
                    cache: Vec::new(),
                    resolved: None,
                }))
            }
        }
    }
}

/// The data a join runs over: flat stored relations, generalization-tree
/// relations, or both, plus the world rectangle that space-partitioning
/// strategies (grid, z-order) decompose.
#[derive(Clone, Copy)]
pub struct JoinOperands<'a> {
    /// `(R, S)` as flat stored relations, for the tuple-at-a-time
    /// strategies.
    pub flat: Option<(&'a StoredRelation, &'a StoredRelation)>,
    /// `(R, S)` as stored generalization trees, for strategy II and the
    /// local join indices.
    pub trees: Option<(&'a TreeRelation, &'a TreeRelation)>,
    /// World rectangle enclosing all data.
    pub world: Rect,
    /// Cost-model hook for [`Strategy::Auto`]; `None` disables `Auto`
    /// (its [`Strategy::executor`] returns `None`).
    pub chooser: Option<StrategyChooser<'a>>,
}

impl<'a> JoinOperands<'a> {
    /// Operands with flat relations only.
    pub fn flat(r: &'a StoredRelation, s: &'a StoredRelation, world: Rect) -> Self {
        JoinOperands {
            flat: Some((r, s)),
            trees: None,
            world,
            chooser: None,
        }
    }

    /// Operands with tree relations only.
    pub fn trees(r: &'a TreeRelation, s: &'a TreeRelation, world: Rect) -> Self {
        JoinOperands {
            flat: None,
            trees: Some((r, s)),
            world,
            chooser: None,
        }
    }

    /// Adds tree relations to flat operands (or vice versa), so one
    /// operand set can serve all nine strategies.
    pub fn with_trees(mut self, r: &'a TreeRelation, s: &'a TreeRelation) -> Self {
        self.trees = Some((r, s));
        self
    }

    /// Attaches a per-request strategy chooser, enabling
    /// [`Strategy::Auto`]. `sj-core::advisor::auto_chooser` builds one
    /// from the cost model of §6.
    pub fn with_chooser(mut self, chooser: StrategyChooser<'a>) -> Self {
        self.chooser = Some(chooser);
        self
    }
}

struct NestedLoopExec<'a> {
    r: &'a StoredRelation,
    s: &'a StoredRelation,
}

impl JoinExecutor for NestedLoopExec<'_> {
    fn strategy(&self) -> Strategy {
        Strategy::NestedLoop
    }

    fn try_execute(
        &mut self,
        req: &JoinRequest,
        pool: &mut BufferPool,
    ) -> Result<JoinRun, StorageError> {
        try_nested_loop_join_traced(pool, self.r, self.s, req.theta, &mut req.trace.borrow_mut())
    }
}

struct SweepExec<'a> {
    r: &'a StoredRelation,
    s: &'a StoredRelation,
}

impl JoinExecutor for SweepExec<'_> {
    fn strategy(&self) -> Strategy {
        Strategy::Sweep
    }

    fn try_execute(
        &mut self,
        req: &JoinRequest,
        pool: &mut BufferPool,
    ) -> Result<JoinRun, StorageError> {
        try_sweep_join_traced(pool, self.r, self.s, req.theta, &mut req.trace.borrow_mut())
    }
}

struct TreeExec<'a> {
    r: &'a TreeRelation,
    s: &'a TreeRelation,
}

impl JoinExecutor for TreeExec<'_> {
    fn strategy(&self) -> Strategy {
        Strategy::Tree
    }

    fn try_execute(
        &mut self,
        req: &JoinRequest,
        pool: &mut BufferPool,
    ) -> Result<JoinRun, StorageError> {
        // Falls back to the sequential Algorithm JOIN when
        // `req.parallelism` is one thread, so the request's parallelism
        // knob covers strategy II uniformly.
        try_parallel_tree_join_traced(
            pool,
            self.r,
            self.s,
            req.theta,
            req.parallelism,
            &mut req.trace.borrow_mut(),
        )
    }
}

struct JoinIndexExec<'a> {
    r: &'a StoredRelation,
    s: &'a StoredRelation,
    /// The index materializes one θ-join, so the cache is keyed by θ.
    cache: Option<(ThetaOp, JoinIndex)>,
}

impl JoinExecutor for JoinIndexExec<'_> {
    fn strategy(&self) -> Strategy {
        Strategy::JoinIndex
    }

    fn try_execute(
        &mut self,
        req: &JoinRequest,
        pool: &mut BufferPool,
    ) -> Result<JoinRun, StorageError> {
        let rebuild = !matches!(&self.cache, Some((t, _)) if *t == req.theta);
        if rebuild {
            // Only a *successful* build is cached: a build aborted by a
            // fault leaves the previous cache (if any) intact.
            let (idx, _build_cost) =
                JoinIndex::try_build(pool, self.r, self.s, req.theta, DEFAULT_Z)?;
            self.cache = Some((req.theta, idx));
        }
        let (_, idx) = self.cache.as_ref().expect("cache was just populated");
        idx.try_join_traced(pool, self.r, self.s, &mut req.trace.borrow_mut())
    }
}

struct LocalIndexExec<'a> {
    r: &'a TreeRelation,
    s: &'a TreeRelation,
    cache: Option<(ThetaOp, LocalJoinIndex)>,
}

impl JoinExecutor for LocalIndexExec<'_> {
    fn strategy(&self) -> Strategy {
        Strategy::LocalIndex
    }

    fn try_execute(
        &mut self,
        req: &JoinRequest,
        pool: &mut BufferPool,
    ) -> Result<JoinRun, StorageError> {
        let rebuild = !matches!(&self.cache, Some((t, _)) if *t == req.theta);
        if rebuild {
            let (idx, _build_cost) = LocalJoinIndex::try_build(
                pool,
                self.r,
                self.s,
                req.theta,
                DEFAULT_LOCAL_LEVEL,
                DEFAULT_Z,
            )?;
            self.cache = Some((req.theta, idx));
        }
        let (_, idx) = self.cache.as_ref().expect("cache was just populated");
        idx.try_join_traced(pool, &mut req.trace.borrow_mut())
    }
}

struct ZOrderMergeExec<'a> {
    r: &'a StoredRelation,
    s: &'a StoredRelation,
    grid: ZGrid,
}

impl JoinExecutor for ZOrderMergeExec<'_> {
    fn strategy(&self) -> Strategy {
        Strategy::ZOrderMerge
    }

    fn try_execute(
        &mut self,
        req: &JoinRequest,
        pool: &mut BufferPool,
    ) -> Result<JoinRun, StorageError> {
        try_zorder_overlap_join_traced(
            pool,
            self.r,
            self.s,
            &self.grid,
            req.theta,
            &mut req.trace.borrow_mut(),
        )
    }
}

struct ZIndexExec<'a> {
    r: &'a StoredRelation,
    s: &'a StoredRelation,
    grid: ZGrid,
    /// The z-value index is θ-independent (it indexes R's geometry), so
    /// one build serves every supported operator.
    cache: Option<ZIndex>,
}

impl JoinExecutor for ZIndexExec<'_> {
    fn strategy(&self) -> Strategy {
        Strategy::ZIndex
    }

    fn try_execute(
        &mut self,
        req: &JoinRequest,
        pool: &mut BufferPool,
    ) -> Result<JoinRun, StorageError> {
        if self.cache.is_none() {
            self.cache = Some(ZIndex::try_build(pool, self.r, self.grid, DEFAULT_Z)?);
        }
        let idx = self.cache.as_ref().expect("cache was just populated");
        idx.try_join_traced(pool, self.r, self.s, req.theta, &mut req.trace.borrow_mut())
    }
}

struct GridExec<'a> {
    r: &'a StoredRelation,
    s: &'a StoredRelation,
    config: GridConfig,
}

impl JoinExecutor for GridExec<'_> {
    fn strategy(&self) -> Strategy {
        Strategy::Grid
    }

    fn try_execute(
        &mut self,
        req: &JoinRequest,
        pool: &mut BufferPool,
    ) -> Result<JoinRun, StorageError> {
        try_grid_join_traced(
            pool,
            self.r,
            self.s,
            self.config,
            req.theta,
            &mut req.trace.borrow_mut(),
        )
    }
}

struct PartitionExec<'a> {
    r: &'a StoredRelation,
    s: &'a StoredRelation,
}

impl JoinExecutor for PartitionExec<'_> {
    fn strategy(&self) -> Strategy {
        Strategy::Partition
    }

    fn try_execute(
        &mut self,
        req: &JoinRequest,
        pool: &mut BufferPool,
    ) -> Result<JoinRun, StorageError> {
        try_partition_join_traced(
            pool,
            self.r,
            self.s,
            req.theta,
            req.parallelism,
            &mut req.trace.borrow_mut(),
        )
    }
}

/// [`Strategy::Auto`]: asks the operands' chooser for a concrete
/// strategy per request, guards the answer with [`Strategy::supports`]
/// and operand availability, and delegates. Concrete executors are
/// cached per strategy so their lazily built indices survive across
/// requests that resolve the same way.
struct AutoExec<'a> {
    ops: JoinOperands<'a>,
    chooser: StrategyChooser<'a>,
    cache: Vec<(Strategy, Box<dyn JoinExecutor + 'a>)>,
    resolved: Option<Strategy>,
}

impl<'a> AutoExec<'a> {
    fn resolve(&self, theta: ThetaOp, pool: &mut BufferPool) -> Result<Strategy, StorageError> {
        let pick = (self.chooser)(theta, pool)?;
        if pick != Strategy::Auto && pick.supports(theta) && pick.executor(&self.ops).is_some() {
            return Ok(pick);
        }
        // The chooser named Auto itself, an inapplicable strategy for
        // this θ, or one whose operands are absent: fall back to the
        // first concrete strategy that can run. NestedLoop (flat) and
        // Tree (trees) support all eight operators, so with operands
        // present — checked at executor construction — this never fails.
        Ok(Strategy::ALL
            .into_iter()
            .find(|s| s.supports(theta) && s.executor(&self.ops).is_some())
            .expect("a universal strategy exists for the available operands"))
    }
}

impl JoinExecutor for AutoExec<'_> {
    fn strategy(&self) -> Strategy {
        Strategy::Auto
    }

    fn resolved_strategy(&self) -> Strategy {
        self.resolved.unwrap_or(Strategy::Auto)
    }

    fn try_execute(
        &mut self,
        req: &JoinRequest,
        pool: &mut BufferPool,
    ) -> Result<JoinRun, StorageError> {
        let chosen = self.resolve(req.theta, pool)?;
        self.resolved = Some(chosen);
        req.trace
            .borrow_mut()
            .emit(&format!("auto/choose:{}", chosen.name()), 0, &[]);
        if !self.cache.iter().any(|(s, _)| *s == chosen) {
            let exec = chosen
                .executor(&self.ops)
                .expect("resolve() verified operand availability");
            self.cache.push((chosen, exec));
        }
        let (_, exec) = self
            .cache
            .iter_mut()
            .find(|(s, _)| *s == chosen)
            .expect("cache entry was just ensured");
        exec.try_execute(req, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geom::{Geometry, Point};
    use sj_storage::{Disk, DiskConfig, Layout};

    fn pool() -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), 64)
    }

    fn grid_rel(pool: &mut BufferPool, n: usize, step: f64, id0: u64) -> StoredRelation {
        let tuples: Vec<(u64, Geometry)> = (0..n * n)
            .map(|i| {
                (
                    id0 + i as u64,
                    Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
                )
            })
            .collect();
        StoredRelation::build(pool, &tuples, 300, Layout::Clustered)
    }

    #[test]
    fn names_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::from_name(s.name()), Some(s));
        }
        assert_eq!(Strategy::from_name("auto"), Some(Strategy::Auto));
        assert_eq!(Strategy::from_name("bogus"), None);
    }

    #[test]
    fn auto_requires_a_chooser() {
        let mut p = pool();
        let r = grid_rel(&mut p, 4, 10.0, 0);
        let s = grid_rel(&mut p, 4, 10.0, 500);
        let world = Rect::from_bounds(0.0, 0.0, 64.0, 64.0);
        let ops = JoinOperands::flat(&r, &s, world);
        assert!(Strategy::Auto.executor(&ops).is_none());
    }

    #[test]
    fn auto_delegates_to_the_chosen_strategy() {
        let mut p = pool();
        let r = grid_rel(&mut p, 5, 10.0, 0);
        let s = grid_rel(&mut p, 5, 10.0, 500);
        let world = Rect::from_bounds(0.0, 0.0, 64.0, 64.0);
        let chooser = |_: ThetaOp, _: &mut BufferPool| -> Result<Strategy, StorageError> {
            Ok(Strategy::Sweep)
        };
        let ops = JoinOperands::flat(&r, &s, world).with_chooser(&chooser);
        let theta = ThetaOp::Overlaps;

        let mut want = Strategy::NestedLoop
            .executor(&JoinOperands::flat(&r, &s, world))
            .unwrap()
            .execute(&JoinRequest::new(theta), &mut p)
            .pairs;
        want.sort_unstable();

        let mut exec = Strategy::Auto.executor(&ops).expect("chooser attached");
        assert_eq!(exec.strategy(), Strategy::Auto);
        let req = JoinRequest::new(theta).with_trace(TraceSink::vec());
        let mut got = exec.execute(&req, &mut p).pairs;
        got.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(exec.resolved_strategy(), Strategy::Sweep);
        let sink = req.take_trace();
        assert!(
            sink.events().iter().any(|e| e.span == "auto/choose:sweep"),
            "auto must trace its choice"
        );
    }

    #[test]
    fn auto_never_picks_an_inapplicable_strategy() {
        let mut p = pool();
        let r = grid_rel(&mut p, 5, 10.0, 0);
        let s = grid_rel(&mut p, 5, 10.0, 500);
        let world = Rect::from_bounds(0.0, 0.0, 64.0, 64.0);
        // A hostile chooser that always names Grid, which cannot run
        // directional predicates — Auto must fall back, not crash or
        // return garbage.
        let chooser = |_: ThetaOp, _: &mut BufferPool| -> Result<Strategy, StorageError> {
            Ok(Strategy::Grid)
        };
        let ops = JoinOperands::flat(&r, &s, world).with_chooser(&chooser);
        let theta = ThetaOp::DirectionOf(sj_geom::Direction::NorthWest);
        assert!(Strategy::Auto.supports(theta));

        let mut want = Strategy::NestedLoop
            .executor(&JoinOperands::flat(&r, &s, world))
            .unwrap()
            .execute(&JoinRequest::new(theta), &mut p)
            .pairs;
        want.sort_unstable();

        let mut exec = Strategy::Auto.executor(&ops).unwrap();
        let mut got = exec.execute(&JoinRequest::new(theta), &mut p).pairs;
        got.sort_unstable();
        assert_eq!(got, want);
        let resolved = exec.resolved_strategy();
        assert_ne!(resolved, Strategy::Grid);
        assert!(resolved.supports(theta));
    }

    #[test]
    fn auto_falls_back_when_operands_are_missing() {
        let mut p = pool();
        let r = grid_rel(&mut p, 4, 10.0, 0);
        let s = grid_rel(&mut p, 4, 10.0, 500);
        let world = Rect::from_bounds(0.0, 0.0, 64.0, 64.0);
        // Tree needs TreeRelations, which flat-only operands lack.
        let chooser = |_: ThetaOp, _: &mut BufferPool| -> Result<Strategy, StorageError> {
            Ok(Strategy::Tree)
        };
        let ops = JoinOperands::flat(&r, &s, world).with_chooser(&chooser);
        let mut exec = Strategy::Auto.executor(&ops).unwrap();
        let run = exec.execute(&JoinRequest::new(ThetaOp::Overlaps), &mut p);
        assert!(!run.pairs.is_empty());
        assert!(matches!(
            exec.resolved_strategy(),
            Strategy::NestedLoop | Strategy::Sweep
        ));
    }

    #[test]
    fn flat_strategies_dispatch_and_agree() {
        let mut p = pool();
        let r = grid_rel(&mut p, 6, 10.0, 0);
        let s = grid_rel(&mut p, 6, 10.0, 500);
        let world = Rect::from_bounds(0.0, 0.0, 64.0, 64.0);
        let ops = JoinOperands::flat(&r, &s, world);
        let theta = ThetaOp::Overlaps;
        let req = JoinRequest::new(theta);

        let mut want = Strategy::NestedLoop
            .executor(&ops)
            .expect("flat operands present")
            .execute(&req, &mut p)
            .pairs;
        want.sort_unstable();
        for strat in Strategy::ALL {
            let Some(mut exec) = strat.executor(&ops) else {
                assert!(
                    matches!(strat, Strategy::Tree | Strategy::LocalIndex),
                    "{} should only need flat operands",
                    strat.name()
                );
                continue;
            };
            assert_eq!(exec.strategy(), strat);
            assert!(exec.supports(theta));
            let mut got = exec.execute(&req, &mut p).pairs;
            got.sort_unstable();
            assert_eq!(got, want, "{} diverges", strat.name());
        }
    }

    #[test]
    fn unsupported_operators_are_reported() {
        let theta = ThetaOp::DirectionOf(sj_geom::Direction::NorthWest);
        assert!(!Strategy::Grid.supports(theta));
        assert!(!Strategy::ZOrderMerge.supports(theta));
        assert!(!Strategy::ZIndex.supports(theta));
        assert!(Strategy::Partition.supports(theta));
        assert!(!Strategy::ZIndex.supports(ThetaOp::WithinDistance(2.0)));
        assert!(Strategy::Grid.supports(ThetaOp::WithinDistance(2.0)));
    }

    #[test]
    fn index_cache_is_keyed_by_theta() {
        let mut p = pool();
        let r = grid_rel(&mut p, 5, 10.0, 0);
        let s = grid_rel(&mut p, 5, 10.0, 500);
        let world = Rect::from_bounds(0.0, 0.0, 64.0, 64.0);
        let ops = JoinOperands::flat(&r, &s, world);
        let mut exec = Strategy::JoinIndex.executor(&ops).unwrap();
        let a = exec.execute(&JoinRequest::new(ThetaOp::WithinDistance(10.5)), &mut p);
        let b = exec.execute(&JoinRequest::new(ThetaOp::Overlaps), &mut p);
        let a2 = exec.execute(&JoinRequest::new(ThetaOp::WithinDistance(10.5)), &mut p);
        assert_ne!(a.pairs.len(), b.pairs.len());
        let mut x = a.pairs.clone();
        let mut y = a2.pairs.clone();
        x.sort_unstable();
        y.sort_unstable();
        assert_eq!(x, y, "rebuild for the same θ must reproduce the join");
    }

    #[test]
    fn request_builders_and_trace_recovery() {
        let mut p = pool();
        let r = grid_rel(&mut p, 4, 10.0, 0);
        let s = grid_rel(&mut p, 4, 10.0, 500);
        let world = Rect::from_bounds(0.0, 0.0, 64.0, 64.0);
        let ops = JoinOperands::flat(&r, &s, world);
        let req = JoinRequest::new(ThetaOp::Overlaps)
            .with_parallelism(Parallelism::with_threads(2))
            .with_trace(TraceSink::vec());
        let run = Strategy::Partition
            .executor(&ops)
            .unwrap()
            .execute(&req, &mut p);
        assert_eq!(run.stats, run.phases.total());
        let sink = req.take_trace();
        let events = sink.events();
        assert!(!events.is_empty(), "traced run must emit spans");
        assert!(events.iter().any(|e| e.span.starts_with("partition_join/")));
        assert!(matches!(&*req.trace.borrow(), TraceSink::Null));
    }
}
