//! Shared refinement engine for the candidate pairs a filter produces.
//!
//! Every filter-and-refine executor funnels its candidate pairs through
//! [`MarginRefiner::refine`]. On an uncompressed relation pair this is
//! exactly the classic path: decode both exact geometries (cached per
//! side, charged I/O) and evaluate θ. When **both** relations carry a
//! compressed sidecar ([`StoredRelation::is_compressed`]), the refiner
//! first reads the quantized records (smaller pages → fewer I/Os, the
//! paper's per-record `v`-byte term) and consults the three-valued
//! margin predicate [`sj_geom::margin_eval`]; the exact records are
//! fetched and evaluated only on [`MarginVerdict::MustDecode`].
//!
//! Counter contract: every candidate pair charges `theta_evals += 1`
//! (the refinement decision), identically on both paths — so compressed
//! and exact runs of the same join report the same `theta_evals` and the
//! savings show up where they belong, in `physical_reads` and wall
//! clock. Margin outcomes additionally tick `margin_hits`,
//! `margin_misses`, or `decoded_exact`; the decode fraction of a run is
//! `decoded_exact / theta_evals`.

use std::collections::HashMap;

use sj_geom::{margin_eval, Geometry, MarginVerdict, QGeometry, ThetaOp};
use sj_storage::{BufferPool, StorageError};

use crate::relation::StoredRelation;
use crate::stats::ExecStats;

/// Per-relation decode caches: one for exact geometries, one for
/// quantized sidecar records. Keyed by logical position, matching the
/// candidate indices the sweep/partition filters hand over.
struct RefineSide<'a> {
    rel: &'a StoredRelation,
    exact: HashMap<u32, Geometry>,
    quant: HashMap<u32, QGeometry>,
}

impl<'a> RefineSide<'a> {
    fn new(rel: &'a StoredRelation) -> Self {
        RefineSide {
            rel,
            exact: HashMap::new(),
            quant: HashMap::new(),
        }
    }

    fn exact_at(&mut self, pool: &mut BufferPool, i: u32) -> Result<&Geometry, StorageError> {
        if !self.exact.contains_key(&i) {
            let (_, g) = self.rel.try_read_at(pool, i as usize)?;
            self.exact.insert(i, g);
        }
        Ok(&self.exact[&i])
    }

    fn quant_at(&mut self, pool: &mut BufferPool, i: u32) -> Result<&QGeometry, StorageError> {
        if !self.quant.contains_key(&i) {
            let (_, q) = self.rel.try_read_quant_at(pool, i as usize)?;
            self.quant.insert(i, q);
        }
        Ok(&self.quant[&i])
    }
}

/// Refinement engine for one executor run (or one tile of a parallel
/// run): owns the per-side decoded-geometry caches and the
/// margin-vs-exact dispatch.
pub struct MarginRefiner<'a> {
    r: RefineSide<'a>,
    s: RefineSide<'a>,
    margin: bool,
}

impl<'a> MarginRefiner<'a> {
    /// Builds a refiner over the two relations. The margin path engages
    /// only when *both* sides are compressed; otherwise every candidate
    /// takes the exact path and the run is byte- and counter-identical
    /// to the pre-compression executors.
    pub fn new(r: &'a StoredRelation, s: &'a StoredRelation) -> Self {
        let margin = r.is_compressed() && s.is_compressed();
        MarginRefiner {
            r: RefineSide::new(r),
            s: RefineSide::new(s),
            margin,
        }
    }

    /// True when this refiner consults the margin predicate (both sides
    /// compressed).
    pub fn uses_margin(&self) -> bool {
        self.margin
    }

    /// Refines one candidate pair given by logical positions `(ri, si)`:
    /// returns whether θ holds for the exact geometries, or the first
    /// storage fault. Charges `theta_evals` once per call plus the
    /// margin counters described at module level.
    pub fn refine(
        &mut self,
        pool: &mut BufferPool,
        theta: &ThetaOp,
        ri: u32,
        si: u32,
        stats: &mut ExecStats,
    ) -> Result<bool, StorageError> {
        stats.theta_evals += 1;
        if self.margin {
            let verdict = {
                let qr = self.r.quant_at(pool, ri)?;
                // Two-phase borrow: sides are distinct fields.
                let qs = self.s.quant_at(pool, si)?;
                margin_eval(theta, qr, qs)
            };
            match verdict {
                MarginVerdict::Hit => {
                    stats.margin_hits += 1;
                    return Ok(true);
                }
                MarginVerdict::Miss => {
                    stats.margin_misses += 1;
                    return Ok(false);
                }
                MarginVerdict::MustDecode => stats.decoded_exact += 1,
            }
        }
        let rg = self.r.exact_at(pool, ri)?;
        let sg = self.s.exact_at(pool, si)?;
        Ok(theta.eval(rg, sg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geom::{Point, Polygon};
    use sj_storage::{Disk, DiskConfig, Layout};

    fn pool() -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), 64)
    }

    fn polys(n: usize, off: f64) -> Vec<(u64, Geometry)> {
        (0..n)
            .map(|i| {
                let c = Point::new(i as f64 * 3.0 + off, (i % 4) as f64 * 3.0);
                (i as u64, Geometry::Polygon(Polygon::regular(c, 1.2, 10)))
            })
            .collect()
    }

    fn build_pair(p: &mut BufferPool, compressed: bool) -> (StoredRelation, StoredRelation) {
        let (tr, ts) = (polys(12, 0.0), polys(12, 1.1));
        if compressed {
            let qr = StoredRelation::quant_record_size_for(&tr);
            let qs = StoredRelation::quant_record_size_for(&ts);
            (
                StoredRelation::build_compressed(p, &tr, 300, qr, Layout::Clustered),
                StoredRelation::build_compressed(p, &ts, 300, qs, Layout::Clustered),
            )
        } else {
            (
                StoredRelation::build(p, &tr, 300, Layout::Clustered),
                StoredRelation::build(p, &ts, 300, Layout::Clustered),
            )
        }
    }

    #[test]
    fn margin_and_exact_paths_agree_and_charge_identical_theta_evals() {
        let mut pe = pool();
        let (re, se) = build_pair(&mut pe, false);
        let mut pm = pool();
        let (rm, sm) = build_pair(&mut pm, true);

        for theta in [
            ThetaOp::WithinDistance(1.0),
            ThetaOp::Overlaps,
            ThetaOp::Adjacent,
            ThetaOp::WithinCenterDistance(4.0),
        ] {
            let mut exact_ref = MarginRefiner::new(&re, &se);
            let mut margin_ref = MarginRefiner::new(&rm, &sm);
            assert!(!exact_ref.uses_margin());
            assert!(margin_ref.uses_margin());
            let (mut es, mut ms) = (ExecStats::default(), ExecStats::default());
            for ri in 0..12u32 {
                for si in 0..12u32 {
                    let a = exact_ref.refine(&mut pe, &theta, ri, si, &mut es).unwrap();
                    let b = margin_ref.refine(&mut pm, &theta, ri, si, &mut ms).unwrap();
                    assert_eq!(a, b, "{theta:?} diverged at ({ri},{si})");
                }
            }
            assert_eq!(es.theta_evals, 144);
            assert_eq!(ms.theta_evals, 144, "same charge on both paths");
            assert_eq!(es.decoded_exact, 0);
            assert_eq!(
                ms.margin_hits + ms.margin_misses + ms.decoded_exact,
                144,
                "every margin candidate is classified"
            );
        }
    }

    #[test]
    fn margin_path_decodes_fewer_exact_records() {
        let mut pm = pool();
        let (rm, sm) = build_pair(&mut pm, true);
        let theta = ThetaOp::WithinDistance(0.5);
        let mut refiner = MarginRefiner::new(&rm, &sm);
        let mut st = ExecStats::default();
        for ri in 0..12u32 {
            for si in 0..12u32 {
                refiner.refine(&mut pm, &theta, ri, si, &mut st).unwrap();
            }
        }
        assert!(
            st.decoded_exact < st.theta_evals,
            "margin test must resolve some pairs: {st:?}"
        );
        assert!(st.margin_misses > 0, "distant pairs resolve as misses");
    }
}
