//! Sort-merge strategies on z-order (§2.2).
//!
//! Two executors, reproducing both halves of the paper's argument:
//!
//! * [`zorder_overlap_join`] — the **positive exception**: for θ-operators
//!   whose Θ-filter is MBR overlap (`overlaps`, `includes`,
//!   `contained in`), decomposing each object into z-elements (Orenstein
//!   1986) and sort-merging the element lists yields a complete candidate
//!   set. "Any overlap is likely to be reported more than once" — the
//!   executor counts and deduplicates those repeats before refinement.
//! * [`naive_zvalue_sort_merge`] — the **negative result**: sorting
//!   objects by a single z-value and merging with a bounded window, the
//!   way one would for one-dimensional attributes, *misses* matches for
//!   operators like `adjacent`. This executor exists to demonstrate §2.2's
//!   counterexample (the paper's `(o3, o9)` pair) and is deliberately
//!   incomplete — never use it for real queries.

use std::collections::BTreeSet;
use std::collections::HashSet;

use sj_geom::{Bounded, Geometry, ThetaOp};
use sj_obs::{Phase, PhaseTimer, TraceSink};
use sj_storage::{BufferPool, StorageError};
use sj_zorder::ZGrid;

use crate::relation::StoredRelation;
use crate::stats::{ExecStats, JoinRun};

/// True if `theta`'s Θ-filter is plain MBR overlap, which makes the
/// z-element candidate set complete for it.
pub fn supported_by_zorder(theta: ThetaOp) -> bool {
    matches!(
        theta,
        ThetaOp::Overlaps | ThetaOp::Includes | ThetaOp::ContainedIn
    )
}

/// Orenstein's sort-merge overlap join over z-element decompositions.
///
/// # Panics
///
/// Panics if `theta` is not [`supported_by_zorder`] — the whole point of
/// §2.2 is that this strategy exists *only* for overlap-family operators.
pub fn zorder_overlap_join(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    grid: &ZGrid,
    theta: ThetaOp,
) -> JoinRun {
    zorder_overlap_join_traced(pool, r, s, grid, theta, &mut TraceSink::Null)
}

/// [`zorder_overlap_join`] with phase instrumentation: the scans,
/// z-decomposition, and sort are the `partition` phase; the merge sweep
/// (whose duplicate reports land in `passes`) the `filter` phase; exact
/// θ-tests on deduplicated candidates the `refine` phase.
pub fn zorder_overlap_join_traced(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    grid: &ZGrid,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> JoinRun {
    try_zorder_overlap_join_traced(pool, r, s, grid, theta, trace)
        .unwrap_or_else(|e| panic!("z-order merge join failed: {e}"))
}

/// Fail-stop [`zorder_overlap_join_traced`]: the first storage fault
/// aborts the run with a typed error. Still panics on non-overlap
/// operators — an unsupported operator is a logic error, not a storage
/// fault.
pub fn try_zorder_overlap_join_traced(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    grid: &ZGrid,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> Result<JoinRun, StorageError> {
    assert!(
        supported_by_zorder(theta),
        "sort-merge on z-order only supports overlap-family operators, got {theta:?}"
    );
    let mut timer = PhaseTimer::for_sink(trace);
    timer.enter(Phase::Partition);
    let window = pool.stats();
    let mut run = JoinRun::default();
    let mut partition = ExecStats::default();

    // Scan both relations and decompose every object's MBR into
    // z-elements. (The scans are the strategy's "sort phase" input; the
    // element lists are assumed to fit in memory, as in the paper's
    // sort-merge discussion.)
    let r_rows = r.try_scan(pool)?;
    let s_rows = s.try_scan(pool)?;

    #[derive(Debug, Clone, Copy)]
    struct Elem {
        lo: u64,
        hi: u64,
        idx: usize,
        from_r: bool,
    }
    let mut elems: Vec<Elem> = Vec::new();
    for (idx, (_, g)) in r_rows.iter().enumerate() {
        for z in grid.decompose(&g.mbr()) {
            elems.push(Elem {
                lo: z.lo,
                hi: z.hi,
                idx,
                from_r: true,
            });
        }
    }
    for (idx, (_, g)) in s_rows.iter().enumerate() {
        for z in grid.decompose(&g.mbr()) {
            elems.push(Elem {
                lo: z.lo,
                hi: z.hi,
                idx,
                from_r: false,
            });
        }
    }
    // Sort phase (by z-interval start).
    elems.sort_by_key(|e| (e.lo, e.hi));
    partition.add_io(pool.stats().since(&window));
    run.phases.record(Phase::Partition, partition);

    // Merge phase: sweep with two active sets ordered by interval end.
    timer.enter(Phase::Filter);
    let mut active_r: BTreeSet<(u64, usize, usize)> = BTreeSet::new(); // (hi, idx, seq)
    let mut active_s: BTreeSet<(u64, usize, usize)> = BTreeSet::new();
    let mut candidates: HashSet<(usize, usize)> = HashSet::new();
    let mut reported = 0u64; // with duplicates, as the paper describes
    for (seq, e) in elems.iter().enumerate() {
        // Expire opposite-side intervals ending before this start.
        let expire = |set: &mut BTreeSet<(u64, usize, usize)>, lo: u64| {
            while let Some(&(hi, idx, s)) = set.iter().next() {
                if hi < lo {
                    set.remove(&(hi, idx, s));
                } else {
                    break;
                }
            }
        };
        expire(&mut active_r, e.lo);
        expire(&mut active_s, e.lo);
        let (own, opposite) = if e.from_r {
            (&mut active_r, &active_s)
        } else {
            (&mut active_s, &active_r)
        };
        for &(_, other_idx, _) in opposite.iter() {
            reported += 1;
            let pair = if e.from_r {
                (e.idx, other_idx)
            } else {
                (other_idx, e.idx)
            };
            candidates.insert(pair);
        }
        own.insert((e.hi, e.idx, seq));
    }
    run.phases.record(
        Phase::Filter,
        ExecStats {
            passes: reported, // exposed as "reports incl. duplicates"
            ..Default::default()
        },
    );

    // Refinement: exact θ on the deduplicated candidates.
    timer.enter(Phase::Refine);
    let mut refine = ExecStats::default();
    let mut pairs: Vec<(usize, usize)> = candidates.into_iter().collect();
    pairs.sort_unstable();
    for (ri, si) in pairs {
        refine.theta_evals += 1;
        let (r_id, r_geom) = &r_rows[ri];
        let (s_id, s_geom) = &s_rows[si];
        if theta.eval(r_geom, s_geom) {
            run.pairs.push((*r_id, *s_id));
        }
    }
    timer.stop();
    run.phases.record(Phase::Refine, refine);
    run.seal("zorder_merge", &timer, trace);
    Ok(run)
}

/// The doomed "one-dimensional" sort-merge of §2.2: each object is reduced
/// to the single z-value of its centre cell; both relations are sorted by
/// it and merged, θ-testing only objects whose z-values fall within
/// `window` positions of each other in the merged order. Matching pairs
/// that are spatially close but z-distant are silently **missed** — that
/// is the point.
pub fn naive_zvalue_sort_merge(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    grid: &ZGrid,
    theta: ThetaOp,
    window: usize,
) -> JoinRun {
    let before = pool.stats();
    let mut run = JoinRun::default();
    let mut r_rows: Vec<(u64, Geometry, u64)> = r
        .scan(pool)
        .into_iter()
        .map(|(id, g)| {
            let z = grid.z_of_point(&g.centerpoint());
            (id, g, z)
        })
        .collect();
    let mut s_rows: Vec<(u64, Geometry, u64)> = s
        .scan(pool)
        .into_iter()
        .map(|(id, g)| {
            let z = grid.z_of_point(&g.centerpoint());
            (id, g, z)
        })
        .collect();
    r_rows.sort_by_key(|(_, _, z)| *z);
    s_rows.sort_by_key(|(_, _, z)| *z);

    // Merge: for each r, θ-test only the s tuples within `window` merge
    // positions around r's insertion point.
    for (r_id, r_geom, z) in &r_rows {
        let pos = s_rows.partition_point(|(_, _, sz)| sz < z);
        let lo = pos.saturating_sub(window);
        let hi = (pos + window).min(s_rows.len());
        for (s_id, s_geom, _) in &s_rows[lo..hi] {
            run.stats.theta_evals += 1;
            if theta.eval(r_geom, s_geom) {
                run.pairs.push((*r_id, *s_id));
            }
        }
    }
    run.stats.add_io(pool.stats().since(&before));
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested_loop::nested_loop_join;
    use sj_geom::Rect;
    use sj_storage::{Disk, DiskConfig, Layout};

    fn pool() -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), 64)
    }

    fn rect_rel(pool: &mut BufferPool, rects: &[(f64, f64, f64, f64)], id0: u64) -> StoredRelation {
        let tuples: Vec<(u64, Geometry)> = rects
            .iter()
            .enumerate()
            .map(|(i, &(x0, y0, x1, y1))| {
                (
                    id0 + i as u64,
                    Geometry::Rect(Rect::from_bounds(x0, y0, x1, y1)),
                )
            })
            .collect();
        StoredRelation::build(pool, &tuples, 300, Layout::Clustered)
    }

    fn world_grid() -> ZGrid {
        ZGrid::new(Rect::from_bounds(0.0, 0.0, 64.0, 64.0), 6)
    }

    #[test]
    fn overlap_join_equals_nested_loop() {
        let mut p = pool();
        let r = rect_rel(
            &mut p,
            &[
                (0.0, 0.0, 10.0, 10.0),
                (20.0, 20.0, 30.0, 30.0),
                (5.0, 5.0, 25.0, 25.0),
                (40.0, 40.0, 50.0, 50.0),
            ],
            0,
        );
        let s = rect_rel(
            &mut p,
            &[
                (8.0, 8.0, 12.0, 12.0),
                (29.0, 29.0, 41.0, 41.0),
                (60.0, 60.0, 63.0, 63.0),
            ],
            100,
        );
        let grid = world_grid();
        let mut got = zorder_overlap_join(&mut p, &r, &s, &grid, ThetaOp::Overlaps).pairs;
        got.sort_unstable();
        let mut want = nested_loop_join(&mut p, &r, &s, ThetaOp::Overlaps).pairs;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicates_are_reported_then_deduplicated() {
        let mut p = pool();
        // Two large overlapping rectangles spanning many common cells.
        let r = rect_rel(&mut p, &[(0.0, 0.0, 33.0, 33.0)], 0);
        let s = rect_rel(&mut p, &[(10.0, 10.0, 40.0, 40.0)], 100);
        let grid = world_grid();
        let run = zorder_overlap_join(&mut p, &r, &s, &grid, ThetaOp::Overlaps);
        assert_eq!(run.pairs, vec![(0, 100)]);
        // The raw merge reported the overlap many times (once per shared
        // z-element pairing), exactly as the paper warns.
        assert!(
            run.stats.passes > 1,
            "expected duplicate reports, got {}",
            run.stats.passes
        );
        assert_eq!(run.stats.theta_evals, 1, "but only one refinement test");
    }

    #[test]
    fn includes_and_contained_in_supported() {
        let mut p = pool();
        let r = rect_rel(&mut p, &[(0.0, 0.0, 20.0, 20.0)], 0);
        let s = rect_rel(
            &mut p,
            &[(5.0, 5.0, 10.0, 10.0), (30.0, 30.0, 31.0, 31.0)],
            100,
        );
        let grid = world_grid();
        let inc = zorder_overlap_join(&mut p, &r, &s, &grid, ThetaOp::Includes);
        assert_eq!(inc.pairs, vec![(0, 100)]);
        let cont = zorder_overlap_join(&mut p, &r, &s, &grid, ThetaOp::ContainedIn);
        assert!(cont.pairs.is_empty());
    }

    #[test]
    #[should_panic(expected = "overlap-family")]
    fn distance_theta_rejected() {
        let mut p = pool();
        let r = rect_rel(&mut p, &[(0.0, 0.0, 1.0, 1.0)], 0);
        let s = rect_rel(&mut p, &[(2.0, 2.0, 3.0, 3.0)], 100);
        let grid = world_grid();
        let _ = zorder_overlap_join(&mut p, &r, &s, &grid, ThetaOp::WithinDistance(5.0));
    }

    #[test]
    fn naive_sort_merge_misses_adjacent_pairs() {
        // The §2.2 counterexample, concretely: squares on an 8x8 grid
        // whose adjacency crosses the top-level quadrant boundary are far
        // apart in z-order and fall outside any small merge window.
        let mut p = pool();
        // R: unit cells at (3,0), (3,3); S: unit cells at (4,0), (4,3) —
        // each R cell is adjacent to the S cell at the same row, across
        // the x = 4·8 boundary of the 64-unit world (cells are 1 unit here
        // scaled by 8: use an 8x8 world with bits = 3).
        let grid = ZGrid::new(Rect::from_bounds(0.0, 0.0, 8.0, 8.0), 3);
        let r = rect_rel(&mut p, &[(3.0, 0.0, 4.0, 1.0), (3.0, 3.0, 4.0, 4.0)], 0);
        let s = rect_rel(
            &mut p,
            &[
                (4.0, 0.0, 5.0, 1.0),
                (4.0, 3.0, 5.0, 4.0),
                (3.0, 1.0, 4.0, 2.0),
            ],
            100,
        );
        let theta = ThetaOp::Adjacent;
        let complete = nested_loop_join(&mut p, &r, &s, theta).pairs;
        let naive = naive_zvalue_sort_merge(&mut p, &r, &s, &grid, theta, 1).pairs;
        assert!(
            naive.len() < complete.len(),
            "the naive merge must miss matches: {} vs {}",
            naive.len(),
            complete.len()
        );
    }

    #[test]
    fn naive_sort_merge_with_huge_window_degenerates_to_nested_loop() {
        let mut p = pool();
        let grid = ZGrid::new(Rect::from_bounds(0.0, 0.0, 8.0, 8.0), 3);
        let r = rect_rel(&mut p, &[(3.0, 0.0, 4.0, 1.0), (3.0, 3.0, 4.0, 4.0)], 0);
        let s = rect_rel(&mut p, &[(4.0, 0.0, 5.0, 1.0), (4.0, 3.0, 5.0, 4.0)], 100);
        let theta = ThetaOp::Adjacent;
        let mut complete = nested_loop_join(&mut p, &r, &s, theta).pairs;
        complete.sort_unstable();
        let mut windowed = naive_zvalue_sort_merge(&mut p, &r, &s, &grid, theta, 1000).pairs;
        windowed.sort_unstable();
        assert_eq!(
            windowed, complete,
            "an unbounded window recovers completeness"
        );
    }
}
