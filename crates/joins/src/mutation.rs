//! The typed mutation vocabulary of the write path.
//!
//! Reads speak `sj-service`'s `Request`/`Reply`; writes speak
//! [`WriteBatch`] — an ordered list of [`Mutation`]s against the two
//! relation sides, committed atomically by the service's `commit`.
//! The same types thread through `sj-rel::db` (over decoded tuples
//! instead of geometries — [`Mutation`] is generic over its value), so
//! the service and the relational layer share one wire vocabulary.
//! They live in this crate — below both consumers — because `sj-rel`
//! and `sj-service` sit on different branches of the crate graph.
//!
//! A batch also has a canonical byte encoding ([`WriteBatch::encode`] /
//! [`WriteBatch::decode`]) — the redo-record payload written to the
//! [write-ahead log](sj_storage::wal) and replayed by crash recovery.
//! Per-op results are [`MutationOutcome`]s: rejected operations (a
//! duplicate insert, a delete of a missing id) report typed outcomes
//! instead of silently succeeding, and because the outcome is a pure
//! function of the pre-state and the batch, replaying the log
//! reproduces them exactly.

use sj_geom::codec::{decode_record, encode_record, encoded_len};
use sj_geom::{Bounded, Geometry, Rect};
use sj_storage::StorageError;

/// Which operand relation a mutation or SELECT targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    R,
    S,
}

impl Side {
    /// Stable name, used in traces and cache keys.
    pub fn name(self) -> &'static str {
        match self {
            Side::R => "r",
            Side::S => "s",
        }
    }
}

/// One typed write against a relation side. Generic over the stored
/// value so the service (geometries) and `sj-rel` (decoded tuples) share
/// the shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation<G = Geometry> {
    /// Add a new tuple; rejected with [`MutationOutcome::DuplicateId`]
    /// if the id is already live.
    Insert {
        /// Tuple id, unique within its side.
        id: u64,
        /// The stored value.
        value: G,
    },
    /// Remove a tuple; rejected with [`MutationOutcome::MissingId`] if
    /// the id is not live.
    Delete {
        /// Id of the tuple to remove.
        id: u64,
    },
    /// Insert-or-replace: replaces in place when the id is live,
    /// inserts otherwise. Never rejected for presence reasons.
    Upsert {
        /// Tuple id.
        id: u64,
        /// The new stored value.
        value: G,
    },
}

impl<G> Mutation<G> {
    /// The id this mutation targets.
    pub fn id(&self) -> u64 {
        match self {
            Mutation::Insert { id, .. } | Mutation::Delete { id } | Mutation::Upsert { id, .. } => {
                *id
            }
        }
    }
}

/// An ordered, atomically-committed list of mutations. Application
/// order is batch order; a later op observes the effects of earlier ops
/// in the same batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WriteBatch {
    /// The operations, in application order.
    pub ops: Vec<(Side, Mutation)>,
}

/// Wire tags of [`WriteBatch::encode`].
const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_UPSERT: u8 = 3;

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Appends an insert (builder style).
    pub fn insert(mut self, side: Side, id: u64, value: Geometry) -> Self {
        self.ops.push((side, Mutation::Insert { id, value }));
        self
    }

    /// Appends a delete (builder style).
    pub fn delete(mut self, side: Side, id: u64) -> Self {
        self.ops.push((side, Mutation::Delete { id }));
        self
    }

    /// Appends an upsert (builder style).
    pub fn upsert(mut self, side: Side, id: u64, value: Geometry) -> Self {
        self.ops.push((side, Mutation::Upsert { id, value }));
        self
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Canonical byte encoding — the WAL redo-record payload. Each
    /// geometry is encoded at its tight [`encoded_len`], so the payload
    /// carries no fixed-record padding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for (side, op) in &self.ops {
            out.push(match side {
                Side::R => 0,
                Side::S => 1,
            });
            match op {
                Mutation::Insert { id, value } => {
                    out.push(TAG_INSERT);
                    push_geometry(&mut out, *id, value);
                }
                Mutation::Delete { id } => {
                    out.push(TAG_DELETE);
                    out.extend_from_slice(&id.to_le_bytes());
                }
                Mutation::Upsert { id, value } => {
                    out.push(TAG_UPSERT);
                    push_geometry(&mut out, *id, value);
                }
            }
        }
        out
    }

    /// Decodes a payload produced by [`encode`](Self::encode). Malformed
    /// bytes are a typed [`StorageError::WalCorrupt`] — a checksummed
    /// WAL record that fails to decode means the history cannot be
    /// trusted, so replay fail-stops.
    pub fn decode(bytes: &[u8]) -> Result<WriteBatch, StorageError> {
        let corrupt =
            |offset: usize, reason: &'static str| StorageError::WalCorrupt { offset, reason };
        let count_bytes: [u8; 4] = bytes
            .get(..4)
            .and_then(|b| b.try_into().ok())
            .ok_or_else(|| corrupt(0, "batch payload shorter than its header"))?;
        let count = u32::from_le_bytes(count_bytes) as usize;
        let mut pos = 4usize;
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let &side_byte = bytes
                .get(pos)
                .ok_or_else(|| corrupt(pos, "truncated mutation side"))?;
            let side = match side_byte {
                0 => Side::R,
                1 => Side::S,
                _ => return Err(corrupt(pos, "unknown mutation side")),
            };
            let &tag = bytes
                .get(pos + 1)
                .ok_or_else(|| corrupt(pos, "truncated mutation tag"))?;
            pos += 2;
            let op = match tag {
                TAG_DELETE => {
                    let id_bytes: [u8; 8] = bytes
                        .get(pos..pos + 8)
                        .and_then(|b| b.try_into().ok())
                        .ok_or_else(|| corrupt(pos, "truncated delete id"))?;
                    pos += 8;
                    Mutation::Delete {
                        id: u64::from_le_bytes(id_bytes),
                    }
                }
                TAG_INSERT | TAG_UPSERT => {
                    let (id, value, read) = read_geometry(bytes, pos)?;
                    pos += read;
                    if tag == TAG_INSERT {
                        Mutation::Insert { id, value }
                    } else {
                        Mutation::Upsert { id, value }
                    }
                }
                _ => return Err(corrupt(pos - 1, "unknown mutation tag")),
            };
            ops.push((side, op));
        }
        if pos != bytes.len() {
            return Err(corrupt(pos, "trailing bytes after last mutation"));
        }
        Ok(WriteBatch { ops })
    }
}

fn push_geometry(out: &mut Vec<u8>, id: u64, g: &Geometry) {
    let record = encode_record(id, g, encoded_len(g));
    out.extend_from_slice(&(record.len() as u32).to_le_bytes());
    out.extend_from_slice(&record);
}

fn read_geometry(bytes: &[u8], pos: usize) -> Result<(u64, Geometry, usize), StorageError> {
    let len_bytes: [u8; 4] = bytes
        .get(pos..pos + 4)
        .and_then(|b| b.try_into().ok())
        .ok_or(StorageError::WalCorrupt {
            offset: pos,
            reason: "truncated geometry length",
        })?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    let record = bytes
        .get(pos + 4..pos + 4 + len)
        .ok_or(StorageError::WalCorrupt {
            offset: pos,
            reason: "truncated geometry record",
        })?;
    let (id, value) = decode_record(record);
    Ok((id, value, 4 + len))
}

/// The per-operation result of applying a [`WriteBatch`]. Outcomes are
/// deterministic in the pre-state and the batch, so WAL replay
/// reproduces them exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationOutcome {
    /// A new tuple was added.
    Inserted,
    /// A live tuple was removed.
    Deleted,
    /// An upsert ran; `replaced` tells whether it overwrote a live
    /// tuple or fell through to an insert.
    Upserted {
        /// True when the id was live and its value was replaced.
        replaced: bool,
    },
    /// Insert rejected: the id is already live.
    DuplicateId,
    /// Delete rejected: the id is not live.
    MissingId,
    /// Insert/upsert rejected: the encoded geometry exceeds the
    /// relation's fixed record size.
    TooLarge,
}

impl MutationOutcome {
    /// True when the operation changed state.
    pub fn applied(&self) -> bool {
        matches!(
            self,
            MutationOutcome::Inserted | MutationOutcome::Deleted | MutationOutcome::Upserted { .. }
        )
    }
}

/// How the service applies a committed batch to the data snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApplyMode {
    /// Touch only the pages the batch dirties: incremental relation
    /// edits plus incremental R-tree insert/delete with condensation.
    #[default]
    Incremental,
    /// The pre-redesign behavior (full scan + bulk rebuild of both
    /// trees, blanket cache purge) — kept as the bench baseline.
    Rebuild,
}

/// Union MBR of the tuples a committed batch touched, per side — the
/// fine-grained cache-invalidation footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TouchedRegions {
    /// Union MBR of touched `R` tuples (old and new extents).
    pub r: Option<Rect>,
    /// Union MBR of touched `S` tuples (old and new extents).
    pub s: Option<Rect>,
}

impl TouchedRegions {
    /// Grows the side's region to cover `rect`.
    pub fn touch(&mut self, side: Side, rect: &Rect) {
        let slot = match side {
            Side::R => &mut self.r,
            Side::S => &mut self.s,
        };
        *slot = Some(match slot {
            Some(r) => r.union(rect),
            None => *rect,
        });
    }

    /// Grows the side's region to cover a geometry's MBR.
    pub fn touch_geometry(&mut self, side: Side, g: &Geometry) {
        self.touch(side, &g.mbr());
    }

    /// The side's touched region, if any tuple there was touched.
    pub fn of(&self, side: Side) -> Option<&Rect> {
        match side {
            Side::R => self.r.as_ref(),
            Side::S => self.s.as_ref(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geom::Point;

    fn point(x: f64, y: f64) -> Geometry {
        Geometry::Point(Point::new(x, y))
    }

    #[test]
    fn encode_decode_round_trips() {
        let batch = WriteBatch::new()
            .insert(Side::R, 7, point(1.0, 2.0))
            .delete(Side::S, 9)
            .upsert(Side::S, 11, point(-3.5, 4.25))
            .insert(
                Side::S,
                12,
                Geometry::Rect(Rect::from_bounds(0.0, 0.0, 5.0, 5.0)),
            );
        let decoded = WriteBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded, batch);
        assert_eq!(decoded.len(), 4);
    }

    #[test]
    fn empty_batch_round_trips() {
        let batch = WriteBatch::new();
        assert!(batch.is_empty());
        assert_eq!(WriteBatch::decode(&batch.encode()).unwrap(), batch);
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        let good = WriteBatch::new()
            .insert(Side::R, 1, point(0.0, 0.0))
            .encode();
        for bad in [
            &good[..2],               // truncated header
            &good[..good.len() - 1],  // truncated record
            &good[..good.len() - 10], // truncated geometry
        ] {
            assert!(
                matches!(
                    WriteBatch::decode(bad),
                    Err(StorageError::WalCorrupt { .. })
                ),
                "len {}",
                bad.len()
            );
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            WriteBatch::decode(&trailing),
            Err(StorageError::WalCorrupt {
                reason: "trailing bytes after last mutation",
                ..
            })
        ));
        let mut bad_side = good.clone();
        bad_side[4] = 9;
        assert!(matches!(
            WriteBatch::decode(&bad_side),
            Err(StorageError::WalCorrupt {
                reason: "unknown mutation side",
                ..
            })
        ));
    }

    #[test]
    fn touched_regions_union_per_side() {
        let mut t = TouchedRegions::default();
        assert!(t.of(Side::R).is_none());
        t.touch_geometry(Side::R, &point(1.0, 1.0));
        t.touch_geometry(Side::R, &point(5.0, -2.0));
        let r = *t.of(Side::R).unwrap();
        assert_eq!(r, Rect::from_bounds(1.0, -2.0, 5.0, 1.0));
        assert!(t.of(Side::S).is_none());
    }

    #[test]
    fn outcome_applied_classification() {
        assert!(MutationOutcome::Inserted.applied());
        assert!(MutationOutcome::Deleted.applied());
        assert!(MutationOutcome::Upserted { replaced: true }.applied());
        assert!(!MutationOutcome::DuplicateId.applied());
        assert!(!MutationOutcome::MissingId.applied());
        assert!(!MutationOutcome::TooLarge.applied());
    }
}
