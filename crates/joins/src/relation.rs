//! Storage-backed spatial relations: `(id, Geometry)` tuples serialized
//! into fixed-size records on a heap file, optionally paired with a
//! compressed (codec v2) sidecar file whose quantized records the margin
//! refinement path reads instead of the exact geometry.

use std::collections::HashMap;

use sj_geom::codec;
use sj_geom::{Geometry, QGeometry};
use sj_storage::{BufferPool, HeapFile, Layout, StorageError};

use crate::stats::ExecStats;

/// Maps a codec failure on bytes that came back from a page onto the
/// storage-level corruption error for that page.
fn corrupt(file: &HeapFile, slot: usize) -> StorageError {
    StorageError::PageCorrupt {
        page: file.rid(slot).page,
    }
}

/// A relation with one spatial attribute, stored on disk as `v`-byte
/// records (the model's tuple size). An in-memory directory maps tuple ids
/// to logical positions; all *data* access goes through the buffer pool
/// and is charged I/O.
///
/// Positions are dense and **order-preserving** under mutation: a delete
/// closes the position gap without reordering survivors (so a scan of
/// the mutated relation yields exactly the tuple sequence a from-scratch
/// rebuild of the same logical contents would). The heap file itself is
/// append-only — deletes tombstone their page slot and `slots` skips
/// them — so `slots` stays ascending and sequential scans stay
/// page-monotone.
#[derive(Debug, Clone)]
pub struct StoredRelation {
    file: HeapFile,
    /// Compressed sidecar: codec-v2 records of the same tuples, one
    /// sidecar slot per main-file slot (mirrored 1:1 through every
    /// mutation). Margin refinement reads this file; the exact `file` is
    /// touched only on `MustDecode`.
    quant: Option<HeapFile>,
    ids: Vec<u64>,
    /// `slots[i]` = file logical index backing position `i` (ascending).
    slots: Vec<usize>,
    pos_of: HashMap<u64, usize>,
}

impl StoredRelation {
    /// Builds the relation, serializing each tuple into a `record_size`-
    /// byte record placed per `layout`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate ids or geometries that do not fit the record
    /// size.
    pub fn build(
        pool: &mut BufferPool,
        tuples: &[(u64, Geometry)],
        record_size: usize,
        layout: Layout,
    ) -> Self {
        let ids: Vec<u64> = tuples.iter().map(|(id, _)| *id).collect();
        let mut pos_of = HashMap::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            let prev = pos_of.insert(id, i);
            assert!(prev.is_none(), "duplicate tuple id {id}");
        }
        let file = HeapFile::bulk_load_with(pool, record_size, tuples.len(), layout, |i| {
            codec::encode_record(tuples[i].0, &tuples[i].1, record_size)
        });
        let slots = (0..ids.len()).collect();
        StoredRelation {
            file,
            quant: None,
            ids,
            slots,
            pos_of,
        }
    }

    /// Builds the relation **with a compressed sidecar**: the exact
    /// records go to the main file as in [`StoredRelation::build`], and a
    /// second heap file stores every tuple's codec-v2 frame (quantized
    /// vertices + exact MBR + ε_q) at `quant_record_size` bytes per
    /// record. The sidecar mirrors the main file slot-for-slot.
    ///
    /// # Panics
    ///
    /// Panics on duplicate ids or geometries that do not fit either
    /// record size.
    pub fn build_compressed(
        pool: &mut BufferPool,
        tuples: &[(u64, Geometry)],
        record_size: usize,
        quant_record_size: usize,
        layout: Layout,
    ) -> Self {
        let mut rel = Self::build(pool, tuples, record_size, layout);
        let quant = HeapFile::bulk_load_with(pool, quant_record_size, tuples.len(), layout, |i| {
            codec::encode_qrecord(tuples[i].0, &tuples[i].1, quant_record_size)
        });
        rel.quant = Some(quant);
        rel
    }

    /// The smallest sidecar record size that fits every tuple in
    /// `tuples` (callers typically pass this to
    /// [`StoredRelation::build_compressed`]).
    pub fn quant_record_size_for(tuples: &[(u64, Geometry)]) -> usize {
        tuples
            .iter()
            .map(|(_, g)| codec::encoded_qlen(g))
            .max()
            .unwrap_or(codec::QHEADER_LEN)
    }

    /// True when the relation carries a compressed sidecar, i.e. the
    /// margin refinement path is available.
    #[inline]
    pub fn is_compressed(&self) -> bool {
        self.quant.is_some()
    }

    /// The sidecar heap file, if the relation is compressed (catalog
    /// serialization reads it through here).
    pub fn quant_file(&self) -> Option<&HeapFile> {
        self.quant.as_ref()
    }

    /// Attaches a reloaded sidecar file (catalog deserialization). The
    /// sidecar must mirror the main file's slot directory.
    ///
    /// # Panics
    ///
    /// Panics if the sidecar directory is shorter than the main file's.
    pub fn attach_quant(&mut self, quant: HeapFile) {
        assert!(
            quant.len() >= self.file.len(),
            "sidecar directory shorter than the main file"
        );
        self.quant = Some(quant);
    }

    /// Reads the quantized record at logical position `i` through the
    /// pool (charged against the *sidecar* pages). Corrupt bytes surface
    /// as [`StorageError::PageCorrupt`] on the sidecar page.
    ///
    /// # Panics
    ///
    /// Panics if the relation has no sidecar — callers must check
    /// [`StoredRelation::is_compressed`] first.
    pub fn try_read_quant_at(
        &self,
        pool: &mut BufferPool,
        i: usize,
    ) -> Result<(u64, QGeometry), StorageError> {
        let quant = self.quant.as_ref().expect("relation has no sidecar");
        let slot = self.slots[i];
        let bytes = pool.try_read_record(quant, quant.rid(slot))?;
        codec::try_decode_qrecord(&bytes).map_err(|_| corrupt(quant, slot))
    }

    /// Number of tuples (the model's `N`).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Pages occupied (the model's `⌈N/m⌉`).
    pub fn page_count(&self) -> usize {
        self.file.page_count()
    }

    /// Tuples per page (the model's `m`).
    pub fn tuples_per_page(&self) -> usize {
        self.file.records_per_page()
    }

    /// All tuple ids in logical order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Reads the tuple at logical position `i` through the pool
    /// (charged), or the I/O fault that prevented it.
    pub fn try_read_at(
        &self,
        pool: &mut BufferPool,
        i: usize,
    ) -> Result<(u64, Geometry), StorageError> {
        let slot = self.slots[i];
        let bytes = pool.try_read_record(&self.file, self.file.rid(slot))?;
        codec::try_decode_record(&bytes).map_err(|_| corrupt(&self.file, slot))
    }

    /// Reads the tuple at logical position `i` through the pool (charged).
    pub fn read_at(&self, pool: &mut BufferPool, i: usize) -> (u64, Geometry) {
        self.try_read_at(pool, i)
            .unwrap_or_else(|e| panic!("relation read failed: {e}")) // PANIC-OK: infallible wrapper
    }

    /// Reads a tuple by id through the pool (charged), or the I/O fault
    /// that prevented it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the relation — an unknown id is a logic
    /// error, not a storage fault.
    pub fn try_read_by_id(
        &self,
        pool: &mut BufferPool,
        id: u64,
    ) -> Result<(u64, Geometry), StorageError> {
        let &i = self
            .pos_of
            .get(&id)
            .unwrap_or_else(|| panic!("unknown tuple id {id}"));
        self.try_read_at(pool, i)
    }

    /// Reads a tuple by id through the pool (charged).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the relation.
    pub fn read_by_id(&self, pool: &mut BufferPool, id: u64) -> (u64, Geometry) {
        let &i = self
            .pos_of
            .get(&id)
            .unwrap_or_else(|| panic!("unknown tuple id {id}"));
        self.read_at(pool, i)
    }

    /// Full sequential scan in **position order**, decoding every tuple,
    /// or the first I/O fault. `slots` is ascending, so the walk is
    /// page-monotone and costs `page_count()` physical reads on a cold
    /// pool of at least one page.
    pub fn try_scan(&self, pool: &mut BufferPool) -> Result<Vec<(u64, Geometry)>, StorageError> {
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            out.push(self.try_read_at(pool, i)?);
        }
        Ok(out)
    }

    /// Full sequential scan in position order, decoding every tuple.
    /// Costs `page_count()` physical reads on a cold pool.
    pub fn scan(&self, pool: &mut BufferPool) -> Vec<(u64, Geometry)> {
        self.try_scan(pool)
            .unwrap_or_else(|e| panic!("relation scan failed: {e}")) // PANIC-OK: infallible wrapper
    }

    /// Decomposes into raw parts for catalog serialization. The slot
    /// list matters once deletes have run: surviving tuples keep their
    /// original file slots, so positions are no longer the identity.
    pub fn to_parts(&self) -> (&HeapFile, &[u64], &[usize]) {
        (&self.file, &self.ids, &self.slots)
    }

    /// Reassembles a relation from a reloaded heap file, its id list,
    /// and the file slot each position occupies.
    pub fn from_parts(file: HeapFile, ids: Vec<u64>, slots: Vec<usize>) -> Self {
        assert!(ids.len() == slots.len(), "id list must match the slot list");
        assert!(
            slots.iter().all(|&s| s < file.len()),
            "slot beyond the file directory"
        );
        let mut pos_of = HashMap::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            let prev = pos_of.insert(id, i);
            assert!(prev.is_none(), "duplicate tuple id {id}");
        }
        StoredRelation {
            file,
            quant: None,
            ids,
            slots,
            pos_of,
        }
    }

    /// Appends one tuple (used by maintenance-cost experiments).
    pub fn append(&mut self, pool: &mut BufferPool, id: u64, g: &Geometry) -> ExecStats {
        let before = pool.stats();
        self.try_insert(pool, id, g)
            .unwrap_or_else(|e| panic!("relation append failed: {e}")); // PANIC-OK: infallible wrapper
        let mut stats = ExecStats::default();
        stats.add_io(pool.stats().since(&before));
        stats
    }

    /// Appends one tuple at the last position, or the I/O fault that
    /// prevented it (the relation is unchanged on error).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate id or an oversized geometry — logic errors
    /// the caller must screen, not storage faults.
    pub fn try_insert(
        &mut self,
        pool: &mut BufferPool,
        id: u64,
        g: &Geometry,
    ) -> Result<(), StorageError> {
        assert!(!self.pos_of.contains_key(&id), "duplicate tuple id {id}");
        let record = codec::encode_record(id, g, self.file.record_size());
        let slot = self.file.try_append(pool, record)?;
        self.pos_of.insert(id, self.ids.len());
        self.ids.push(id);
        self.slots.push(slot);
        // Mirror into the sidecar. The logical insert has already
        // succeeded; if the sidecar append faults, drop the sidecar
        // (degrade to the exact path) rather than fail the mutation or
        // leave the two files out of step.
        if let Some(quant) = self.quant.as_mut() {
            if codec::encoded_qlen(g) > quant.record_size() {
                // The v2 frame does not fit the sidecar's fixed record
                // size: degrade to the exact path instead of panicking.
                self.quant = None;
                return Ok(());
            }
            let qrec = codec::encode_qrecord(id, g, quant.record_size());
            match quant.try_append(pool, qrec) {
                Ok(qslot) => debug_assert_eq!(qslot, slot, "sidecar slot drift"),
                Err(_) => self.quant = None,
            }
        }
        Ok(())
    }

    /// Deletes the tuple with `id`, preserving the order of survivors,
    /// and returns its former position. The page slot is physically
    /// cleared (one charged write); the file index is abandoned.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the relation.
    pub fn try_delete(&mut self, pool: &mut BufferPool, id: u64) -> Result<usize, StorageError> {
        let &pos = self
            .pos_of
            .get(&id)
            .unwrap_or_else(|| panic!("unknown tuple id {id}"));
        let rid = self.file.rid(self.slots[pos]);
        pool.try_update(rid.page, |p| p.remove(rid.slot))?;
        self.pos_of.remove(&id);
        self.ids.remove(pos);
        self.slots.remove(pos);
        for (i, &later) in self.ids.iter().enumerate().skip(pos) {
            self.pos_of.insert(later, i);
        }
        // The sidecar record at the dead slot is intentionally left in
        // place: `slots` no longer references it, so it is unreachable —
        // exactly like the abandoned main-file index entry above.
        Ok(pos)
    }

    /// Overwrites the geometry of the tuple with `id` in place (one
    /// charged write); its position is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the relation or the geometry does not
    /// fit the record size.
    pub fn try_replace(
        &mut self,
        pool: &mut BufferPool,
        id: u64,
        g: &Geometry,
    ) -> Result<(), StorageError> {
        let &pos = self
            .pos_of
            .get(&id)
            .unwrap_or_else(|| panic!("unknown tuple id {id}"));
        let record = codec::encode_record(id, g, self.file.record_size());
        let rid = self.file.rid(self.slots[pos]);
        pool.try_update(rid.page, |p| p.update(rid.slot, record))?;
        // Keep the sidecar in step; on a sidecar fault, degrade to the
        // exact path rather than serve a stale quantized record.
        if let Some(quant) = self.quant.as_ref() {
            if codec::encoded_qlen(g) > quant.record_size() {
                // Oversized v2 frame: degrade rather than panic.
                self.quant = None;
                return Ok(());
            }
            let qrec = codec::encode_qrecord(id, g, quant.record_size());
            let qrid = quant.rid(self.slots[pos]);
            if pool
                .try_update(qrid.page, |p| p.update(qrid.slot, qrec))
                .is_err()
            {
                self.quant = None;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geom::{Point, Rect};
    use sj_storage::{Disk, DiskConfig};

    fn pool() -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), 32)
    }

    fn tuples(n: usize) -> Vec<(u64, Geometry)> {
        (0..n)
            .map(|i| {
                (
                    i as u64,
                    Geometry::Point(Point::new(i as f64, (i * 2) as f64)),
                )
            })
            .collect()
    }

    #[test]
    fn build_and_read_back() {
        let mut p = pool();
        let rel = StoredRelation::build(&mut p, &tuples(17), 300, Layout::Clustered);
        assert_eq!(rel.len(), 17);
        assert_eq!(rel.tuples_per_page(), 5);
        assert_eq!(rel.page_count(), 4);
        let (id, g) = rel.read_by_id(&mut p, 9);
        assert_eq!(id, 9);
        assert_eq!(g, Geometry::Point(Point::new(9.0, 18.0)));
    }

    #[test]
    fn scan_costs_one_read_per_page() {
        let mut p = pool();
        let rel = StoredRelation::build(&mut p, &tuples(23), 300, Layout::Unclustered { seed: 5 });
        p.clear();
        p.reset_stats();
        let rows = rel.scan(&mut p);
        assert_eq!(rows.len(), 23);
        assert_eq!(p.stats().physical_reads as usize, rel.page_count());
        // Every tuple decodes to its original value.
        for (id, g) in rows {
            assert_eq!(g, Geometry::Point(Point::new(id as f64, (id * 2) as f64)));
        }
    }

    #[test]
    fn append_grows_relation() {
        let mut p = pool();
        let mut rel = StoredRelation::build(&mut p, &tuples(5), 300, Layout::Clustered);
        let g = Geometry::Rect(Rect::from_bounds(0.0, 0.0, 1.0, 1.0));
        let stats = rel.append(&mut p, 100, &g);
        assert!(stats.physical_writes >= 1);
        assert_eq!(rel.len(), 6);
        assert_eq!(rel.read_by_id(&mut p, 100).1, g);
    }

    #[test]
    fn delete_preserves_survivor_order_and_charges_one_write() {
        let mut p = pool();
        let mut rel = StoredRelation::build(&mut p, &tuples(12), 300, Layout::Clustered);
        let before = p.stats();
        let pos = rel.try_delete(&mut p, 4).unwrap();
        assert_eq!(pos, 4);
        assert_eq!(p.stats().since(&before).physical_writes, 1);
        assert_eq!(rel.len(), 11);
        // Survivors keep their relative order: positions close the gap.
        let got: Vec<u64> = rel.scan(&mut p).into_iter().map(|(id, _)| id).collect();
        let want: Vec<u64> = (0..12).filter(|&i| i != 4).collect();
        assert_eq!(got, want);
        // Position-order reads agree with id-directed reads.
        assert_eq!(rel.read_at(&mut p, 4).0, 5);
        assert_eq!(rel.read_by_id(&mut p, 11).0, 11);
    }

    #[test]
    fn insert_after_delete_appends_at_the_end() {
        let mut p = pool();
        let mut rel = StoredRelation::build(&mut p, &tuples(6), 300, Layout::Clustered);
        rel.try_delete(&mut p, 2).unwrap();
        let g = Geometry::Point(Point::new(9.0, 9.0));
        rel.try_insert(&mut p, 50, &g).unwrap();
        let got: Vec<u64> = rel.scan(&mut p).into_iter().map(|(id, _)| id).collect();
        assert_eq!(got, vec![0, 1, 3, 4, 5, 50]);
        assert_eq!(rel.read_by_id(&mut p, 50).1, g);
    }

    #[test]
    fn replace_overwrites_in_place() {
        let mut p = pool();
        let mut rel = StoredRelation::build(&mut p, &tuples(7), 300, Layout::Clustered);
        let g = Geometry::Rect(Rect::from_bounds(1.0, 1.0, 2.0, 2.0));
        let before = p.stats();
        rel.try_replace(&mut p, 3, &g).unwrap();
        assert_eq!(p.stats().since(&before).physical_writes, 1);
        assert_eq!(rel.len(), 7);
        assert_eq!(rel.read_by_id(&mut p, 3).1, g);
        assert_eq!(rel.read_at(&mut p, 3).0, 3, "position unchanged");
    }

    #[test]
    #[should_panic(expected = "unknown tuple id")]
    fn delete_of_missing_id_panics() {
        let mut p = pool();
        let mut rel = StoredRelation::build(&mut p, &tuples(3), 300, Layout::Clustered);
        let _ = rel.try_delete(&mut p, 99);
    }

    #[test]
    #[should_panic(expected = "duplicate tuple id")]
    fn duplicate_ids_rejected() {
        let mut p = pool();
        let mut ts = tuples(3);
        ts.push((1, Geometry::Point(Point::new(0.0, 0.0))));
        let _ = StoredRelation::build(&mut p, &ts, 300, Layout::Clustered);
    }

    fn poly_tuples(n: usize) -> Vec<(u64, Geometry)> {
        (0..n)
            .map(|i| {
                let c = Point::new(i as f64 * 4.0, (i % 3) as f64 * 4.0);
                (
                    i as u64,
                    Geometry::Polygon(sj_geom::Polygon::regular(c, 1.5, 8)),
                )
            })
            .collect()
    }

    #[test]
    fn compressed_build_reads_quant_and_exact() {
        let mut p = pool();
        let ts = poly_tuples(9);
        let qsize = StoredRelation::quant_record_size_for(&ts);
        assert!(qsize < 300, "v2 frames must be smaller");
        let rel = StoredRelation::build_compressed(&mut p, &ts, 300, qsize, Layout::Clustered);
        assert!(rel.is_compressed());
        for i in 0..rel.len() {
            let (qid, q) = rel.try_read_quant_at(&mut p, i).unwrap();
            let (id, g) = rel.try_read_at(&mut p, i).unwrap();
            assert_eq!(qid, id);
            assert_eq!(q, sj_geom::QGeometry::quantize(&g));
        }
    }

    #[test]
    fn compressed_mutations_keep_sidecar_in_step() {
        let mut p = pool();
        let ts = poly_tuples(6);
        let qsize = StoredRelation::quant_record_size_for(&ts);
        let mut rel = StoredRelation::build_compressed(&mut p, &ts, 300, qsize, Layout::Clustered);
        // Insert, delete, replace — the sidecar must track all three.
        let g = Geometry::Polygon(sj_geom::Polygon::regular(Point::new(50.0, 0.0), 1.0, 6));
        rel.try_insert(&mut p, 100, &g).unwrap();
        rel.try_delete(&mut p, 2).unwrap();
        let g2 = Geometry::Polygon(sj_geom::Polygon::regular(Point::new(9.0, 9.0), 1.25, 7));
        rel.try_replace(&mut p, 4, &g2).unwrap();
        assert!(rel.is_compressed());
        for i in 0..rel.len() {
            let (qid, q) = rel.try_read_quant_at(&mut p, i).unwrap();
            let (id, exact) = rel.try_read_at(&mut p, i).unwrap();
            assert_eq!(qid, id);
            assert_eq!(q, sj_geom::QGeometry::quantize(&exact));
        }
    }

    #[test]
    fn corrupt_record_surfaces_as_page_corrupt() {
        let mut p = pool();
        let rel = StoredRelation::build(&mut p, &tuples(4), 300, Layout::Clustered);
        // Smash the geometry tag of record 1 in place through the pool.
        let rid = rel.file.rid(rel.slots[1]);
        p.try_update(rid.page, |pg| {
            let mut bytes = pg.get(rid.slot).expect("live record").to_vec();
            bytes[8] = 0x7f; // unknown tag
            pg.update(rid.slot, bytes);
        })
        .unwrap();
        match rel.try_read_at(&mut p, 1) {
            Err(StorageError::PageCorrupt { page }) => assert_eq!(page, rid.page),
            other => panic!("expected PageCorrupt, got {other:?}"),
        }
    }
}
