//! Storage-backed spatial relations: `(id, Geometry)` tuples serialized
//! into fixed-size records on a heap file.

use std::collections::HashMap;

use sj_geom::codec;
use sj_geom::Geometry;
use sj_storage::{BufferPool, HeapFile, Layout, StorageError};

use crate::stats::ExecStats;

/// A relation with one spatial attribute, stored on disk as `v`-byte
/// records (the model's tuple size). An in-memory directory maps tuple ids
/// to logical positions; all *data* access goes through the buffer pool
/// and is charged I/O.
#[derive(Debug)]
pub struct StoredRelation {
    file: HeapFile,
    ids: Vec<u64>,
    pos_of: HashMap<u64, usize>,
}

impl StoredRelation {
    /// Builds the relation, serializing each tuple into a `record_size`-
    /// byte record placed per `layout`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate ids or geometries that do not fit the record
    /// size.
    pub fn build(
        pool: &mut BufferPool,
        tuples: &[(u64, Geometry)],
        record_size: usize,
        layout: Layout,
    ) -> Self {
        let ids: Vec<u64> = tuples.iter().map(|(id, _)| *id).collect();
        let mut pos_of = HashMap::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            let prev = pos_of.insert(id, i);
            assert!(prev.is_none(), "duplicate tuple id {id}");
        }
        let file = HeapFile::bulk_load_with(pool, record_size, tuples.len(), layout, |i| {
            codec::encode_record(tuples[i].0, &tuples[i].1, record_size)
        });
        StoredRelation { file, ids, pos_of }
    }

    /// Number of tuples (the model's `N`).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Pages occupied (the model's `⌈N/m⌉`).
    pub fn page_count(&self) -> usize {
        self.file.page_count()
    }

    /// Tuples per page (the model's `m`).
    pub fn tuples_per_page(&self) -> usize {
        self.file.records_per_page()
    }

    /// All tuple ids in logical order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Reads the tuple at logical position `i` through the pool
    /// (charged), or the I/O fault that prevented it.
    pub fn try_read_at(
        &self,
        pool: &mut BufferPool,
        i: usize,
    ) -> Result<(u64, Geometry), StorageError> {
        let bytes = pool.try_read_record(&self.file, self.file.rid(i))?;
        Ok(codec::decode_record(&bytes))
    }

    /// Reads the tuple at logical position `i` through the pool (charged).
    pub fn read_at(&self, pool: &mut BufferPool, i: usize) -> (u64, Geometry) {
        let bytes = pool.read_record(&self.file, self.file.rid(i));
        codec::decode_record(&bytes)
    }

    /// Reads a tuple by id through the pool (charged), or the I/O fault
    /// that prevented it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the relation — an unknown id is a logic
    /// error, not a storage fault.
    pub fn try_read_by_id(
        &self,
        pool: &mut BufferPool,
        id: u64,
    ) -> Result<(u64, Geometry), StorageError> {
        let &i = self
            .pos_of
            .get(&id)
            .unwrap_or_else(|| panic!("unknown tuple id {id}"));
        self.try_read_at(pool, i)
    }

    /// Reads a tuple by id through the pool (charged).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the relation.
    pub fn read_by_id(&self, pool: &mut BufferPool, id: u64) -> (u64, Geometry) {
        let &i = self
            .pos_of
            .get(&id)
            .unwrap_or_else(|| panic!("unknown tuple id {id}"));
        self.read_at(pool, i)
    }

    /// Full sequential scan, decoding every tuple, or the first I/O
    /// fault. Costs `page_count()` physical reads on a cold pool.
    pub fn try_scan(&self, pool: &mut BufferPool) -> Result<Vec<(u64, Geometry)>, StorageError> {
        Ok(self
            .file
            .try_scan(pool)?
            .into_iter()
            .map(|(_, bytes)| codec::decode_record(&bytes))
            .collect())
    }

    /// Full sequential scan, decoding every tuple. Costs `page_count()`
    /// physical reads on a cold pool.
    pub fn scan(&self, pool: &mut BufferPool) -> Vec<(u64, Geometry)> {
        self.file
            .scan(pool)
            .into_iter()
            .map(|(_, bytes)| codec::decode_record(&bytes))
            .collect()
    }

    /// Decomposes into raw parts for catalog serialization.
    pub fn to_parts(&self) -> (&HeapFile, &[u64]) {
        (&self.file, &self.ids)
    }

    /// Reassembles a relation from a reloaded heap file and its id list
    /// (logical order must match the file's directory).
    pub fn from_parts(file: HeapFile, ids: Vec<u64>) -> Self {
        assert!(
            ids.len() == file.len(),
            "id list must match the file length"
        );
        let mut pos_of = HashMap::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            let prev = pos_of.insert(id, i);
            assert!(prev.is_none(), "duplicate tuple id {id}");
        }
        StoredRelation { file, ids, pos_of }
    }

    /// Appends one tuple (used by maintenance-cost experiments).
    pub fn append(&mut self, pool: &mut BufferPool, id: u64, g: &Geometry) -> ExecStats {
        assert!(!self.pos_of.contains_key(&id), "duplicate tuple id {id}");
        let before = pool.stats();
        let record = codec::encode_record(id, g, self.file.record_size());
        self.file.append(pool, record);
        self.pos_of.insert(id, self.ids.len());
        self.ids.push(id);
        let mut stats = ExecStats::default();
        stats.add_io(pool.stats().since(&before));
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geom::{Point, Rect};
    use sj_storage::{Disk, DiskConfig};

    fn pool() -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), 32)
    }

    fn tuples(n: usize) -> Vec<(u64, Geometry)> {
        (0..n)
            .map(|i| {
                (
                    i as u64,
                    Geometry::Point(Point::new(i as f64, (i * 2) as f64)),
                )
            })
            .collect()
    }

    #[test]
    fn build_and_read_back() {
        let mut p = pool();
        let rel = StoredRelation::build(&mut p, &tuples(17), 300, Layout::Clustered);
        assert_eq!(rel.len(), 17);
        assert_eq!(rel.tuples_per_page(), 5);
        assert_eq!(rel.page_count(), 4);
        let (id, g) = rel.read_by_id(&mut p, 9);
        assert_eq!(id, 9);
        assert_eq!(g, Geometry::Point(Point::new(9.0, 18.0)));
    }

    #[test]
    fn scan_costs_one_read_per_page() {
        let mut p = pool();
        let rel = StoredRelation::build(&mut p, &tuples(23), 300, Layout::Unclustered { seed: 5 });
        p.clear();
        p.reset_stats();
        let rows = rel.scan(&mut p);
        assert_eq!(rows.len(), 23);
        assert_eq!(p.stats().physical_reads as usize, rel.page_count());
        // Every tuple decodes to its original value.
        for (id, g) in rows {
            assert_eq!(g, Geometry::Point(Point::new(id as f64, (id * 2) as f64)));
        }
    }

    #[test]
    fn append_grows_relation() {
        let mut p = pool();
        let mut rel = StoredRelation::build(&mut p, &tuples(5), 300, Layout::Clustered);
        let g = Geometry::Rect(Rect::from_bounds(0.0, 0.0, 1.0, 1.0));
        let stats = rel.append(&mut p, 100, &g);
        assert!(stats.physical_writes >= 1);
        assert_eq!(rel.len(), 6);
        assert_eq!(rel.read_by_id(&mut p, 100).1, g);
    }

    #[test]
    #[should_panic(expected = "duplicate tuple id")]
    fn duplicate_ids_rejected() {
        let mut p = pool();
        let mut ts = tuples(3);
        ts.push((1, Geometry::Point(Point::new(0.0, 0.0))));
        let _ = StoredRelation::build(&mut p, &ts, 300, Layout::Clustered);
    }
}
