//! Execution statistics in the cost model's units.

use sj_storage::IoStats;

/// Work performed by one executor run: the measured counterparts of the
/// model's `C_Θ`-priced comparisons and `C_IO`-priced page transfers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Physical page reads through the buffer pool.
    pub physical_reads: u64,
    /// Physical page writes.
    pub physical_writes: u64,
    /// Buffer-pool requests (hits + misses).
    pub logical_reads: u64,
    /// Exact θ-evaluations on geometries.
    pub theta_evals: u64,
    /// Conservative Θ-filter evaluations on MBRs.
    pub filter_evals: u64,
    /// Memory passes over the inner input (block-nested-loop style).
    pub passes: u64,
}

impl ExecStats {
    /// Folds a buffer-pool I/O delta into the counters.
    pub fn add_io(&mut self, delta: IoStats) {
        self.physical_reads += delta.physical_reads;
        self.physical_writes += delta.physical_writes;
        self.logical_reads += delta.logical_reads;
    }

    /// Total comparison work (the model prices θ and Θ identically).
    pub fn comparisons(&self) -> u64 {
        self.theta_evals + self.filter_evals
    }

    /// Total cost in model units given `C_Θ` and `C_IO` weights.
    pub fn cost(&self, c_theta: f64, c_io: f64) -> f64 {
        self.comparisons() as f64 * c_theta
            + (self.physical_reads + self.physical_writes) as f64 * c_io
    }

    /// Folds another counter set into this one (alias for `+=`, usable in
    /// iterator folds without importing the operator trait). This is how
    /// parallel executors combine per-worker stats into run totals.
    pub fn merge(&mut self, other: &ExecStats) {
        *self += *other;
    }
}

/// Component-wise accumulation, the merge operation for per-worker
/// counters in parallel executors.
impl std::ops::AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: ExecStats) {
        self.physical_reads += rhs.physical_reads;
        self.physical_writes += rhs.physical_writes;
        self.logical_reads += rhs.logical_reads;
        self.theta_evals += rhs.theta_evals;
        self.filter_evals += rhs.filter_evals;
        self.passes += rhs.passes;
    }
}

/// Result of a join executor: matching `(r_id, s_id)` pairs plus stats.
#[derive(Debug, Clone, Default)]
pub struct JoinRun {
    pub pairs: Vec<(u64, u64)>,
    pub stats: ExecStats,
}

/// Result of a selection executor: matching tuple ids plus stats.
#[derive(Debug, Clone, Default)]
pub struct SelectRun {
    pub matches: Vec<u64>,
    pub stats: ExecStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_weights_components() {
        let s = ExecStats {
            physical_reads: 3,
            physical_writes: 1,
            logical_reads: 10,
            theta_evals: 5,
            filter_evals: 7,
            passes: 1,
        };
        assert_eq!(s.comparisons(), 12);
        assert_eq!(s.cost(1.0, 1000.0), 12.0 + 4000.0);
    }

    #[test]
    fn add_assign_is_field_wise_sum() {
        let mut a = ExecStats {
            physical_reads: 1,
            physical_writes: 2,
            logical_reads: 3,
            theta_evals: 4,
            filter_evals: 5,
            passes: 6,
        };
        let b = ExecStats {
            physical_reads: 10,
            physical_writes: 20,
            logical_reads: 30,
            theta_evals: 40,
            filter_evals: 50,
            passes: 60,
        };
        a += b;
        assert_eq!(
            a,
            ExecStats {
                physical_reads: 11,
                physical_writes: 22,
                logical_reads: 33,
                theta_evals: 44,
                filter_evals: 55,
                passes: 66,
            }
        );
        let mut c = ExecStats::default();
        c.merge(&a);
        c.merge(&b);
        assert_eq!(c.theta_evals, 84);
        assert_eq!(c.comparisons(), 84 + 105);
    }

    #[test]
    fn add_io_accumulates() {
        let mut s = ExecStats::default();
        s.add_io(IoStats {
            physical_reads: 2,
            physical_writes: 1,
            logical_reads: 5,
        });
        s.add_io(IoStats {
            physical_reads: 1,
            physical_writes: 0,
            logical_reads: 2,
        });
        assert_eq!(s.physical_reads, 3);
        assert_eq!(s.physical_writes, 1);
        assert_eq!(s.logical_reads, 7);
    }
}
