//! Execution statistics in the cost model's units, plus the per-phase
//! breakdown ([`PhaseStats`]) recorded by instrumented executors.

use sj_obs::{Phase, PhaseTimer, TraceSink};
use sj_storage::IoStats;

/// Work performed by one executor run: the measured counterparts of the
/// model's `C_Θ`-priced comparisons and `C_IO`-priced page transfers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Physical page reads through the buffer pool.
    pub physical_reads: u64,
    /// Physical page writes.
    pub physical_writes: u64,
    /// Buffer-pool requests (hits + misses).
    pub logical_reads: u64,
    /// Exact θ-evaluations on geometries.
    pub theta_evals: u64,
    /// Conservative Θ-filter evaluations on MBRs.
    pub filter_evals: u64,
    /// Memory passes over the inner input (block-nested-loop style).
    pub passes: u64,
    /// Candidate pairs the margin test could not resolve: the exact
    /// geometry was decoded and θ evaluated on it. The *decode fraction*
    /// of a compressed run is `decoded_exact / theta_evals`.
    pub decoded_exact: u64,
    /// Candidate pairs the margin test answered definitely-true without
    /// decoding exact geometry.
    pub margin_hits: u64,
    /// Candidate pairs the margin test answered definitely-false without
    /// decoding exact geometry.
    pub margin_misses: u64,
}

impl ExecStats {
    /// Folds a buffer-pool I/O delta into the counters.
    pub fn add_io(&mut self, delta: IoStats) {
        self.physical_reads += delta.physical_reads;
        self.physical_writes += delta.physical_writes;
        self.logical_reads += delta.logical_reads;
    }

    /// Total comparison work (the model prices θ and Θ identically).
    pub fn comparisons(&self) -> u64 {
        self.theta_evals + self.filter_evals
    }

    /// Total cost in model units given `C_Θ` and `C_IO` weights.
    ///
    /// `passes` is deliberately **not** priced. The paper's §4.1 model
    /// charges exactly two resources — comparisons (`C_Θ`) and page
    /// transfers (`C_IO`). A block-nested-loop memory pass is not a
    /// third resource: its cost already materializes in these counters
    /// as the re-read of the inner relation (`physical_reads` grows by
    /// `pages(S)` per extra pass), so pricing `passes` separately would
    /// double-charge the rescan I/O. The counter exists purely as a
    /// diagnostic for *why* the I/O term grew (see the pinning test
    /// `extra_passes_are_free_in_model_units`).
    pub fn cost(&self, c_theta: f64, c_io: f64) -> f64 {
        self.comparisons() as f64 * c_theta
            + (self.physical_reads + self.physical_writes) as f64 * c_io
    }

    /// The counters as `(name, value)` pairs, the shape
    /// [`TraceSink::emit`] takes — used when emitting phase spans.
    pub fn counters(&self) -> [(&'static str, u64); 9] {
        [
            ("physical_reads", self.physical_reads),
            ("physical_writes", self.physical_writes),
            ("logical_reads", self.logical_reads),
            ("theta_evals", self.theta_evals),
            ("filter_evals", self.filter_evals),
            ("passes", self.passes),
            ("decoded_exact", self.decoded_exact),
            ("margin_hits", self.margin_hits),
            ("margin_misses", self.margin_misses),
        ]
    }

    /// True when every counter is zero (such deltas are dropped from
    /// [`PhaseStats`] so empty phases never appear in breakdowns).
    pub fn is_empty(&self) -> bool {
        *self == ExecStats::default()
    }

    /// Folds another counter set into this one (alias for `+=`, usable in
    /// iterator folds without importing the operator trait). This is how
    /// parallel executors combine per-worker stats into run totals.
    pub fn merge(&mut self, other: &ExecStats) {
        *self += *other;
    }
}

/// Component-wise accumulation, the merge operation for per-worker
/// counters in parallel executors.
impl std::ops::AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: ExecStats) {
        self.physical_reads += rhs.physical_reads;
        self.physical_writes += rhs.physical_writes;
        self.logical_reads += rhs.logical_reads;
        self.theta_evals += rhs.theta_evals;
        self.filter_evals += rhs.filter_evals;
        self.passes += rhs.passes;
        self.decoded_exact += rhs.decoded_exact;
        self.margin_hits += rhs.margin_hits;
        self.margin_misses += rhs.margin_misses;
    }
}

/// Per-phase breakdown of an executor run.
///
/// Instrumented executors attribute every counter they touch to exactly
/// one [`Phase`] via disjoint measurement windows, so the phase deltas
/// sum *exactly* to the run's [`ExecStats`] totals (enforced by
/// [`JoinRun::seal`], which recomputes the totals from the breakdown,
/// and asserted end-to-end by the bench smoke runs and the
/// `prop_phase_trace` suite).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStats {
    entries: Vec<(Phase, ExecStats)>,
}

impl PhaseStats {
    /// Fold a counter delta into a phase. All-zero deltas are dropped,
    /// so phases an executor never exercised don't clutter traces.
    pub fn record(&mut self, phase: Phase, delta: ExecStats) {
        if delta.is_empty() {
            return;
        }
        if let Some(entry) = self.entries.iter_mut().find(|(p, _)| *p == phase) {
            entry.1 += delta;
        } else {
            self.entries.push((phase, delta));
        }
    }

    /// The accumulated counters for one phase (zero if never recorded).
    pub fn get(&self, phase: Phase) -> ExecStats {
        self.entries
            .iter()
            .find(|(p, _)| *p == phase)
            .map_or_else(ExecStats::default, |(_, s)| *s)
    }

    /// Recorded phases in first-recording order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, &ExecStats)> + '_ {
        self.entries.iter().map(|(p, s)| (*p, s))
    }

    /// Sum of all phase deltas. [`JoinRun::seal`] assigns this to the
    /// run's totals, making "phases sum to totals" true by construction.
    pub fn total(&self) -> ExecStats {
        let mut acc = ExecStats::default();
        for (_, s) in &self.entries {
            acc += *s;
        }
        acc
    }

    /// Fold another breakdown into this one, phase-wise.
    pub fn merge(&mut self, other: &PhaseStats) {
        for (phase, delta) in other.iter() {
            self.record(phase, *delta);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Result of a join executor: matching `(r_id, s_id)` pairs plus stats
/// and their per-phase breakdown.
#[derive(Debug, Clone, Default)]
pub struct JoinRun {
    pub pairs: Vec<(u64, u64)>,
    pub stats: ExecStats,
    pub phases: PhaseStats,
}

impl JoinRun {
    /// Finish an instrumented run: recompute `stats` from the phase
    /// breakdown (so the two agree exactly) and emit one
    /// `<executor>/<phase>` trace span per recorded phase with that
    /// phase's wall-clock time and counter deltas.
    pub fn seal(&mut self, executor: &str, timer: &PhaseTimer, trace: &mut TraceSink) {
        self.stats = self.phases.total();
        if trace.is_enabled() {
            for (phase, delta) in self.phases.iter() {
                let span = format!("{executor}/{}", phase.name());
                trace.emit(&span, timer.elapsed_us(phase), &delta.counters());
            }
        }
    }
}

/// Result of a selection executor: matching tuple ids plus stats.
#[derive(Debug, Clone, Default)]
pub struct SelectRun {
    pub matches: Vec<u64>,
    pub stats: ExecStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_weights_components() {
        let s = ExecStats {
            physical_reads: 3,
            physical_writes: 1,
            logical_reads: 10,
            theta_evals: 5,
            filter_evals: 7,
            passes: 1,
            ..Default::default()
        };
        assert_eq!(s.comparisons(), 12);
        assert_eq!(s.cost(1.0, 1000.0), 12.0 + 4000.0);
    }

    #[test]
    fn add_assign_is_field_wise_sum() {
        let mut a = ExecStats {
            physical_reads: 1,
            physical_writes: 2,
            logical_reads: 3,
            theta_evals: 4,
            filter_evals: 5,
            passes: 6,
            decoded_exact: 7,
            margin_hits: 8,
            margin_misses: 9,
        };
        let b = ExecStats {
            physical_reads: 10,
            physical_writes: 20,
            logical_reads: 30,
            theta_evals: 40,
            filter_evals: 50,
            passes: 60,
            decoded_exact: 70,
            margin_hits: 80,
            margin_misses: 90,
        };
        a += b;
        assert_eq!(
            a,
            ExecStats {
                physical_reads: 11,
                physical_writes: 22,
                logical_reads: 33,
                theta_evals: 44,
                filter_evals: 55,
                passes: 66,
                decoded_exact: 77,
                margin_hits: 88,
                margin_misses: 99,
            }
        );
        let mut c = ExecStats::default();
        c.merge(&a);
        c.merge(&b);
        assert_eq!(c.theta_evals, 84);
        assert_eq!(c.comparisons(), 84 + 105);
    }

    #[test]
    fn extra_passes_are_free_in_model_units() {
        // §4.1 prices comparisons and page transfers only; a memory
        // pass shows up as rescan I/O, never as a separate charge.
        let one_pass = ExecStats {
            physical_reads: 40,
            theta_evals: 100,
            passes: 1,
            ..Default::default()
        };
        let many_passes = ExecStats {
            passes: 7,
            ..one_pass
        };
        assert_eq!(
            one_pass.cost(1.0, 1000.0),
            many_passes.cost(1.0, 1000.0),
            "passes must not be priced directly"
        );
        // ...while the rescan I/O a pass causes *is* priced:
        let rescanned = ExecStats {
            physical_reads: 80,
            ..many_passes
        };
        assert!(rescanned.cost(1.0, 1000.0) > many_passes.cost(1.0, 1000.0));
    }

    #[test]
    fn phase_deltas_sum_to_totals_and_seal_enforces_it() {
        let mut run = JoinRun::default();
        run.phases.record(
            Phase::Partition,
            ExecStats {
                physical_reads: 4,
                passes: 1,
                ..Default::default()
            },
        );
        run.phases.record(
            Phase::Refine,
            ExecStats {
                theta_evals: 9,
                physical_reads: 2,
                ..Default::default()
            },
        );
        // Empty deltas are dropped; repeated records merge.
        run.phases.record(Phase::Filter, ExecStats::default());
        run.phases.record(
            Phase::Refine,
            ExecStats {
                theta_evals: 1,
                ..Default::default()
            },
        );
        assert_eq!(run.phases.iter().count(), 2);

        let timer = PhaseTimer::new(false);
        let mut sink = TraceSink::vec();
        run.seal("demo", &timer, &mut sink);
        assert_eq!(run.stats, run.phases.total());
        assert_eq!(run.stats.physical_reads, 6);
        assert_eq!(run.stats.theta_evals, 10);
        assert_eq!(run.stats.passes, 1);

        let spans: Vec<&str> = sink.events().iter().map(|e| e.span.as_str()).collect();
        assert_eq!(spans, ["demo/partition", "demo/refine"]);
        assert!(sink.events()[1].counters.contains(&("theta_evals", 10)));
    }

    #[test]
    fn phase_merge_is_phase_wise() {
        let mut a = PhaseStats::default();
        a.record(
            Phase::Filter,
            ExecStats {
                filter_evals: 5,
                ..Default::default()
            },
        );
        let mut b = PhaseStats::default();
        b.record(
            Phase::Filter,
            ExecStats {
                filter_evals: 3,
                ..Default::default()
            },
        );
        b.record(
            Phase::IndexProbe,
            ExecStats {
                physical_reads: 2,
                ..Default::default()
            },
        );
        a.merge(&b);
        assert_eq!(a.get(Phase::Filter).filter_evals, 8);
        assert_eq!(a.get(Phase::IndexProbe).physical_reads, 2);
        assert_eq!(a.total().filter_evals, 8);
    }

    #[test]
    fn add_io_accumulates() {
        let mut s = ExecStats::default();
        s.add_io(IoStats {
            physical_reads: 2,
            physical_writes: 1,
            logical_reads: 5,
        });
        s.add_io(IoStats {
            physical_reads: 1,
            physical_writes: 0,
            logical_reads: 2,
        });
        assert_eq!(s.physical_reads, 3);
        assert_eq!(s.physical_writes, 1);
        assert_eq!(s.logical_reads, 7);
    }
}
