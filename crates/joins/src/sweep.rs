//! Sequential plane-sweep join: the forward-scan filter of
//! [`sj_geom::sweep`] applied to whole stored relations.
//!
//! [`sweep_join`] is strategy I's drop-in replacement for the filter
//! step: one MBR-extraction scan per relation, one `O(n log n + k)`
//! forward scan instead of the `O(n·m)` all-pairs Θ-filter, lazy
//! geometry fetches for refinement. It has the same signature and
//! returns exactly the same match set as
//! [`nested_loop_join`](crate::nested_loop::nested_loop_join) for every
//! θ-operator (property-tested), so the cost-model and bench layers can
//! compare strategy I against the sweep directly. Directional predicates
//! have unbounded Θ-filter regions ([`ThetaOp::filter_radius`] is
//! `None`) and fall back to the nested loop.

use sj_geom::sweep::{sweep_candidates_with, Kernel, SweepItem};
use sj_geom::{Bounded, Rect, ThetaOp, BATCH_MIN};
use sj_obs::{Phase, PhaseTimer, TraceSink};
use sj_storage::{BufferPool, StorageError};

use crate::nested_loop::try_nested_loop_join_traced;
use crate::refine::MarginRefiner;
use crate::relation::StoredRelation;
use crate::stats::{ExecStats, JoinRun};

/// Plane-sweep spatial join `R ⋈_θ S`.
///
/// `filter_evals` counts forward-scan comparisons (pairs whose
/// x-intervals were examined), `theta_evals` exact refinements — the
/// same units as the quadratic executors, so comparison counts are
/// directly comparable.
pub fn sweep_join(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
) -> JoinRun {
    sweep_join_traced(pool, r, s, theta, &mut TraceSink::Null)
}

/// [`sweep_join`] with phase instrumentation: MBR-extraction scans are
/// the `partition` phase, forward-scan comparisons the `filter` phase,
/// exact θ-tests plus their lazy geometry fetches the `refine` phase.
/// (Filter and refine interleave during the sweep; the sweep's wall
/// clock is charged to `filter`, its counters split exactly.)
pub fn sweep_join_traced(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> JoinRun {
    try_sweep_join_traced(pool, r, s, theta, trace)
        .unwrap_or_else(|e| panic!("sweep join failed: {e}"))
}

/// Fail-stop [`sweep_join_traced`]: the first storage fault aborts the
/// run with a typed error. A fault during the interleaved refine phase
/// stops further fetches and discards the whole outcome (never a partial
/// match set).
pub fn try_sweep_join_traced(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> Result<JoinRun, StorageError> {
    // Auto-pick the forward-scan kernel the way sweep_candidates does:
    // batched SoA scans once both sides clear the chunk threshold.
    let kernel = if r.len().min(s.len()) < BATCH_MIN {
        Kernel::Scalar
    } else {
        Kernel::Batched
    };
    try_sweep_join_with(pool, r, s, theta, trace, kernel)
}

/// [`try_sweep_join_traced`] with an explicit forward-scan kernel
/// ([`Kernel::Scalar`] pins the per-pair scalar scan, [`Kernel::Batched`]
/// the SoA mask scan). Identical match sets and counters either way —
/// the knob exists for A/B measurement (`simd_scaling`).
pub fn try_sweep_join_with(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    trace: &mut TraceSink,
    kernel: Kernel,
) -> Result<JoinRun, StorageError> {
    let Some(eps) = theta.filter_radius() else {
        // Unbounded (directional) filter region: no sweep interval
        // covers it; serve the operator with strategy I.
        return try_nested_loop_join_traced(pool, r, s, theta, trace);
    };
    let mut timer = PhaseTimer::for_sink(trace);
    let mut run = JoinRun::default();
    let mut partition = ExecStats::default();
    let mut refine = ExecStats::default();
    partition.passes = 1;

    // One scan per relation to extract MBRs; geometries are re-fetched
    // lazily during refinement (the filter/refine I/O split).
    timer.enter(Phase::Partition);
    let window = pool.stats();
    let r_mbrs: Vec<(u64, Rect)> = (0..r.len())
        .map(|i| {
            let (id, g) = r.try_read_at(pool, i)?;
            Ok((id, g.mbr()))
        })
        .collect::<Result<_, StorageError>>()?;
    let s_mbrs: Vec<(u64, Rect)> = (0..s.len())
        .map(|j| {
            let (id, g) = s.try_read_at(pool, j)?;
            Ok((id, g.mbr()))
        })
        .collect::<Result<_, StorageError>>()?;

    let mut sweep_r: Vec<SweepItem> = r_mbrs
        .iter()
        .enumerate()
        .map(|(i, &(_, mbr))| SweepItem::expanded(i as u32, mbr, eps))
        .collect();
    let mut sweep_s: Vec<SweepItem> = s_mbrs
        .iter()
        .enumerate()
        .map(|(j, &(_, mbr))| SweepItem::new(j as u32, mbr))
        .collect();
    partition.add_io(pool.stats().since(&window));

    timer.enter(Phase::Filter);
    let window = pool.stats();
    // Shared refinement engine: the exact path on uncompressed
    // relations, the margin-governed path (quantized sidecar reads,
    // decode-on-demand) when both sides are compressed.
    let mut refiner = MarginRefiner::new(r, s);
    // Capture the first fault raised inside the sweep callback; once set,
    // no further geometry fetches are attempted and the outcome is
    // discarded below.
    let mut first_err: Option<StorageError> = None;
    let comparisons =
        sweep_candidates_with(&mut sweep_r, &mut sweep_s, theta, kernel, &mut |i, j| {
            if first_err.is_some() {
                return;
            }
            match refiner.refine(pool, &theta, i, j, &mut refine) {
                Ok(true) => run.pairs.push((r_mbrs[i as usize].0, s_mbrs[j as usize].0)),
                Ok(false) => {}
                Err(e) => first_err = Some(e),
            }
        });
    refine.add_io(pool.stats().since(&window));
    // The decode-on-demand span: on compressed runs, how many refinement
    // decisions needed the exact record vs. the margin test alone. Exact
    // runs keep the margin counters at zero and emit no span.
    if trace.is_enabled() && refiner.uses_margin() {
        trace.emit(
            "refine/decode",
            0,
            &[
                ("decoded_exact", refine.decoded_exact),
                ("margin_hits", refine.margin_hits),
                ("margin_misses", refine.margin_misses),
            ],
        );
    }
    timer.stop();
    if let Some(e) = first_err {
        return Err(e);
    }

    run.phases.record(Phase::Partition, partition);
    run.phases.record(
        Phase::Filter,
        ExecStats {
            filter_evals: comparisons,
            ..Default::default()
        },
    );
    run.phases.record(Phase::Refine, refine);
    run.seal("sweep", &timer, trace);
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested_loop::nested_loop_join;
    use sj_geom::{Direction, Geometry, Point};
    use sj_storage::{Disk, DiskConfig, Layout};

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), frames)
    }

    fn sorted(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        v.sort_unstable();
        v
    }

    /// Deterministic mixed point/rect workload spread over the world.
    fn mixed_rel(pool: &mut BufferPool, n: usize, id0: u64, salt: u64) -> StoredRelation {
        let tuples: Vec<(u64, Geometry)> = (0..n)
            .map(|i| {
                let k = (i as u64).wrapping_mul(2654435761).wrapping_add(salt);
                let x = (k % 1000) as f64;
                let y = (k / 1000 % 1000) as f64;
                let g = if i % 3 == 0 {
                    Geometry::Point(Point::new(x, y))
                } else {
                    let w = (k % 23) as f64;
                    let h = (k % 17) as f64;
                    Geometry::Rect(Rect::from_bounds(x, y, x + w, y + h))
                };
                (id0 + i as u64, g)
            })
            .collect();
        StoredRelation::build(pool, &tuples, 300, Layout::Clustered)
    }

    #[test]
    fn sweep_join_matches_nested_loop_across_operators() {
        let mut p = pool(64);
        let r = mixed_rel(&mut p, 130, 0, 5);
        let s = mixed_rel(&mut p, 110, 10_000, 77);
        for theta in [
            ThetaOp::WithinDistance(25.0),
            ThetaOp::WithinCenterDistance(40.0),
            ThetaOp::Overlaps,
            ThetaOp::Includes,
            ThetaOp::ContainedIn,
            ThetaOp::Adjacent,
            ThetaOp::ReachableWithin {
                minutes: 10.0,
                speed: 3.0,
            },
            ThetaOp::DirectionOf(Direction::SouthEast),
        ] {
            let want = sorted(nested_loop_join(&mut p, &r, &s, theta).pairs);
            let got = sorted(sweep_join(&mut p, &r, &s, theta).pairs);
            assert_eq!(got, want, "theta {theta:?}");
        }
    }

    #[test]
    fn sweep_beats_nested_loop_comparisons_on_spread_data() {
        let mut p = pool(64);
        let r = mixed_rel(&mut p, 200, 0, 5);
        let s = mixed_rel(&mut p, 200, 10_000, 77);
        let theta = ThetaOp::Overlaps;
        let nl = nested_loop_join(&mut p, &r, &s, theta);
        let sw = sweep_join(&mut p, &r, &s, theta);
        assert_eq!(sorted(nl.pairs), sorted(sw.pairs));
        assert!(
            sw.stats.comparisons() < nl.stats.comparisons() / 4,
            "sweep {} vs nested {}",
            sw.stats.comparisons(),
            nl.stats.comparisons()
        );
    }

    #[test]
    fn refinement_io_is_lazy() {
        // Disjoint clusters far apart: the sweep should refine nothing
        // and touch only the MBR-extraction scans.
        let mut p = pool(64);
        let left: Vec<(u64, Geometry)> = (0..40)
            .map(|i| (i, Geometry::Point(Point::new(i as f64, 0.0))))
            .collect();
        let right: Vec<(u64, Geometry)> = (0..40)
            .map(|i| {
                (
                    1_000 + i,
                    Geometry::Point(Point::new(10_000.0 + i as f64, 0.0)),
                )
            })
            .collect();
        let r = StoredRelation::build(&mut p, &left, 300, Layout::Clustered);
        let s = StoredRelation::build(&mut p, &right, 300, Layout::Clustered);
        let run = sweep_join(&mut p, &r, &s, ThetaOp::WithinDistance(5.0));
        assert!(run.pairs.is_empty());
        assert_eq!(run.stats.theta_evals, 0);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut p = pool(16);
        let empty = StoredRelation::build(&mut p, &[], 300, Layout::Clustered);
        let r = mixed_rel(&mut p, 10, 0, 1);
        assert!(sweep_join(&mut p, &empty, &r, ThetaOp::Overlaps)
            .pairs
            .is_empty());
        assert!(sweep_join(&mut p, &r, &empty, ThetaOp::Overlaps)
            .pairs
            .is_empty());
    }
}
