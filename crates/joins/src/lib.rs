//! # sj-joins — executable spatial-join strategies
//!
//! Storage-backed executors for every join-processing strategy the paper
//! analyzes (§2, §4), all reporting [`ExecStats`] in the cost model's own
//! units (θ/Θ-evaluations and physical page I/O through an LRU buffer
//! pool):
//!
//! | Paper strategy | Executor |
//! |---|---|
//! | I — nested loop (with Valduriez's memory passes) | [`nested_loop`] |
//! | IIa/IIb — generalization tree, unclustered/clustered | [`tree_join`] over a [`TreeRelation`] with the corresponding [`Layout`] |
//! | III — join index on a B⁺-tree | [`join_index`] |
//! | sort-merge for `overlaps` via z-elements (Orenstein) | [`sort_merge`] |
//! | §5's *local join indices* (future work, implemented) | [`local_index`] |
//! | grid-file join (Rotem's index-supported baseline) | [`grid`] |
//! | z-value B⁺-tree index (UB-tree style, §2.2) | [`zindex`] |
//! | PBSM-style partition-parallel filter-and-refine | [`parallel::partition_join`] (plus [`parallel::parallel_tree_join`] for strategy II) |
//! | forward-scan plane-sweep filter (sequential) | [`sweep::sweep_join`] |
//!
//! Every executor is validated (unit + property tests) to return exactly
//! the same match set as the nested-loop reference.
//!
//! [`Layout`]: sj_storage::Layout

pub mod grid;
pub mod join_index;
pub mod local_index;
pub mod nested_loop;
pub mod paged_tree;
pub mod parallel;
pub mod relation;
pub mod sort_merge;
pub mod stats;
pub mod sweep;
pub mod tree_join;
pub mod zindex;

pub use join_index::JoinIndex;
pub use local_index::LocalJoinIndex;
pub use paged_tree::{ClusterOrder, PagedTree, TreeRelation};
pub use parallel::{parallel_tree_join, partition_join, Parallelism};
pub use relation::StoredRelation;
pub use stats::{ExecStats, JoinRun, SelectRun};
pub use sweep::sweep_join;
pub use zindex::ZIndex;
