//! # sj-joins — executable spatial-join strategies
//!
//! Storage-backed executors for every join-processing strategy the paper
//! analyzes (§2, §4), all reporting [`ExecStats`] in the cost model's own
//! units (θ/Θ-evaluations and physical page I/O through an LRU buffer
//! pool):
//!
//! | Paper strategy | Executor |
//! |---|---|
//! | I — nested loop (with Valduriez's memory passes) | [`nested_loop`] |
//! | IIa/IIb — generalization tree, unclustered/clustered | [`tree_join`] over a [`TreeRelation`] with the corresponding [`Layout`] |
//! | III — join index on a B⁺-tree | [`join_index`] |
//! | sort-merge for `overlaps` via z-elements (Orenstein) | [`sort_merge`] |
//! | §5's *local join indices* (future work, implemented) | [`local_index`] |
//! | grid-file join (Rotem's index-supported baseline) | [`grid`] |
//! | z-value B⁺-tree index (UB-tree style, §2.2) | [`zindex`] |
//! | PBSM-style partition-parallel filter-and-refine | [`parallel::partition_join`] (plus [`parallel::parallel_tree_join`] for strategy II) |
//! | forward-scan plane-sweep filter (sequential) | [`sweep::sweep_join`] |
//!
//! Every executor is validated (unit + property tests) to return exactly
//! the same match set as the nested-loop reference.
//!
//! ## The unified executor API
//!
//! All nine strategies are also reachable through one surface: build a
//! [`JoinRequest`] (θ, parallelism, optional trace sink), pick a
//! [`Strategy`], and run [`JoinExecutor::execute`] over
//! [`JoinOperands`]. This is what the experiment harness and benchmark
//! bins dispatch through; the free functions below remain as thin
//! low-level entry points.
//!
//! ## Call conventions
//!
//! Every join entry point follows one convention: **the [`BufferPool`]
//! is the first argument (or the first after `&self`), operands follow
//! in `R`-before-`S` order, θ comes after the operands.** Index-backed
//! joins take the pool too, even when the index can answer from its own
//! structures (e.g. [`LocalJoinIndex::join`]) — all I/O accounting flows
//! through one pool argument at one position:
//!
//! | Entry point | Shape |
//! |---|---|
//! | free functions | `join(pool, r, s, theta)` |
//! | [`JoinIndex::join`] | `join(&self, pool, r, s)` (θ fixed at build) |
//! | [`LocalJoinIndex::join`] | `join(&self, pool)` (operands and θ fixed at build) |
//! | [`ZIndex::join`] | `join(&self, pool, r, s, theta)` |
//! | [`JoinExecutor::execute`] | `execute(&mut self, req, pool)` |
//!
//! Every entry point also has a `*_traced` twin taking a trailing
//! `&mut TraceSink` ([`sj_obs`]) that emits per-phase spans; the
//! untraced form is a forwarding wrapper passing [`TraceSink::Null`].
//!
//! [`Layout`]: sj_storage::Layout
//! [`BufferPool`]: sj_storage::BufferPool

pub mod executor;
pub mod grid;
pub mod join_index;
pub mod local_index;
pub mod mutation;
pub mod nested_loop;
pub mod paged_tree;
pub mod parallel;
pub mod refine;
pub mod relation;
pub mod sort_merge;
pub mod stats;
pub mod sweep;
pub mod tree_join;
pub mod zindex;

pub use executor::{JoinExecutor, JoinOperands, JoinRequest, Strategy};
pub use join_index::JoinIndex;
pub use local_index::LocalJoinIndex;
pub use mutation::{ApplyMode, Mutation, MutationOutcome, Side, TouchedRegions, WriteBatch};
pub use paged_tree::{ClusterOrder, CodecMode, PagedTree, TreeRelation};
pub use parallel::{parallel_tree_join, partition_join, tiles_per_axis, Parallelism, TileGrid};
pub use refine::MarginRefiner;
pub use relation::StoredRelation;
pub use sj_obs::{Phase, PhaseTimer, TraceEvent, TraceSink};
pub use stats::{ExecStats, JoinRun, PhaseStats, SelectRun};
pub use sweep::sweep_join;
pub use zindex::ZIndex;
