//! Local join indices — the paper's §5 future-work proposal, implemented.
//!
//! > "Furthermore, we want to explore the concept of so-called *local join
//! > indices* between objects that are indexed by the same generalization
//! > tree and have some ancestor in common. This extension can be viewed
//! > as a mixture between the pure generalization trees (strategy II) and
//! > pure join indices (strategy III), and we expect one of those mixed
//! > strategies to be the one that is optimal in terms of average
//! > performance."
//!
//! This module realizes the mixture for a pair of generalization trees:
//! both trees are partitioned at an *anchor level* `L`; for every pair of
//! anchor subtrees whose MBRs pass the Θ-filter, a small **local** join
//! index of the θ-matching entry pairs between the two subtrees is
//! precomputed. The global join is the union of the local indices.
//!
//! The trade-off the paper anticipated falls out directly:
//!
//! * `L = 0` degenerates to a single global join index (pure strategy III):
//!   cheapest queries, `O(N)` θ-work per maintenance insert.
//! * Large `L` approaches pure strategy II: little precomputation, but
//!   query work returns.
//! * Intermediate `L` bounds maintenance to the entries of the Θ-matching
//!   partner subtrees — usually a small fraction of `N` — while queries
//!   remain index lookups.

use std::collections::HashMap;

use sj_btree::BPlusTree;
use sj_gentree::{GenTree, NodeId};
use sj_geom::{Bounded, Geometry, ThetaOp};
use sj_obs::{Phase, PhaseTimer, TraceSink};
use sj_storage::{BufferPool, StorageError};

use crate::paged_tree::TreeRelation;
use crate::stats::{ExecStats, JoinRun};

/// One partition's key: the anchor nodes in `R`'s and `S`'s trees.
type AnchorPair = (NodeId, NodeId);

/// A local-join-index structure over two tree-stored relations.
#[derive(Debug)]
pub struct LocalJoinIndex {
    theta: ThetaOp,
    level: usize,
    /// Anchor nodes (level-`L` roots) of each tree.
    r_anchors: Vec<NodeId>,
    s_anchors: Vec<NodeId>,
    /// Θ-qualifying anchor pairs and their local indices.
    partitions: HashMap<AnchorPair, BPlusTree<(u64, u64), ()>>,
    /// Entry lists per anchor (ids + geometries), used for maintenance.
    r_entries: HashMap<NodeId, Vec<(u64, Geometry)>>,
    s_entries: HashMap<NodeId, Vec<(u64, Geometry)>>,
}

/// The nodes at depth `min(level, height)` of a tree.
fn anchors_at(tree: &GenTree, level: usize) -> Vec<NodeId> {
    let levels = tree.levels();
    let idx = level.min(levels.len() - 1);
    levels[idx].clone()
}

/// All application entries in the subtree rooted at `n`.
fn subtree_entries(tree: &GenTree, n: NodeId) -> Vec<(u64, Geometry)> {
    let mut out = Vec::new();
    let mut stack = vec![n];
    while let Some(cur) = stack.pop() {
        if let Some(e) = tree.entry(cur) {
            out.push((e.id, e.geometry.clone()));
        }
        stack.extend_from_slice(tree.children(cur));
    }
    out
}

impl LocalJoinIndex {
    /// Builds the local indices: Θ-filters all anchor pairs, then runs a
    /// nested loop *within* each qualifying pair only. The returned stats
    /// carry the Θ- and θ-evaluation counts (contrast with a global
    /// index's `N²`). Entry records are read through the pool (charged).
    pub fn build(
        pool: &mut BufferPool,
        r: &TreeRelation,
        s: &TreeRelation,
        theta: ThetaOp,
        level: usize,
        z: usize,
    ) -> (Self, ExecStats) {
        Self::try_build(pool, r, s, theta, level, z)
            .unwrap_or_else(|e| panic!("local join index build failed: {e}"))
    }

    /// Fail-stop [`LocalJoinIndex::build`]: the first faulted node touch
    /// during the build sweeps aborts with a typed error (no partially
    /// built index).
    pub fn try_build(
        pool: &mut BufferPool,
        r: &TreeRelation,
        s: &TreeRelation,
        theta: ThetaOp,
        level: usize,
        z: usize,
    ) -> Result<(Self, ExecStats), StorageError> {
        let before = pool.stats();
        let mut stats = ExecStats::default();

        let r_anchors = anchors_at(&r.tree, level);
        let s_anchors = anchors_at(&s.tree, level);

        // Touch every stored record once (the build's scan), gathering the
        // per-anchor entry lists.
        let mut r_entries = HashMap::new();
        for &a in &r_anchors {
            // Charge I/O for the subtree sweep.
            let mut stack = vec![a];
            while let Some(cur) = stack.pop() {
                r.paged.try_touch_io(pool, cur)?;
                stack.extend_from_slice(r.tree.children(cur));
            }
            r_entries.insert(a, subtree_entries(&r.tree, a));
        }
        let mut s_entries = HashMap::new();
        for &b in &s_anchors {
            let mut stack = vec![b];
            while let Some(cur) = stack.pop() {
                s.paged.try_touch_io(pool, cur)?;
                stack.extend_from_slice(s.tree.children(cur));
            }
            s_entries.insert(b, subtree_entries(&s.tree, b));
        }

        let mut partitions = HashMap::new();
        for &a in &r_anchors {
            let a_mbr = r.tree.mbr(a);
            for &b in &s_anchors {
                stats.filter_evals += 1;
                if !theta.filter(&a_mbr, &s.tree.mbr(b)) {
                    continue;
                }
                let mut local = BPlusTree::new(z);
                for (r_id, r_geom) in &r_entries[&a] {
                    for (s_id, s_geom) in &s_entries[&b] {
                        stats.theta_evals += 1;
                        if theta.eval(r_geom, s_geom) {
                            local.insert((*r_id, *s_id), ());
                        }
                    }
                }
                stats.physical_writes += local.node_count() as u64;
                local.reset_accesses();
                partitions.insert((a, b), local);
            }
        }
        stats.add_io(pool.stats().since(&before));
        Ok((
            LocalJoinIndex {
                theta,
                level,
                r_anchors,
                s_anchors,
                partitions,
                r_entries,
                s_entries,
            },
            stats,
        ))
    }

    /// The anchor level `L`.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of Θ-qualifying partitions (local indices kept).
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total entries across all local indices.
    pub fn len(&self) -> usize {
        self.partitions.values().map(|t| t.len()).sum()
    }

    /// True if no pairs are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total index nodes ("pages") across partitions.
    pub fn node_count(&self) -> usize {
        self.partitions.values().map(|t| t.node_count()).sum()
    }

    /// The full join: unions all local indices, charging one simulated
    /// page read per B⁺-tree node visited.
    ///
    /// The pool parameter exists for call-surface consistency with every
    /// other executor (and any future spill of local indices to heap
    /// pages); the union itself reads only index nodes, so the pool
    /// window normally contributes nothing.
    pub fn join(&self, pool: &mut BufferPool) -> JoinRun {
        self.join_traced(pool, &mut TraceSink::Null)
    }

    /// Fail-stop [`join_traced`](LocalJoinIndex::join_traced). The union
    /// reads only in-memory index nodes, so it cannot fault today; the
    /// fallible signature keeps the executor surface uniform (and covers
    /// any future spill of local indices to heap pages).
    pub fn try_join_traced(
        &self,
        pool: &mut BufferPool,
        trace: &mut TraceSink,
    ) -> Result<JoinRun, StorageError> {
        Ok(self.join_traced(pool, trace))
    }

    /// [`join`](LocalJoinIndex::join) with phase instrumentation: the
    /// whole union is `index-probe` work.
    pub fn join_traced(&self, pool: &mut BufferPool, trace: &mut TraceSink) -> JoinRun {
        let mut timer = PhaseTimer::for_sink(trace);
        timer.enter(Phase::IndexProbe);
        let window = pool.stats();
        let mut run = JoinRun::default();
        let mut probe = ExecStats {
            passes: 1,
            ..Default::default()
        };
        for local in self.partitions.values() {
            local.reset_accesses();
            for (pair, ()) in local.iter_all() {
                run.pairs.push(pair);
            }
            probe.physical_reads += local.accesses();
        }
        run.pairs.sort_unstable();
        run.pairs.dedup(); // overlapping subtrees can duplicate pairs
        probe.add_io(pool.stats().since(&window));
        timer.stop();
        run.phases.record(Phase::IndexProbe, probe);
        run.seal("local_index", &timer, trace);
        run
    }

    /// Maintenance for inserting `(id, geom)` into `R`: the new entry is
    /// assigned to the anchor whose MBR needs least enlargement, and
    /// θ-checked **only** against the entries of Θ-matching `S` subtrees —
    /// the locality pay-off over `U_III`'s full `T` scan.
    pub fn maintain_insert_r(
        &mut self,
        r_tree: &GenTree,
        s_tree: &GenTree,
        id: u64,
        geom: &Geometry,
    ) -> ExecStats {
        let mut stats = ExecStats::default();
        let mbr = geom.mbr();
        let anchor = self
            .r_anchors
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let ea = r_tree.mbr(a).enlargement(&mbr);
                let eb = r_tree.mbr(b).enlargement(&mbr);
                ea.partial_cmp(&eb).expect("finite areas")
            })
            .expect("at least the root anchor exists");
        self.r_entries
            .get_mut(&anchor)
            .expect("anchor registered at build")
            .push((id, geom.clone()));

        let anchor_mbr = r_tree.mbr(anchor).union(&mbr);
        for &b in &self.s_anchors {
            stats.filter_evals += 1;
            if !self.theta.filter(&anchor_mbr, &s_tree.mbr(b)) {
                continue;
            }
            let local = self
                .partitions
                .entry((anchor, b))
                .or_insert_with(|| BPlusTree::new(100));
            local.reset_accesses();
            for (s_id, s_geom) in &self.s_entries[&b] {
                stats.theta_evals += 1;
                if self.theta.eval(geom, s_geom) {
                    local.insert((id, *s_id), ());
                }
            }
            stats.physical_writes += local.accesses();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_index::JoinIndex;
    use crate::nested_loop::nested_loop_join;
    use crate::relation::StoredRelation;
    use sj_gentree::rtree::{RTree, RTreeConfig};
    use sj_geom::{Point, Rect};
    use sj_storage::{Disk, DiskConfig, Layout};

    fn pool() -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), 256)
    }

    fn grid_tuples(n: usize, step: f64, offset: f64, id0: u64) -> Vec<(u64, Geometry)> {
        (0..n * n)
            .map(|i| {
                (
                    id0 + i as u64,
                    Geometry::Point(Point::new(
                        (i % n) as f64 * step + offset,
                        (i / n) as f64 * step + offset,
                    )),
                )
            })
            .collect()
    }

    fn tree_rel(pool: &mut BufferPool, tuples: Vec<(u64, Geometry)>) -> TreeRelation {
        let rt = RTree::bulk_load(RTreeConfig::with_fanout(5), tuples);
        TreeRelation::new(pool, rt.tree().clone(), 300, Layout::Clustered)
    }

    #[test]
    fn local_join_equals_global_join_at_every_level() {
        let mut p = pool();
        let r_tuples = grid_tuples(8, 10.0, 0.0, 0);
        let s_tuples = grid_tuples(8, 10.0, 0.5, 1000);
        let r = tree_rel(&mut p, r_tuples.clone());
        let s = tree_rel(&mut p, s_tuples.clone());
        let theta = ThetaOp::WithinDistance(1.0);

        let flat_r = StoredRelation::build(&mut p, &r_tuples, 300, Layout::Clustered);
        let flat_s = StoredRelation::build(&mut p, &s_tuples, 300, Layout::Clustered);
        let mut reference = nested_loop_join(&mut p, &flat_r, &flat_s, theta).pairs;
        reference.sort_unstable();
        assert_eq!(reference.len(), 64);

        for level in 0..=3 {
            let (idx, _) = LocalJoinIndex::build(&mut p, &r, &s, theta, level, 16);
            let got = idx.join(&mut p).pairs;
            assert_eq!(got, reference, "level {level}");
        }
    }

    #[test]
    fn deeper_anchors_cut_build_theta_work() {
        let mut p = pool();
        let r = tree_rel(&mut p, grid_tuples(10, 10.0, 0.0, 0));
        let s = tree_rel(&mut p, grid_tuples(10, 10.0, 0.5, 1000));
        let theta = ThetaOp::WithinDistance(1.0);
        let (_, stats0) = LocalJoinIndex::build(&mut p, &r, &s, theta, 0, 16);
        let (_, stats2) = LocalJoinIndex::build(&mut p, &r, &s, theta, 2, 16);
        // Level 0 is the full N² nested loop; deeper anchors prune.
        assert_eq!(stats0.theta_evals, 100 * 100);
        assert!(
            stats2.theta_evals < stats0.theta_evals / 2,
            "anchored build should θ-test far fewer pairs: {} vs {}",
            stats2.theta_evals,
            stats0.theta_evals
        );
    }

    #[test]
    fn maintenance_is_local() {
        let mut p = pool();
        let r = tree_rel(&mut p, grid_tuples(10, 10.0, 0.0, 0));
        let s = tree_rel(&mut p, grid_tuples(10, 10.0, 0.5, 1000));
        let theta = ThetaOp::WithinDistance(1.0);

        // Global index maintenance θ-checks all |S| = 100 tuples.
        let flat_r = StoredRelation::build(
            &mut p,
            &grid_tuples(10, 10.0, 0.0, 0),
            300,
            Layout::Clustered,
        );
        let flat_s = StoredRelation::build(
            &mut p,
            &grid_tuples(10, 10.0, 0.5, 1000),
            300,
            Layout::Clustered,
        );
        let (mut global, _) = JoinIndex::build(&mut p, &flat_r, &flat_s, theta, 16);
        // Right on top of S tuple 1044 at (40.5, 40.5).
        let g = Geometry::Point(Point::new(40.6, 40.5));
        let global_maint = global.maintain_insert_r(&mut p, 9999, &g, &flat_s);
        assert_eq!(global_maint.theta_evals, 100);

        // Local index maintenance only touches Θ-matching subtrees.
        let (mut local, _) = LocalJoinIndex::build(&mut p, &r, &s, theta, 2, 16);
        let local_maint = local.maintain_insert_r(&r.tree, &s.tree, 9999, &g);
        assert!(
            local_maint.theta_evals < 100,
            "local maintenance should beat the |S| scan: {}",
            local_maint.theta_evals
        );
        // And the resulting join includes the new match.
        let joined = local.join(&mut p).pairs;
        assert!(joined.contains(&(9999, 1044)));
    }

    #[test]
    fn maintenance_result_matches_rebuild() {
        let mut p = pool();
        let r_tuples = grid_tuples(6, 10.0, 0.0, 0);
        let s_tuples = grid_tuples(6, 10.0, 0.5, 1000);
        let r = tree_rel(&mut p, r_tuples.clone());
        let s = tree_rel(&mut p, s_tuples.clone());
        let theta = ThetaOp::WithinDistance(1.0);
        let (mut idx, _) = LocalJoinIndex::build(&mut p, &r, &s, theta, 1, 16);

        let new_geom = Geometry::Point(Point::new(20.5, 30.5)); // on top of an S point
        idx.maintain_insert_r(&r.tree, &s.tree, 777, &new_geom);
        let mut incremental = idx.join(&mut p).pairs;
        incremental.sort_unstable();

        // Rebuild from scratch with the extra R tuple.
        let mut r_all = r_tuples.clone();
        r_all.push((777, new_geom));
        let r2 = tree_rel(&mut p, r_all.clone());
        let (fresh, _) = LocalJoinIndex::build(&mut p, &r2, &s, theta, 1, 16);
        let mut rebuilt = fresh.join(&mut p).pairs;
        rebuilt.sort_unstable();
        assert_eq!(incremental, rebuilt);
        assert!(incremental.iter().any(|&(a, _)| a == 777));
    }

    #[test]
    fn partition_counts_shrink_with_selective_theta() {
        let mut p = pool();
        let r = tree_rel(&mut p, grid_tuples(8, 20.0, 0.0, 0));
        let s = tree_rel(&mut p, grid_tuples(8, 20.0, 100.0, 1000)); // far away
        let theta = ThetaOp::WithinDistance(5.0);
        let (idx, _) = LocalJoinIndex::build(&mut p, &r, &s, theta, 2, 16);
        let all_pairs = anchors_at(&r.tree, 2).len() * anchors_at(&s.tree, 2).len();
        assert!(
            idx.partition_count() < all_pairs,
            "Θ-filter should prune anchor pairs: {} of {all_pairs}",
            idx.partition_count()
        );
    }

    #[test]
    fn rect_geometry_workload() {
        let mut p = pool();
        let mk = |offset: f64, id0: u64| -> Vec<(u64, Geometry)> {
            (0..49)
                .map(|i| {
                    let x = (i % 7) as f64 * 12.0 + offset;
                    let y = (i / 7) as f64 * 12.0;
                    (
                        id0 + i as u64,
                        Geometry::Rect(Rect::from_bounds(x, y, x + 10.0, y + 10.0)),
                    )
                })
                .collect()
        };
        let r = tree_rel(&mut p, mk(0.0, 0));
        let s = tree_rel(&mut p, mk(5.0, 1000));
        let theta = ThetaOp::Overlaps;
        let flat_r = StoredRelation::build(&mut p, &mk(0.0, 0), 300, Layout::Clustered);
        let flat_s = StoredRelation::build(&mut p, &mk(5.0, 1000), 300, Layout::Clustered);
        let mut want = nested_loop_join(&mut p, &flat_r, &flat_s, theta).pairs;
        want.sort_unstable();
        let (idx, _) = LocalJoinIndex::build(&mut p, &r, &s, theta, 1, 16);
        assert_eq!(idx.join(&mut p).pairs, want);
    }
}
