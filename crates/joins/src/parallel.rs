//! Data-parallel join execution: PBSM-style partition-parallel
//! filter-and-refine over `std::thread::scope`.
//!
//! [`partition_join`] grid-partitions both relations' MBRs into tiles,
//! fans tiles out to worker threads, runs Θ-filter + θ-refine per tile,
//! and deduplicates pairs that share several tiles with the
//! *reference-point rule*: a candidate pair is refined only in the tile
//! containing the lower-left corner of the intersection of its (expanded)
//! MBRs. The per-tile Θ-filter is a forward-scan plane sweep
//! ([`sj_geom::sweep`]) rather than an all-pairs loop, so tile filter
//! cost is `O(n log n + k)` in the tile size. [`parallel_tree_join`]
//! parallelizes Algorithm JOIN by splitting at the top-level subtrees of
//! the R generalization tree.
//!
//! Cost-model accounting under concurrency:
//!
//! * Every worker runs over a private [`BufferPool`] shard
//!   ([`BufferPool::fork_view`]) whose counters are merged into the run's
//!   [`ExecStats`] afterwards, so physical/logical I/O stays exact.
//! * Comparison counts (`filter_evals` — sweep comparisons since the
//!   plane-sweep filter landed — and `theta_evals`) depend only on the
//!   tile decomposition, which is a function of the data — **not** of the
//!   thread count — so `threads = N` reports exactly the comparison
//!   totals of `threads = 1` (a tested invariant). I/O counts may differ
//!   with the thread count because each worker shard has its own cold
//!   LRU state.
//! * `threads = 1` never spawns and runs every tile on the calling
//!   thread against the caller's own pool — the model-validation mode,
//!   directly comparable with the sequential executors.

use std::thread;
use std::time::Instant;

use sj_geom::sweep::{sweep_candidates, sweep_candidates_with, Kernel, SweepItem};
use sj_geom::{Bounded, Geometry, Point, Rect, ThetaOp};
use sj_obs::{Phase, PhaseTimer, TraceSink};
use sj_storage::{BufferPool, StorageError};

use crate::paged_tree::TreeRelation;
use crate::refine::MarginRefiner;
use crate::relation::StoredRelation;
use crate::stats::{ExecStats, JoinRun};
use crate::tree_join::try_tree_join_traced;

/// Degree of parallelism for the executors in this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Number of worker threads (≥ 1). `1` means: run sequentially on the
    /// calling thread, with no pool sharding.
    pub threads: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

impl Parallelism {
    /// One worker per available hardware core (≥ 1).
    pub fn auto() -> Self {
        let threads = thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Parallelism { threads }
    }

    /// Strictly sequential execution on the calling thread.
    pub fn sequential() -> Self {
        Parallelism { threads: 1 }
    }

    /// An explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "parallelism needs at least one thread");
        Parallelism { threads }
    }
}

/// A uniform grid over the data's bounding box. Tile membership is
/// computed with the monotone maps [`TileGrid::tile_x_of`] /
/// [`TileGrid::tile_y_of`] applied to rectangle corners, so a rectangle's
/// tile range and any interior point's tile are always consistent — the
/// property the reference-point rule relies on (no floating-point
/// boundary disagreements).
///
/// The boundary convention is **half-open with a saturating last tile**:
/// tile `k` along an axis covers `[origin + k·w, origin + (k+1)·w)`, so a
/// coordinate exactly on the edge shared by tiles `k-1` and `k` belongs
/// to `k` — except the world's max edge, which saturates into the last
/// tile (and so do coordinates beyond the world, in either direction).
/// Every coordinate therefore maps to exactly one tile; a reference
/// point landing exactly on a shared tile edge is owned by exactly one
/// tile under both the threaded and the sharded execution paths. Pinned
/// by `tile_boundary_convention_is_half_open` below.
///
/// `pub` because the shard router (`sj-shard`) reuses the same grid and
/// the same convention for its tile-shard decomposition — the two layers
/// must agree on ownership or boundary pairs get duplicated or lost.
#[derive(Debug, Clone, Copy)]
pub struct TileGrid {
    origin: Point,
    tile_w: f64,
    tile_h: f64,
    tiles_x: usize,
    tiles_y: usize,
}

impl TileGrid {
    /// Grid of `tiles_x × tiles_y` tiles covering `world`.
    pub fn new(world: Rect, tiles_x: usize, tiles_y: usize) -> Self {
        let tile_w = (world.hi.x - world.lo.x) / tiles_x as f64;
        let tile_h = (world.hi.y - world.lo.y) / tiles_y as f64;
        TileGrid {
            origin: world.lo,
            tile_w,
            tile_h,
            tiles_x,
            tiles_y,
        }
    }

    /// Total number of tiles.
    pub fn len(&self) -> usize {
        self.tiles_x * self.tiles_y
    }

    /// True for a degenerate zero-tile grid (never produced by `new`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tiles along x.
    pub fn tiles_x(&self) -> usize {
        self.tiles_x
    }

    /// Tiles along y.
    pub fn tiles_y(&self) -> usize {
        self.tiles_y
    }

    /// Column of `x` under the half-open convention (see type docs).
    pub fn tile_x_of(&self, x: f64) -> usize {
        if self.tile_w <= 0.0 {
            return 0;
        }
        let t = ((x - self.origin.x) / self.tile_w).floor();
        // `as usize` saturates negatives and NaN to 0.
        (t as usize).min(self.tiles_x - 1)
    }

    /// Row of `y` under the half-open convention (see type docs).
    pub fn tile_y_of(&self, y: f64) -> usize {
        if self.tile_h <= 0.0 {
            return 0;
        }
        let t = ((y - self.origin.y) / self.tile_h).floor();
        (t as usize).min(self.tiles_y - 1)
    }

    /// The unique tile owning `p` (row-major index).
    pub fn tile_of_point(&self, p: Point) -> usize {
        self.tile_y_of(p.y) * self.tiles_x + self.tile_x_of(p.x)
    }

    /// The closed rectangle of tile `t` (row-major). Adjacent tiles share
    /// their edges; ownership of shared edges follows the half-open maps
    /// above, not this rectangle.
    pub fn tile_rect(&self, t: usize) -> Rect {
        assert!(t < self.len(), "tile index {t} out of range");
        let tx = (t % self.tiles_x) as f64;
        let ty = (t / self.tiles_x) as f64;
        Rect::from_bounds(
            self.origin.x + tx * self.tile_w,
            self.origin.y + ty * self.tile_h,
            self.origin.x + (tx + 1.0) * self.tile_w,
            self.origin.y + (ty + 1.0) * self.tile_h,
        )
    }

    /// Indices of every tile the rectangle overlaps.
    pub fn tiles_overlapping(&self, r: &Rect) -> impl Iterator<Item = usize> + '_ {
        let x0 = self.tile_x_of(r.lo.x);
        let x1 = self.tile_x_of(r.hi.x);
        let y0 = self.tile_y_of(r.lo.y);
        let y1 = self.tile_y_of(r.hi.y);
        (y0..=y1).flat_map(move |y| (x0..=x1).map(move |x| y * self.tiles_x + x))
    }
}

/// Tiles per axis, scaled to the input size so that tiles hold on the
/// order of five hundred tuples on average — deep enough per-tile runs
/// for the batched SoA sweep to walk multi-chunk scans and amortize its
/// chunk builds, while a tile's SoA working set stays cache-resident.
/// Depends only on the data — never on the thread count — which keeps
/// comparison totals invariant under parallelism.
///
/// Clamped to `[2, 64]`: tiny inputs (including zero tuples) still get a
/// 2×2 grid rather than a degenerate 1-tile or n×1 decomposition, and
/// huge inputs stop at 64×64 tiles. The clamp bounds the *count* only —
/// a skewed dataset can still concentrate every tuple in one tile, which
/// this static heuristic cannot see. Occupancy-driven skew handling is
/// deliberately NOT done here: the shard router (`sj-shard`) recursively
/// quad-splits overfull tiles from observed occupancy instead, keeping
/// this function a pure, data-size-only map (pinned by
/// `tiles_per_axis_is_clamped_and_monotone`).
pub fn tiles_per_axis(total_tuples: usize) -> usize {
    ((total_tuples as f64 / 512.0).sqrt().ceil() as usize).clamp(2, 64)
}

/// Matches and comparison counters produced by one tile (or one
/// nested-loop chunk). `dur_us` is the tile's wall-clock span, measured
/// only when a trace sink is attached — with [`TraceSink::Null`] no
/// clock is ever read. The margin counters are nonzero only when both
/// relations are compressed (see [`crate::refine`]).
#[derive(Default)]
struct TileOut {
    pairs: Vec<(u64, u64)>,
    filter_evals: u64,
    theta_evals: u64,
    decoded_exact: u64,
    margin_hits: u64,
    margin_misses: u64,
    dur_us: u64,
}

/// PBSM-style parallel spatial join `R ⋈_θ S`.
///
/// Returns exactly the match set of
/// [`nested_loop_join`](crate::nested_loop::nested_loop_join) (as a set;
/// pair order follows tile order) for every `theta`, at any thread
/// count. See the module docs for the accounting guarantees.
pub fn partition_join(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    par: Parallelism,
) -> JoinRun {
    partition_join_traced(pool, r, s, theta, par, &mut TraceSink::Null)
}

/// [`partition_join`] with phase instrumentation. The MBR scans and tile
/// decomposition are the `partition` phase; the fanned-out Θ-filter
/// sweeps are the `filter` phase; exact θ-tests plus lazy geometry
/// fetches (worker-shard I/O included) are the `refine` phase. When the
/// sink is live, each tile additionally emits a
/// `partition_join/tile:<t>` span and each worker a
/// `partition_join/worker:<w>` span, in deterministic tile/worker order
/// regardless of the thread count.
pub fn partition_join_traced(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    par: Parallelism,
    trace: &mut TraceSink,
) -> JoinRun {
    try_partition_join_traced(pool, r, s, theta, par, trace)
        .unwrap_or_else(|e| panic!("partition join failed: {e}"))
}

/// Fail-stop [`partition_join_traced`]: the first storage fault — on the
/// coordinator or any worker shard — aborts the run with a typed error.
/// Workers stop at their first fault; the coordinator merges worker
/// results in deterministic chunk order and reports the first chunk's
/// error, so the surfaced error does not depend on thread scheduling.
pub fn try_partition_join_traced(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    par: Parallelism,
    trace: &mut TraceSink,
) -> Result<JoinRun, StorageError> {
    try_partition_join_with(pool, r, s, theta, par, trace, None)
}

/// [`try_partition_join_traced`] with an explicit per-tile sweep kernel:
/// `Some(kernel)` forces every tile's forward scan onto that kernel,
/// `None` lets each tile auto-pick by its list sizes (the default).
/// Match sets and counters are identical for every choice — the knob
/// exists for A/B measurement (`simd_scaling`).
#[allow(clippy::too_many_arguments)]
pub fn try_partition_join_with(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    par: Parallelism,
    trace: &mut TraceSink,
    kernel: Option<Kernel>,
) -> Result<JoinRun, StorageError> {
    match theta.filter_radius() {
        Some(eps) => pbsm_join(pool, r, s, theta, par, eps, trace, kernel),
        None => chunked_nested_loop(pool, r, s, theta, par, trace),
    }
}

#[allow(clippy::too_many_arguments)]
fn pbsm_join(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    par: Parallelism,
    eps: f64,
    trace: &mut TraceSink,
    kernel: Option<Kernel>,
) -> Result<JoinRun, StorageError> {
    let mut timer = PhaseTimer::for_sink(trace);
    let timed = trace.is_enabled();
    timer.enter(Phase::Partition);
    let window = pool.stats();
    let mut run = JoinRun::default();
    let mut partition = ExecStats {
        passes: 1,
        ..Default::default()
    };

    // Phase 1 (sequential): one scan per relation to extract MBRs. These
    // stay in executor memory for the filter step; geometries are
    // re-fetched lazily during refinement (the filter/refine I/O split).
    let r_mbrs: Vec<(u64, Rect)> = (0..r.len())
        .map(|i| {
            let (id, g) = r.try_read_at(pool, i)?;
            Ok((id, g.mbr()))
        })
        .collect::<Result<_, StorageError>>()?;
    let s_mbrs: Vec<(u64, Rect)> = (0..s.len())
        .map(|j| {
            let (id, g) = s.try_read_at(pool, j)?;
            Ok((id, g.mbr()))
        })
        .collect::<Result<_, StorageError>>()?;
    if r_mbrs.is_empty() || s_mbrs.is_empty() {
        partition.add_io(pool.stats().since(&window));
        timer.stop();
        run.phases.record(Phase::Partition, partition);
        run.seal("partition_join", &timer, trace);
        return Ok(run);
    }

    // Phase 2: tile decomposition with multi-assignment. R-side MBRs are
    // expanded by the filter radius so every Θ-qualifying pair shares at
    // least one tile.
    let world = r_mbrs
        .iter()
        .chain(s_mbrs.iter())
        .map(|(_, m)| *m)
        .reduce(|a, b| a.union(&b))
        .expect("non-empty inputs");
    let axis = tiles_per_axis(r_mbrs.len() + s_mbrs.len());
    let grid = TileGrid::new(world, axis, axis);

    let mut r_tiles: Vec<Vec<u32>> = vec![Vec::new(); grid.len()];
    for (i, (_, mbr)) in r_mbrs.iter().enumerate() {
        for t in grid.tiles_overlapping(&mbr.expand(eps)) {
            r_tiles[t].push(i as u32);
        }
    }
    let mut s_tiles: Vec<Vec<u32>> = vec![Vec::new(); grid.len()];
    for (j, (_, mbr)) in s_mbrs.iter().enumerate() {
        for t in grid.tiles_overlapping(mbr) {
            s_tiles[t].push(j as u32);
        }
    }
    let tasks: Vec<usize> = (0..grid.len())
        .filter(|&t| !r_tiles[t].is_empty() && !s_tiles[t].is_empty())
        .collect();

    partition.add_io(pool.stats().since(&window));
    run.phases.record(Phase::Partition, partition);

    // Phase 3: filter + refine per tile, fanned out to workers. Tiles are
    // assigned to workers in contiguous chunks and results concatenated
    // in tile order, so the output is identical at every thread count.
    // Tile-local Θ-filtering and θ-refinement are interleaved inside
    // `process_tile`; the coordinator attributes the whole fan-out's
    // wall-clock to the `filter` phase and books counters per phase.
    timer.enter(Phase::Filter);
    let window = pool.stats();
    let mut refine = ExecStats::default();
    let tile_outs: Vec<TileOut> = if par.threads <= 1 {
        tasks
            .iter()
            .map(|&t| {
                process_tile(
                    t,
                    &grid,
                    eps,
                    theta,
                    r,
                    s,
                    &r_mbrs,
                    &s_mbrs,
                    &r_tiles[t],
                    &s_tiles[t],
                    pool,
                    timed,
                    kernel,
                )
            })
            .collect::<Result<_, _>>()?
    } else {
        let shard_cap = (pool.capacity() / par.threads).max(4);
        let chunk_len = tasks.len().div_ceil(par.threads).max(1);
        let mut outs: Vec<TileOut> = Vec::with_capacity(tasks.len());
        let chunk_results = thread::scope(|scope| {
            let handles: Vec<_> = tasks
                .chunks(chunk_len)
                .map(|chunk| {
                    let mut shard = pool.fork_view(shard_cap);
                    let (r_mbrs, s_mbrs) = (&r_mbrs, &s_mbrs);
                    let (r_tiles, s_tiles) = (&r_tiles, &s_tiles);
                    let grid = &grid;
                    scope.spawn(move || {
                        // Stop at the worker's first fault; the partial
                        // tile list is discarded by the coordinator.
                        let mut outs: Vec<TileOut> = Vec::with_capacity(chunk.len());
                        let mut err: Option<StorageError> = None;
                        for &t in chunk {
                            match process_tile(
                                t,
                                grid,
                                eps,
                                theta,
                                r,
                                s,
                                r_mbrs,
                                s_mbrs,
                                &r_tiles[t],
                                &s_tiles[t],
                                &mut shard,
                                timed,
                                kernel,
                            ) {
                                Ok(o) => outs.push(o),
                                Err(e) => {
                                    err = Some(e);
                                    break;
                                }
                            }
                        }
                        (outs, err, shard.stats())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("partition worker panicked"))
                .collect::<Vec<_>>()
        });
        // Worker merge happens on the coordinator in spawn (= chunk)
        // order, so span emission, stats totals, and the surfaced error
        // are deterministic.
        let mut first_err: Option<StorageError> = None;
        for (w, (chunk_outs, err, io)) in chunk_results.into_iter().enumerate() {
            if trace.is_enabled() {
                let mut ws = ExecStats::default();
                ws.add_io(io);
                let dur: u64 = chunk_outs.iter().map(|o| o.dur_us).sum();
                trace.emit(&format!("partition_join/worker:{w}"), dur, &ws.counters());
            }
            outs.extend(chunk_outs);
            refine.add_io(io);
            if first_err.is_none() {
                first_err = err;
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        outs
    };

    timer.enter(Phase::Refine);
    let mut filter = ExecStats::default();
    if trace.is_enabled() {
        for (&t, out) in tasks.iter().zip(tile_outs.iter()) {
            trace.emit(
                &format!("partition_join/tile:{t}"),
                out.dur_us,
                &[
                    ("filter_evals", out.filter_evals),
                    ("theta_evals", out.theta_evals),
                    ("decoded_exact", out.decoded_exact),
                    ("pairs", out.pairs.len() as u64),
                ],
            );
        }
    }
    for out in tile_outs {
        run.pairs.extend(out.pairs);
        filter.filter_evals += out.filter_evals;
        refine.theta_evals += out.theta_evals;
        refine.decoded_exact += out.decoded_exact;
        refine.margin_hits += out.margin_hits;
        refine.margin_misses += out.margin_misses;
    }
    refine.add_io(pool.stats().since(&window));
    // The decode-on-demand span: how much of the refine phase actually
    // reached exact geometry (compressed runs only; on exact runs the
    // margin counters stay zero and no span is emitted).
    if trace.is_enabled() && refine.decoded_exact + refine.margin_hits + refine.margin_misses > 0 {
        trace.emit(
            "refine/decode",
            0,
            &[
                ("decoded_exact", refine.decoded_exact),
                ("margin_hits", refine.margin_hits),
                ("margin_misses", refine.margin_misses),
            ],
        );
    }
    timer.stop();
    run.phases.record(Phase::Filter, filter);
    run.phases.record(Phase::Refine, refine);
    run.seal("partition_join", &timer, trace);
    Ok(run)
}

/// Filter + refine for one tile. The Θ-filter runs as a forward-scan
/// plane sweep ([`sweep_candidates`]) over the tile's MBR lists instead
/// of an all-pairs loop, so `filter_evals` counts sweep comparisons —
/// still a pure function of the tile contents, hence thread-invariant.
/// `kernel` forces the scan onto one kernel; `None` auto-picks by tile
/// size (batched SoA masks once both lists clear the chunk threshold).
/// Geometries are fetched through `pool` only when a candidate survives
/// the Θ-filter *and* the reference-point rule, and are cached per tile
/// so each tuple is read at most once per tile it participates in.
#[allow(clippy::too_many_arguments)]
fn process_tile(
    tile: usize,
    grid: &TileGrid,
    eps: f64,
    theta: ThetaOp,
    r: &StoredRelation,
    s: &StoredRelation,
    r_mbrs: &[(u64, Rect)],
    s_mbrs: &[(u64, Rect)],
    r_list: &[u32],
    s_list: &[u32],
    pool: &mut BufferPool,
    timed: bool,
    kernel: Option<Kernel>,
) -> Result<TileOut, StorageError> {
    let t0 = timed.then(Instant::now);
    let mut out = TileOut::default();
    // Expanded R-side MBRs, computed once per tile list: they drive both
    // the sweep intervals and the reference-point rule, and must be the
    // exact same rectangles used for tile assignment in `pbsm_join`.
    let r_expanded: Vec<Rect> = r_list
        .iter()
        .map(|&i| r_mbrs[i as usize].1.expand(eps))
        .collect();
    let mut sweep_r: Vec<SweepItem> = r_list
        .iter()
        .enumerate()
        .map(|(pos, &i)| {
            SweepItem::with_sweep_rect(pos as u32, r_expanded[pos], r_mbrs[i as usize].1)
        })
        .collect();
    let mut sweep_s: Vec<SweepItem> = s_list
        .iter()
        .enumerate()
        .map(|(pos, &j)| SweepItem::new(pos as u32, s_mbrs[j as usize].1))
        .collect();

    // Per-tile refinement engine: exact decodes on uncompressed
    // relations, the margin-governed path when both sides carry a
    // quantized sidecar. Caches live per tile, exactly as the previous
    // per-tile geometry maps did.
    let mut refiner = MarginRefiner::new(r, s);
    let mut rstats = ExecStats::default();
    // Capture the first fault raised inside the sweep callback; once
    // set, no further geometry fetches are attempted and the tile's
    // outcome is discarded below (fail-stop, never a partial tile).
    let mut first_err: Option<StorageError> = None;
    let mut emit = |pi: u32, pj: u32| {
        if first_err.is_some() {
            return;
        }
        let i = r_list[pi as usize];
        let j = s_list[pj as usize];
        let (r_id, _) = r_mbrs[i as usize];
        let (s_id, s_mbr) = s_mbrs[j as usize];
        // Reference-point rule: of all tiles this candidate pair shares,
        // only the one containing the lower-left corner of the
        // expanded-MBR intersection refines it. The intersection is
        // non-empty whenever the filter passes (Euclidean min-distance
        // ≤ eps bounds both axis gaps by eps); if floating-point rounding
        // ever disagrees, the pair cannot be a true match either, so
        // skipping it is sound.
        let Some(inter) = r_expanded[pi as usize].intersection(&s_mbr) else {
            return;
        };
        if grid.tile_of_point(inter.lo) != tile {
            return;
        }
        match refiner.refine(pool, &theta, i, j, &mut rstats) {
            Ok(true) => out.pairs.push((r_id, s_id)),
            Ok(false) => {}
            Err(e) => first_err = Some(e),
        }
    };
    let comparisons = match kernel {
        Some(k) => sweep_candidates_with(&mut sweep_r, &mut sweep_s, theta, k, &mut emit),
        None => sweep_candidates(&mut sweep_r, &mut sweep_s, theta, &mut emit),
    };
    if let Some(e) = first_err {
        return Err(e);
    }
    out.filter_evals = comparisons;
    out.theta_evals = rstats.theta_evals;
    out.decoded_exact = rstats.decoded_exact;
    out.margin_hits = rstats.margin_hits;
    out.margin_misses = rstats.margin_misses;
    if let Some(t0) = t0 {
        out.dur_us = t0.elapsed().as_micros() as u64;
    }
    Ok(out)
}

/// Fallback for operators with unbounded Θ-filter regions (directional
/// predicates): a block-nested-loop join whose R chunks are processed in
/// parallel. Each R tuple belongs to exactly one chunk, so no
/// deduplication is needed; `theta_evals` totals `|R|·|S|` at every
/// thread count. With one thread this is exactly
/// [`nested_loop_join`](crate::nested_loop::nested_loop_join).
fn chunked_nested_loop(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    par: Parallelism,
    trace: &mut TraceSink,
) -> Result<JoinRun, StorageError> {
    if par.threads <= 1 {
        return crate::nested_loop::try_nested_loop_join_traced(pool, r, s, theta, trace);
    }
    let mut timer = PhaseTimer::for_sink(trace);
    let timed = trace.is_enabled();
    timer.enter(Phase::Partition);
    let window = pool.stats();
    let mut run = JoinRun::default();
    if r.is_empty() || s.is_empty() {
        let mut partition = ExecStats::default();
        partition.add_io(pool.stats().since(&window));
        timer.stop();
        run.phases.record(Phase::Partition, partition);
        run.seal("partition_join", &timer, trace);
        return Ok(run);
    }
    let shard_cap = (pool.capacity() / par.threads).max(4);
    let chunk_tuples = r.len().div_ceil(par.threads).max(1);
    let bounds: Vec<(usize, usize)> = (0..r.len())
        .step_by(chunk_tuples)
        .map(|lo| (lo, (lo + chunk_tuples).min(r.len())))
        .collect();
    // One pass per chunk, as in the sequential block-nested loop: the
    // chunk decomposition is the `partition` phase, the scans plus exact
    // θ-tests (all worker I/O included) the `refine` phase.
    let mut partition = ExecStats::default();
    timer.enter(Phase::Refine);
    let mut refine = ExecStats::default();
    let results = thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| {
                let mut shard = pool.fork_view(shard_cap);
                scope.spawn(move || {
                    let mut work = || -> Result<TileOut, StorageError> {
                        let t0 = timed.then(Instant::now);
                        let mut out = TileOut::default();
                        let chunk: Vec<(u64, Geometry)> = (lo..hi)
                            .map(|i| r.try_read_at(&mut shard, i))
                            .collect::<Result<_, _>>()?;
                        for j in 0..s.len() {
                            let (s_id, s_geom) = s.try_read_at(&mut shard, j)?;
                            for (r_id, r_geom) in &chunk {
                                out.theta_evals += 1;
                                if theta.eval(r_geom, &s_geom) {
                                    out.pairs.push((*r_id, s_id));
                                }
                            }
                        }
                        if let Some(t0) = t0 {
                            out.dur_us = t0.elapsed().as_micros() as u64;
                        }
                        Ok(out)
                    };
                    let result = work();
                    (result, shard.stats())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("nested-loop worker panicked"))
            .collect::<Vec<_>>()
    });
    // Coordinator-side merge in worker order: the first chunk's error
    // wins deterministically, independent of thread scheduling.
    let mut first_err: Option<StorageError> = None;
    for (w, (result, io)) in results.into_iter().enumerate() {
        refine.add_io(io);
        let out = match result {
            Ok(out) => out,
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
                continue;
            }
        };
        if trace.is_enabled() {
            let mut ws = ExecStats {
                theta_evals: out.theta_evals,
                ..Default::default()
            };
            ws.add_io(io);
            trace.emit(
                &format!("partition_join/worker:{w}"),
                out.dur_us,
                &ws.counters(),
            );
        }
        run.pairs.extend(out.pairs);
        refine.theta_evals += out.theta_evals;
        partition.passes += 1;
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    refine.add_io(pool.stats().since(&window));
    timer.stop();
    run.phases.record(Phase::Partition, partition);
    run.phases.record(Phase::Refine, refine);
    run.seal("partition_join", &timer, trace);
    Ok(run)
}

/// Parallel Algorithm JOIN over two stored generalization trees: the
/// independent subproblems `subtree(aᵢ) × subtree(root_S)` — one per
/// top-level subtree `aᵢ` of R — run on worker threads via
/// [`sj_gentree::join::join_pair`], each charging record-touch I/O to its
/// own pool shard.
///
/// Returns exactly the match set of [`tree_join`] (as a set). Falls back
/// to the sequential [`tree_join`] byte-for-byte when `threads == 1`,
/// when either root carries an application object (degenerate
/// single-object trees), or when R's root has fewer than two subtrees to
/// split.
pub fn parallel_tree_join(
    pool: &mut BufferPool,
    r: &TreeRelation,
    s: &TreeRelation,
    theta: ThetaOp,
    par: Parallelism,
) -> JoinRun {
    parallel_tree_join_traced(pool, r, s, theta, par, &mut TraceSink::Null)
}

/// [`parallel_tree_join`] with phase instrumentation: node touches (all
/// worker-shard I/O included) are the `index-probe` phase, MBR filter
/// gates the `filter` phase, exact θ-tests the `refine` phase. When the
/// sink is live, each worker additionally emits a
/// `parallel_tree_join/worker:<w>` span in deterministic chunk order.
pub fn parallel_tree_join_traced(
    pool: &mut BufferPool,
    r: &TreeRelation,
    s: &TreeRelation,
    theta: ThetaOp,
    par: Parallelism,
    trace: &mut TraceSink,
) -> JoinRun {
    try_parallel_tree_join_traced(pool, r, s, theta, par, trace)
        .unwrap_or_else(|e| panic!("parallel tree join failed: {e}"))
}

/// Fail-stop [`parallel_tree_join_traced`]: the first faulted node touch
/// — on the coordinator or any worker shard — aborts the run with a
/// typed error, with the same deterministic first-chunk-wins merge as
/// [`try_partition_join_traced`].
pub fn try_parallel_tree_join_traced(
    pool: &mut BufferPool,
    r: &TreeRelation,
    s: &TreeRelation,
    theta: ThetaOp,
    par: Parallelism,
    trace: &mut TraceSink,
) -> Result<JoinRun, StorageError> {
    let (root_r, root_s) = (r.tree.root(), s.tree.root());
    let top: Vec<_> = r.tree.children(root_r).to_vec();
    if par.threads <= 1
        || r.tree.entry(root_r).is_some()
        || s.tree.entry(root_s).is_some()
        || top.len() < 2
    {
        return try_tree_join_traced(pool, r, s, theta, trace);
    }

    let mut timer = PhaseTimer::for_sink(trace);
    let timed = trace.is_enabled();
    timer.enter(Phase::IndexProbe);
    let window = pool.stats();
    let mut run = JoinRun::default();
    let mut probe = ExecStats {
        passes: 1,
        ..Default::default()
    };
    let mut filter = ExecStats::default();
    let mut refine = ExecStats::default();

    // The root pair itself is handled on the calling thread (it has no
    // application objects by the check above, so only the filter gate
    // remains).
    r.paged.try_touch_io(pool, root_r)?;
    s.paged.try_touch_io(pool, root_s)?;
    filter.filter_evals += 1;
    if theta.filter(&r.tree.mbr(root_r), &s.tree.mbr(root_s)) {
        timer.enter(Phase::Filter);
        let shard_cap = (pool.capacity() / par.threads).max(4);
        let chunk_len = top.len().div_ceil(par.threads).max(1);
        let results = thread::scope(|scope| {
            let handles: Vec<_> = top
                .chunks(chunk_len)
                .map(|chunk| {
                    let shard = pool.fork_view(shard_cap);
                    scope.spawn(move || {
                        let t0 = timed.then(Instant::now);
                        let shard_cell = std::cell::RefCell::new(shard);
                        let mut pairs = Vec::new();
                        let mut filter_evals = 0u64;
                        let mut theta_evals = 0u64;
                        // Stop at the worker's first fault; partial
                        // results are discarded by the coordinator.
                        let mut err: Option<StorageError> = None;
                        for &a in chunk {
                            match sj_gentree::join::try_join_pair_flat(
                                &r.tree,
                                Some(&r.flat),
                                &s.tree,
                                Some(&s.flat),
                                a,
                                root_s,
                                1,
                                theta,
                                |node| {
                                    r.paged
                                        .try_touch_io(&mut shard_cell.borrow_mut(), node)
                                        .map(|_| ())
                                },
                                |node| {
                                    s.paged
                                        .try_touch_io(&mut shard_cell.borrow_mut(), node)
                                        .map(|_| ())
                                },
                            ) {
                                Ok(outcome) => {
                                    pairs.extend(outcome.pairs);
                                    filter_evals += outcome.stats.filter_evals;
                                    theta_evals += outcome.stats.theta_evals;
                                }
                                Err(e) => {
                                    err = Some(e);
                                    break;
                                }
                            }
                        }
                        (
                            pairs,
                            filter_evals,
                            theta_evals,
                            err,
                            shard_cell.into_inner().stats(),
                            t0.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tree-join worker panicked"))
                .collect::<Vec<_>>()
        });
        // Coordinator-side merge in spawn (= chunk) order keeps the
        // stats totals, the span stream, and the surfaced error
        // deterministic.
        let mut first_err: Option<StorageError> = None;
        for (w, (pairs, filter_evals, theta_evals, err, io, dur_us)) in
            results.into_iter().enumerate()
        {
            if trace.is_enabled() {
                let mut ws = ExecStats {
                    filter_evals,
                    theta_evals,
                    ..Default::default()
                };
                ws.add_io(io);
                trace.emit(
                    &format!("parallel_tree_join/worker:{w}"),
                    dur_us,
                    &ws.counters(),
                );
            }
            run.pairs.extend(pairs);
            filter.filter_evals += filter_evals;
            refine.theta_evals += theta_evals;
            probe.add_io(io);
            if first_err.is_none() {
                first_err = err;
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
    }
    probe.add_io(pool.stats().since(&window));
    timer.stop();
    run.phases.record(Phase::IndexProbe, probe);
    run.phases.record(Phase::Filter, filter);
    run.phases.record(Phase::Refine, refine);
    run.seal("parallel_tree_join", &timer, trace);
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested_loop::nested_loop_join;
    use crate::tree_join::tree_join;
    use sj_gentree::rtree::{RTree, RTreeConfig};
    use sj_geom::Direction;
    use sj_storage::{Disk, DiskConfig, Layout};

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), frames)
    }

    fn sorted(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        v.sort_unstable();
        v
    }

    /// Deterministic mixed point/rect workload spread over the world.
    fn mixed_rel(pool: &mut BufferPool, n: usize, id0: u64, salt: u64) -> StoredRelation {
        let tuples: Vec<(u64, Geometry)> = (0..n)
            .map(|i| {
                let k = (i as u64).wrapping_mul(2654435761).wrapping_add(salt);
                let x = (k % 1000) as f64;
                let y = (k / 1000 % 1000) as f64;
                let g = if i % 3 == 0 {
                    Geometry::Point(Point::new(x, y))
                } else {
                    let w = (k % 23) as f64;
                    let h = (k % 17) as f64;
                    Geometry::Rect(Rect::from_bounds(x, y, x + w, y + h))
                };
                (id0 + i as u64, g)
            })
            .collect();
        StoredRelation::build(pool, &tuples, 300, Layout::Clustered)
    }

    #[test]
    fn partition_join_matches_nested_loop_across_operators() {
        let mut p = pool(64);
        let r = mixed_rel(&mut p, 120, 0, 7);
        let s = mixed_rel(&mut p, 140, 10_000, 99);
        for theta in [
            ThetaOp::WithinDistance(25.0),
            ThetaOp::WithinCenterDistance(40.0),
            ThetaOp::Overlaps,
            ThetaOp::Includes,
            ThetaOp::ContainedIn,
            ThetaOp::Adjacent,
            ThetaOp::ReachableWithin {
                minutes: 10.0,
                speed: 3.0,
            },
            ThetaOp::DirectionOf(Direction::NorthWest),
        ] {
            let want = sorted(nested_loop_join(&mut p, &r, &s, theta).pairs);
            for threads in [1, 2, 3, 8] {
                let got = sorted(
                    partition_join(&mut p, &r, &s, theta, Parallelism::with_threads(threads)).pairs,
                );
                assert_eq!(got, want, "theta {theta:?} with {threads} threads");
            }
        }
    }

    #[test]
    fn comparison_totals_are_thread_invariant() {
        let mut p = pool(64);
        let r = mixed_rel(&mut p, 150, 0, 3);
        let s = mixed_rel(&mut p, 150, 5_000, 11);
        let theta = ThetaOp::WithinDistance(15.0);
        let seq = partition_join(&mut p, &r, &s, theta, Parallelism::sequential());
        for threads in [2, 4, 8] {
            let par = partition_join(&mut p, &r, &s, theta, Parallelism::with_threads(threads));
            assert_eq!(
                par.stats.comparisons(),
                seq.stats.comparisons(),
                "{threads} threads"
            );
            assert_eq!(par.stats.filter_evals, seq.stats.filter_evals);
            assert_eq!(par.stats.theta_evals, seq.stats.theta_evals);
            // Identical tile order means identical pair order, too.
            assert_eq!(par.pairs, seq.pairs);
        }
    }

    #[test]
    fn reference_point_rule_handles_tile_border_duplicates() {
        // Large rectangles spanning many tiles joined against each other:
        // every candidate pair shares many tiles and must be reported
        // exactly once.
        let mut p = pool(64);
        let r_tuples: Vec<(u64, Geometry)> = (0..40)
            .map(|i| {
                let x = (i % 8) as f64 * 120.0;
                let y = (i / 8) as f64 * 190.0;
                (
                    i as u64,
                    Geometry::Rect(Rect::from_bounds(x, y, x + 400.0, y + 350.0)),
                )
            })
            .collect();
        let s_tuples: Vec<(u64, Geometry)> = (0..40)
            .map(|i| {
                let x = (i % 5) as f64 * 170.0 + 60.0;
                let y = (i / 5) as f64 * 110.0 + 45.0;
                (
                    1_000 + i as u64,
                    Geometry::Rect(Rect::from_bounds(x, y, x + 380.0, y + 300.0)),
                )
            })
            .collect();
        let r = StoredRelation::build(&mut p, &r_tuples, 300, Layout::Clustered);
        let s = StoredRelation::build(&mut p, &s_tuples, 300, Layout::Clustered);
        let theta = ThetaOp::Overlaps;
        let want = sorted(nested_loop_join(&mut p, &r, &s, theta).pairs);
        for threads in [1, 4] {
            let run = partition_join(&mut p, &r, &s, theta, Parallelism::with_threads(threads));
            let mut got = run.pairs.clone();
            let n_raw = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(got.len(), n_raw, "duplicate pairs emitted");
            assert_eq!(got, want);
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut p = pool(16);
        let empty = StoredRelation::build(&mut p, &[], 300, Layout::Clustered);
        let r = mixed_rel(&mut p, 10, 0, 1);
        for threads in [1, 4] {
            let par = Parallelism::with_threads(threads);
            assert!(partition_join(&mut p, &empty, &r, ThetaOp::Overlaps, par)
                .pairs
                .is_empty());
            assert!(partition_join(&mut p, &r, &empty, ThetaOp::Overlaps, par)
                .pairs
                .is_empty());
        }
    }

    fn grid_tree(pool: &mut BufferPool, n: usize, step: f64, id0: u64) -> TreeRelation {
        let entries: Vec<(u64, Geometry)> = (0..n * n)
            .map(|i| {
                (
                    id0 + i as u64,
                    Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
                )
            })
            .collect();
        let rt = RTree::bulk_load(RTreeConfig::with_fanout(5), entries);
        TreeRelation::new(pool, rt.tree().clone(), 300, Layout::Clustered)
    }

    #[test]
    fn parallel_tree_join_matches_sequential() {
        let mut p = pool(128);
        let r = grid_tree(&mut p, 7, 10.0, 0);
        let s = grid_tree(&mut p, 7, 10.0, 1_000);
        for theta in [ThetaOp::WithinDistance(10.5), ThetaOp::Overlaps] {
            let want = sorted(tree_join(&mut p, &r, &s, theta).pairs);
            for threads in [1, 2, 4] {
                let got = sorted(
                    parallel_tree_join(&mut p, &r, &s, theta, Parallelism::with_threads(threads))
                        .pairs,
                );
                assert_eq!(got, want, "theta {theta:?} with {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_tree_join_charges_io() {
        let mut p = pool(128);
        let r = grid_tree(&mut p, 6, 10.0, 0);
        let s = grid_tree(&mut p, 6, 10.0, 1_000);
        p.clear();
        p.reset_stats();
        let run = parallel_tree_join(
            &mut p,
            &r,
            &s,
            ThetaOp::WithinDistance(10.5),
            Parallelism::with_threads(4),
        );
        assert!(!run.pairs.is_empty());
        assert!(run.stats.physical_reads > 0);
        assert!(run.stats.theta_evals > 0);
        assert!(run.stats.filter_evals > 0);
    }

    #[test]
    fn parallelism_constructors() {
        assert_eq!(Parallelism::sequential().threads, 1);
        assert!(Parallelism::auto().threads >= 1);
        assert_eq!(Parallelism::with_threads(6).threads, 6);
        assert!(Parallelism::default().threads >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Parallelism::with_threads(0);
    }

    #[test]
    fn tile_grid_maps_are_consistent_on_borders() {
        let grid = TileGrid::new(Rect::from_bounds(0.0, 0.0, 100.0, 100.0), 10, 10);
        // A rect ending exactly on a tile border and a point on that
        // border must agree about which tile the border belongs to.
        let r = Rect::from_bounds(5.0, 5.0, 30.0, 30.0);
        let tiles: Vec<usize> = grid.tiles_overlapping(&r).collect();
        assert!(tiles.contains(&grid.tile_of_point(Point::new(30.0, 30.0))));
        assert!(tiles.contains(&grid.tile_of_point(Point::new(5.0, 5.0))));
        // Degenerate world: everything maps to tile 0.
        let flat = TileGrid::new(Rect::from_bounds(3.0, 4.0, 3.0, 4.0), 4, 4);
        assert_eq!(flat.tile_of_point(Point::new(3.0, 4.0)), 0);
        assert_eq!(
            flat.tiles_overlapping(&Rect::from_bounds(3.0, 4.0, 3.0, 4.0))
                .collect::<Vec<_>>(),
            vec![0]
        );
    }

    /// Satellite audit: the boundary convention is half-open — a
    /// coordinate exactly on the edge shared by tiles k-1 and k belongs
    /// to tile k, except the world's max edge which saturates into the
    /// last tile. This is the convention the reference-point rule and the
    /// shard router both rely on for single-ownership of boundary pairs.
    #[test]
    fn tile_boundary_convention_is_half_open() {
        let grid = TileGrid::new(Rect::from_bounds(0.0, 0.0, 100.0, 100.0), 10, 10);
        // Interior shared edge x = 30 belongs to the higher tile (3).
        assert_eq!(grid.tile_x_of(30.0), 3);
        assert_eq!(grid.tile_x_of(30.0 - 1e-9), 2);
        assert_eq!(grid.tile_y_of(70.0), 7);
        assert_eq!(grid.tile_y_of(70.0 - 1e-9), 6);
        // The world's min edge opens the first tile.
        assert_eq!(grid.tile_x_of(0.0), 0);
        // The world's max edge has no higher tile: it saturates into the
        // last one instead of falling off the grid.
        assert_eq!(grid.tile_x_of(100.0), 9);
        assert_eq!(grid.tile_y_of(100.0), 9);
        // Out-of-world coordinates clamp to the border tiles.
        assert_eq!(grid.tile_x_of(-5.0), 0);
        assert_eq!(grid.tile_x_of(250.0), 9);
        assert_eq!(grid.tile_y_of(f64::NAN), 0);
    }

    /// A reference point landing exactly on a shared tile edge (or
    /// corner) is owned by exactly one tile, and that tile is always in
    /// the overlap range of any rect containing the point — so exactly
    /// one worker/shard emits the pair.
    #[test]
    fn boundary_reference_point_has_exactly_one_owner() {
        let grid = TileGrid::new(Rect::from_bounds(0.0, 0.0, 100.0, 100.0), 10, 10);
        for p in [
            Point::new(30.0, 50.0),   // on a vertical shared edge
            Point::new(50.0, 30.0),   // on a horizontal shared edge
            Point::new(30.0, 30.0),   // on a shared corner
            Point::new(0.0, 0.0),     // world min corner
            Point::new(100.0, 100.0), // world max corner
            Point::new(100.0, 40.0),  // world max edge, interior row
        ] {
            let owner = grid.tile_of_point(p);
            // Every tile whose closed rect contains p must include the
            // owner in its overlap set; counting owners across the whole
            // grid via tile_of_point yields exactly one by construction,
            // so instead verify consistency: any rect touching p covers
            // the owner tile.
            let probe = Rect::from_bounds(p.x, p.y, p.x, p.y);
            let covering: Vec<usize> = grid.tiles_overlapping(&probe).collect();
            assert_eq!(covering, vec![owner], "point {p:?}");
        }
    }

    /// Reference points engineered to land exactly on shared tile edges:
    /// the parallel join must still match nested loop with no duplicates.
    /// With 16 tuples total, `tiles_per_axis` clamps to 2, so the grid
    /// lines of the union world [0,100]² sit at x = 50 / y = 50; the S
    /// rects start exactly there, putting each intersection's lo corner
    /// (the reference point) exactly on a shared edge or corner.
    #[test]
    fn partition_join_exact_on_boundary_reference_points() {
        let mut p = pool(64);
        let r_rects = [
            (0.0, 0.0, 50.0, 50.0), // the four quadrants pin the world to [0,100]²
            (50.0, 0.0, 100.0, 50.0),
            (0.0, 50.0, 50.0, 100.0),
            (50.0, 50.0, 100.0, 100.0),
            (25.0, 25.0, 50.0, 50.0), // hi corner exactly on the grid cross
            (0.0, 25.0, 50.0, 75.0),
            (25.0, 50.0, 75.0, 100.0),
            (50.0, 25.0, 100.0, 75.0),
        ];
        let s_rects = [
            (50.0, 50.0, 60.0, 60.0), // lo corner exactly on the grid cross
            (50.0, 0.0, 60.0, 10.0),
            (0.0, 50.0, 10.0, 60.0),
            (50.0, 25.0, 100.0, 75.0),
            (25.0, 50.0, 75.0, 100.0),
            (50.0, 50.0, 100.0, 100.0),
            (40.0, 50.0, 60.0, 70.0),
            (50.0, 40.0, 70.0, 60.0),
        ];
        let r_tuples: Vec<(u64, Geometry)> = r_rects
            .iter()
            .enumerate()
            .map(|(i, &(a, b, c, d))| (i as u64, Geometry::Rect(Rect::from_bounds(a, b, c, d))))
            .collect();
        let s_tuples: Vec<(u64, Geometry)> = s_rects
            .iter()
            .enumerate()
            .map(|(i, &(a, b, c, d))| {
                (
                    1_000 + i as u64,
                    Geometry::Rect(Rect::from_bounds(a, b, c, d)),
                )
            })
            .collect();
        let r = StoredRelation::build(&mut p, &r_tuples, 300, Layout::Clustered);
        let s = StoredRelation::build(&mut p, &s_tuples, 300, Layout::Clustered);
        for theta in [ThetaOp::Overlaps, ThetaOp::WithinDistance(5.0)] {
            let want = sorted(nested_loop_join(&mut p, &r, &s, theta).pairs);
            for threads in [1, 2, 4] {
                let run = partition_join(&mut p, &r, &s, theta, Parallelism::with_threads(threads));
                let mut got = run.pairs.clone();
                let n_raw = got.len();
                got.sort_unstable();
                got.dedup();
                assert_eq!(got.len(), n_raw, "boundary pair emitted twice ({theta:?})");
                assert_eq!(got, want, "theta {theta:?} with {threads} threads");
            }
        }
    }

    /// Satellite fix: `tiles_per_axis` is clamped so tiny inputs never
    /// degenerate to a single tile and huge inputs stop at 64 per axis.
    #[test]
    fn tiles_per_axis_is_clamped_and_monotone() {
        assert_eq!(tiles_per_axis(0), 2);
        assert_eq!(tiles_per_axis(1), 2);
        assert_eq!(tiles_per_axis(511), 2);
        assert_eq!(tiles_per_axis(usize::MAX / 2), 64);
        let mut prev = 0;
        for n in [0, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000] {
            let t = tiles_per_axis(n);
            assert!((2..=64).contains(&t), "tiles_per_axis({n}) = {t}");
            assert!(t >= prev, "tiles_per_axis not monotone at {n}");
            prev = t;
        }
    }
}
