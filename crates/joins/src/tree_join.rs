//! Strategy II: hierarchical SELECT / JOIN over stored generalization
//! trees. The IIa/IIb distinction is purely the [`Layout`] the
//! [`TreeRelation`] was stored with.
//!
//! [`Layout`]: sj_storage::Layout

use sj_gentree::{join, select};
use sj_geom::{Geometry, Kernel, ThetaOp};
use sj_obs::{Phase, PhaseTimer, TraceSink};
use sj_storage::{BufferPool, StorageError};

use crate::paged_tree::TreeRelation;
use crate::stats::{ExecStats, JoinRun, SelectRun};

/// Traversal order for the stored SELECT executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalOrder {
    /// The paper's Algorithm SELECT (level by level).
    BreadthFirst,
    /// The §3.2 alternative.
    DepthFirst,
}

/// Algorithm SELECT over a stored tree, charging one record read per node
/// visit.
pub fn tree_select(
    pool: &mut BufferPool,
    r: &TreeRelation,
    o: &Geometry,
    theta: ThetaOp,
    order: TraversalOrder,
) -> SelectRun {
    try_tree_select(pool, r, o, theta, order).unwrap_or_else(|e| panic!("tree select failed: {e}"))
}

/// Fail-stop [`tree_select`]: the first faulted node touch aborts the
/// run with a typed error (no partial match set).
pub fn try_tree_select(
    pool: &mut BufferPool,
    r: &TreeRelation,
    o: &Geometry,
    theta: ThetaOp,
    order: TraversalOrder,
) -> Result<SelectRun, StorageError> {
    let before = pool.stats();
    // Descend through the relation's flattened child-MBR snapshot: one
    // SoA mask call per chunk of siblings instead of per-child scalar
    // filters (identical matches and counters either way).
    let outcome = match order {
        TraversalOrder::BreadthFirst => {
            select::try_select_flat(&r.tree, Some(&r.flat), o, theta, |node| {
                r.paged.try_touch_io(pool, node)
            })?
        }
        TraversalOrder::DepthFirst => {
            select::try_select_dfs_flat(&r.tree, Some(&r.flat), o, theta, |node| {
                r.paged.try_touch_io(pool, node)
            })?
        }
    };
    let mut run = SelectRun {
        matches: outcome.matches,
        stats: Default::default(),
    };
    run.stats.theta_evals = outcome.stats.theta_evals;
    run.stats.filter_evals = outcome.stats.filter_evals;
    run.stats.passes = 1;
    run.stats.add_io(pool.stats().since(&before));
    Ok(run)
}

/// Algorithm JOIN over two stored trees, charging record reads per node
/// visit on both sides. Re-visits that hit the buffer pool are free, which
/// is exactly the role the paper's memory-pass argument plays in `D_II`.
pub fn tree_join(
    pool: &mut BufferPool,
    r: &TreeRelation,
    s: &TreeRelation,
    theta: ThetaOp,
) -> JoinRun {
    tree_join_traced(pool, r, s, theta, &mut TraceSink::Null)
}

/// [`tree_join`] with phase instrumentation: node touches (the stored
/// tree's record I/O) are the `index-probe` phase, Θ-filter work the
/// `filter` phase, θ-evaluations the `refine` phase. With an observing
/// sink, one `tree_join/level:<depth>` span per tree level reports the
/// traversal's per-level visit and comparison histograms.
pub fn tree_join_traced(
    pool: &mut BufferPool,
    r: &TreeRelation,
    s: &TreeRelation,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> JoinRun {
    try_tree_join_traced(pool, r, s, theta, trace)
        .unwrap_or_else(|e| panic!("tree join failed: {e}"))
}

/// Fail-stop [`tree_join_traced`]: the first faulted node touch on
/// either side aborts the run with a typed error.
pub fn try_tree_join_traced(
    pool: &mut BufferPool,
    r: &TreeRelation,
    s: &TreeRelation,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> Result<JoinRun, StorageError> {
    try_tree_join_with(pool, r, s, theta, trace, Kernel::Batched)
}

/// [`try_tree_join_traced`] with an explicit filter kernel: `Batched`
/// probes both trees' flattened child-MBR snapshots through the SoA mask
/// kernels, `Scalar` pins the per-child scalar filter loop. Both produce
/// byte-identical pairs and counters — the knob exists for A/B
/// measurement (`simd_scaling`).
pub fn try_tree_join_with(
    pool: &mut BufferPool,
    r: &TreeRelation,
    s: &TreeRelation,
    theta: ThetaOp,
    trace: &mut TraceSink,
    kernel: Kernel,
) -> Result<JoinRun, StorageError> {
    let mut timer = PhaseTimer::for_sink(trace);
    timer.enter(Phase::IndexProbe);
    let window = pool.stats();
    let (flat_r, flat_s) = match kernel {
        Kernel::Batched => (Some(&r.flat), Some(&s.flat)),
        Kernel::Scalar => (None, None),
    };
    // Both visitor callbacks need the pool; a local RefCell arbitrates the
    // (strictly alternating, single-threaded) accesses.
    let pool_cell = std::cell::RefCell::new(&mut *pool);
    let outcome = join::try_join_flat(
        &r.tree,
        flat_r,
        &s.tree,
        flat_s,
        theta,
        |node| {
            r.paged
                .try_touch_io(&mut pool_cell.borrow_mut(), node)
                .map(|_| ())
        },
        |node| {
            s.paged
                .try_touch_io(&mut pool_cell.borrow_mut(), node)
                .map(|_| ())
        },
    )?;
    timer.stop();
    let mut run = JoinRun {
        pairs: outcome.pairs,
        ..Default::default()
    };
    let mut probe = ExecStats {
        passes: 1,
        ..Default::default()
    };
    probe.add_io(pool.stats().since(&window));
    run.phases.record(Phase::IndexProbe, probe);
    run.phases.record(
        Phase::Filter,
        ExecStats {
            filter_evals: outcome.stats.filter_evals,
            ..Default::default()
        },
    );
    run.phases.record(
        Phase::Refine,
        ExecStats {
            theta_evals: outcome.stats.theta_evals,
            ..Default::default()
        },
    );
    if trace.is_enabled() {
        for (depth, &visits) in outcome.stats.visited_per_level.iter().enumerate() {
            let evals = outcome
                .stats
                .evals_per_level
                .get(depth)
                .copied()
                .unwrap_or(0);
            trace.emit(
                &format!("tree_join/level:{depth}"),
                0,
                &[("nodes_visited", visits), ("comparisons", evals)],
            );
        }
    }
    run.seal("tree_join", &timer, trace);
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_gentree::rtree::{RTree, RTreeConfig};
    use sj_geom::{Point, Rect};
    use sj_storage::{Disk, DiskConfig, Layout};

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), frames)
    }

    fn grid_tree(
        pool: &mut BufferPool,
        n: usize,
        step: f64,
        id0: u64,
        layout: Layout,
    ) -> TreeRelation {
        let entries: Vec<(u64, Geometry)> = (0..n * n)
            .map(|i| {
                (
                    id0 + i as u64,
                    Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
                )
            })
            .collect();
        let rt = RTree::bulk_load(RTreeConfig::with_fanout(5), entries);
        TreeRelation::new(pool, rt.tree().clone(), 300, layout)
    }

    #[test]
    fn select_bfs_and_dfs_agree() {
        let mut p = pool(64);
        let r = grid_tree(&mut p, 8, 10.0, 0, Layout::Clustered);
        let o = Geometry::Point(Point::new(35.0, 35.0));
        let theta = ThetaOp::WithinDistance(12.0);
        let mut bfs = tree_select(&mut p, &r, &o, theta, TraversalOrder::BreadthFirst).matches;
        let mut dfs = tree_select(&mut p, &r, &o, theta, TraversalOrder::DepthFirst).matches;
        bfs.sort_unstable();
        dfs.sort_unstable();
        assert_eq!(bfs, dfs);
        assert!(!bfs.is_empty());
    }

    #[test]
    fn clustered_layout_reads_fewer_pages_than_unclustered() {
        // Small pool so scattered placement hurts.
        let mut pc = pool(8);
        let rc = grid_tree(&mut pc, 12, 5.0, 0, Layout::Clustered);
        let mut pu = pool(8);
        let ru = grid_tree(&mut pu, 12, 5.0, 0, Layout::Unclustered { seed: 3 });

        let o = Geometry::Rect(Rect::from_bounds(10.0, 10.0, 40.0, 40.0));
        let theta = ThetaOp::Overlaps;

        pc.clear();
        pc.reset_stats();
        let run_c = tree_select(&mut pc, &rc, &o, theta, TraversalOrder::BreadthFirst);
        pu.clear();
        pu.reset_stats();
        let run_u = tree_select(&mut pu, &ru, &o, theta, TraversalOrder::BreadthFirst);

        assert_eq!(
            {
                let mut a = run_c.matches.clone();
                a.sort_unstable();
                a
            },
            {
                let mut b = run_u.matches.clone();
                b.sort_unstable();
                b
            }
        );
        assert!(
            run_c.stats.physical_reads <= run_u.stats.physical_reads,
            "clustered {} vs unclustered {}",
            run_c.stats.physical_reads,
            run_u.stats.physical_reads
        );
    }

    #[test]
    fn join_matches_nested_loop_reference() {
        let mut p = pool(64);
        let r = grid_tree(&mut p, 6, 10.0, 0, Layout::Clustered);
        let s = grid_tree(&mut p, 6, 10.0, 1000, Layout::Clustered);
        let theta = ThetaOp::WithinDistance(10.5);
        p.clear();
        p.reset_stats();
        let run = tree_join(&mut p, &r, &s, theta);
        let mut got = run.pairs.clone();
        got.sort_unstable();
        let mut want = sj_gentree::join::join_exhaustive(&r.tree, &s.tree, theta).pairs;
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(run.stats.physical_reads > 0);
        assert!(
            run.stats.theta_evals < (36 * 36) as u64,
            "pruning must help"
        );
    }
}
