//! Grid-partitioned spatial join — the index-supported baseline the paper
//! credits to Rotem (\[Rote91\]) over the grid file (\[Niev84\]) of §2.2.
//!
//! Both relations are hashed into the cells of a uniform grid; candidate
//! pairs are the co-resident tuples of each cell (deduplicated, since
//! extended objects span several cells), refined with the exact θ.
//! Distance operators are handled by expanding the `R`-side cell
//! assignment by the distance bound, so every matching pair shares at
//! least one cell.

use std::collections::HashSet;

use sj_geom::{Bounded, Rect, ThetaOp};
use sj_obs::{Phase, PhaseTimer, TraceSink};
use sj_storage::{BufferPool, StorageError};

use crate::relation::StoredRelation;
use crate::stats::{ExecStats, JoinRun};

/// Grid geometry for [`grid_join`].
#[derive(Debug, Clone, Copy)]
pub struct GridConfig {
    /// World rectangle covered by the grid.
    pub world: Rect,
    /// Cells along x.
    pub nx: u32,
    /// Cells along y.
    pub ny: u32,
}

impl GridConfig {
    fn cell_span(&self, mbr: &Rect) -> Option<(u32, u32, u32, u32)> {
        let clipped = self.world.intersection(mbr)?;
        let w = self.world.width() / self.nx as f64;
        let h = self.world.height() / self.ny as f64;
        let cx0 = (((clipped.lo.x - self.world.lo.x) / w).floor() as i64)
            .clamp(0, (self.nx - 1) as i64) as u32;
        let cy0 = (((clipped.lo.y - self.world.lo.y) / h).floor() as i64)
            .clamp(0, (self.ny - 1) as i64) as u32;
        let cx1 = (((clipped.hi.x - self.world.lo.x) / w).floor() as i64)
            .clamp(0, (self.nx - 1) as i64) as u32;
        let cy1 = (((clipped.hi.y - self.world.lo.y) / h).floor() as i64)
            .clamp(0, (self.ny - 1) as i64) as u32;
        Some((cx0, cy0, cx1, cy1))
    }
}

/// The distance by which the Θ-filter of `theta` extends beyond MBR
/// overlap, or `None` for operators a shared-cell grid cannot support
/// (directional predicates have unbounded filter regions).
fn filter_slack(theta: ThetaOp) -> Option<f64> {
    match theta {
        ThetaOp::Overlaps | ThetaOp::Includes | ThetaOp::ContainedIn => Some(0.0),
        ThetaOp::WithinDistance(d) | ThetaOp::WithinCenterDistance(d) => Some(d),
        ThetaOp::ReachableWithin { minutes, speed } => Some(minutes * speed),
        ThetaOp::Adjacent => Some(sj_geom::EPSILON),
        ThetaOp::DirectionOf(_) => None,
    }
}

/// Grid-partitioned join `R ⋈_θ S`.
///
/// # Panics
///
/// Panics for directional θ-operators, whose qualifying region is a
/// half-plane and cannot be localized to grid cells.
pub fn grid_join(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    config: GridConfig,
    theta: ThetaOp,
) -> JoinRun {
    grid_join_traced(pool, r, s, config, theta, &mut TraceSink::Null)
}

/// [`grid_join`] with phase instrumentation: the scans plus cell
/// bucketing are the `partition` phase, cell-probing the `filter` phase
/// (cell co-residency needs no per-pair comparisons, so it carries only
/// wall-clock time), exact θ-tests the `refine` phase.
pub fn grid_join_traced(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    config: GridConfig,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> JoinRun {
    try_grid_join_traced(pool, r, s, config, theta, trace)
        .unwrap_or_else(|e| panic!("grid join failed: {e}"))
}

/// Fail-stop [`grid_join_traced`]: the first storage fault aborts the
/// run with a typed error. Still panics on directional θ-operators —
/// an unsupported operator is a logic error, not a storage fault.
pub fn try_grid_join_traced(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    config: GridConfig,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> Result<JoinRun, StorageError> {
    let slack = filter_slack(theta).unwrap_or_else(|| {
        panic!("grid join cannot support {theta:?}: its filter region is unbounded")
    });
    let mut timer = PhaseTimer::for_sink(trace);
    timer.enter(Phase::Partition);
    let window = pool.stats();
    let mut run = JoinRun::default();
    let mut partition = ExecStats {
        passes: 1,
        ..Default::default()
    };

    let r_rows = r.try_scan(pool)?;
    let s_rows = s.try_scan(pool)?;

    // Bucket S by cell.
    let cells = (config.nx as usize) * (config.ny as usize);
    let mut s_cells: Vec<Vec<usize>> = vec![Vec::new(); cells];
    for (idx, (_, g)) in s_rows.iter().enumerate() {
        if let Some((x0, y0, x1, y1)) = config.cell_span(&g.mbr()) {
            for cy in y0..=y1 {
                for cx in x0..=x1 {
                    s_cells[(cy * config.nx + cx) as usize].push(idx);
                }
            }
        }
    }

    partition.add_io(pool.stats().since(&window));
    run.phases.record(Phase::Partition, partition);

    // Probe with R, expanding by the filter slack so distance matches
    // land in a shared cell.
    timer.enter(Phase::Filter);
    let mut candidates: HashSet<(usize, usize)> = HashSet::new();
    for (r_idx, (_, g)) in r_rows.iter().enumerate() {
        let probe = g.mbr().expand(slack);
        if let Some((x0, y0, x1, y1)) = config.cell_span(&probe) {
            for cy in y0..=y1 {
                for cx in x0..=x1 {
                    for &s_idx in &s_cells[(cy * config.nx + cx) as usize] {
                        candidates.insert((r_idx, s_idx));
                    }
                }
            }
        }
    }

    timer.enter(Phase::Refine);
    let mut refine = ExecStats::default();
    let mut pairs: Vec<(usize, usize)> = candidates.into_iter().collect();
    pairs.sort_unstable();
    for (ri, si) in pairs {
        refine.theta_evals += 1;
        let (r_id, r_geom) = &r_rows[ri];
        let (s_id, s_geom) = &s_rows[si];
        if theta.eval(r_geom, s_geom) {
            run.pairs.push((*r_id, *s_id));
        }
    }
    timer.stop();
    run.phases.record(Phase::Refine, refine);
    run.seal("grid", &timer, trace);
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested_loop::nested_loop_join;
    use sj_geom::{Geometry, Point};
    use sj_storage::{Disk, DiskConfig, Layout};

    fn pool() -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), 64)
    }

    fn cfg() -> GridConfig {
        GridConfig {
            world: Rect::from_bounds(0.0, 0.0, 100.0, 100.0),
            nx: 10,
            ny: 10,
        }
    }

    fn points_rel(pool: &mut BufferPool, n: usize, step: f64, id0: u64) -> StoredRelation {
        let tuples: Vec<(u64, Geometry)> = (0..n * n)
            .map(|i| {
                (
                    id0 + i as u64,
                    Geometry::Point(Point::new(
                        (i % n) as f64 * step + 0.5,
                        (i / n) as f64 * step + 0.5,
                    )),
                )
            })
            .collect();
        StoredRelation::build(pool, &tuples, 300, Layout::Clustered)
    }

    #[test]
    fn overlap_and_distance_match_nested_loop() {
        let mut p = pool();
        let r = points_rel(&mut p, 8, 12.0, 0);
        let s = points_rel(&mut p, 8, 12.0, 1000);
        for theta in [
            ThetaOp::WithinDistance(12.5),
            ThetaOp::WithinDistance(0.1),
            ThetaOp::Overlaps,
        ] {
            let mut got = grid_join(&mut p, &r, &s, cfg(), theta).pairs;
            got.sort_unstable();
            let mut want = nested_loop_join(&mut p, &r, &s, theta).pairs;
            want.sort_unstable();
            assert_eq!(got, want, "{theta:?}");
        }
    }

    #[test]
    fn rect_objects_spanning_cells() {
        let mut p = pool();
        let r = StoredRelation::build(
            &mut p,
            &[
                (0, Geometry::Rect(Rect::from_bounds(5.0, 5.0, 45.0, 15.0))),
                (1, Geometry::Rect(Rect::from_bounds(60.0, 60.0, 61.0, 61.0))),
            ],
            300,
            Layout::Clustered,
        );
        let s = StoredRelation::build(
            &mut p,
            &[
                (
                    100,
                    Geometry::Rect(Rect::from_bounds(40.0, 10.0, 50.0, 20.0)),
                ),
                (
                    101,
                    Geometry::Rect(Rect::from_bounds(90.0, 90.0, 95.0, 95.0)),
                ),
            ],
            300,
            Layout::Clustered,
        );
        let run = grid_join(&mut p, &r, &s, cfg(), ThetaOp::Overlaps);
        assert_eq!(run.pairs, vec![(0, 100)]);
        // Each candidate pair is θ-tested exactly once despite sharing
        // several cells.
        assert!(run.stats.theta_evals <= 4);
    }

    #[test]
    fn fewer_theta_evals_than_nested_loop() {
        let mut p = pool();
        let r = points_rel(&mut p, 8, 12.0, 0);
        let s = points_rel(&mut p, 8, 12.0, 1000);
        let theta = ThetaOp::WithinDistance(1.0);
        let g = grid_join(&mut p, &r, &s, cfg(), theta);
        let nl = nested_loop_join(&mut p, &r, &s, theta);
        assert!(
            g.stats.theta_evals * 4 < nl.stats.theta_evals,
            "grid should prune most pairs: {} vs {}",
            g.stats.theta_evals,
            nl.stats.theta_evals
        );
    }

    #[test]
    #[should_panic(expected = "unbounded")]
    fn directional_theta_rejected() {
        let mut p = pool();
        let r = points_rel(&mut p, 2, 10.0, 0);
        let s = points_rel(&mut p, 2, 10.0, 100);
        let _ = grid_join(
            &mut p,
            &r,
            &s,
            cfg(),
            ThetaOp::DirectionOf(sj_geom::Direction::NorthWest),
        );
    }

    #[test]
    fn objects_outside_world_are_ignored() {
        let mut p = pool();
        let r = StoredRelation::build(
            &mut p,
            &[(0, Geometry::Point(Point::new(500.0, 500.0)))],
            300,
            Layout::Clustered,
        );
        let s = points_rel(&mut p, 2, 10.0, 100);
        let run = grid_join(&mut p, &r, &s, cfg(), ThetaOp::Overlaps);
        assert!(run.pairs.is_empty());
    }
}
