//! Grid-partitioned spatial join — the index-supported baseline the paper
//! credits to Rotem (\[Rote91\]) over the grid file (\[Niev84\]) of §2.2.
//!
//! Both relations are hashed into the cells of a uniform grid; candidate
//! pairs are the co-resident tuples of each cell (deduplicated, since
//! extended objects span several cells), refined with the exact θ.
//! Distance operators are handled by expanding the `R`-side cell
//! assignment by the distance bound, so every matching pair shares at
//! least one cell.

use std::collections::HashSet;

use sj_geom::{Bounded, Rect, ThetaOp};
use sj_obs::{Phase, PhaseTimer, TraceSink};
use sj_storage::{BufferPool, StorageError};

use crate::relation::StoredRelation;
use crate::stats::{ExecStats, JoinRun};

/// Grid geometry for [`grid_join`].
#[derive(Debug, Clone, Copy)]
pub struct GridConfig {
    /// World rectangle covered by the grid.
    pub world: Rect,
    /// Cells along x.
    pub nx: u32,
    /// Cells along y.
    pub ny: u32,
}

impl GridConfig {
    /// Cells spanned by `mbr`, after clamping it into the world.
    ///
    /// Out-of-world extents clamp to the border cells (the same
    /// saturating convention as `parallel::TileGrid`) instead of being
    /// dropped: a silent drop is benign when the world genuinely bounds
    /// the data, but becomes a wrong answer the moment this executor
    /// serves one shard of a larger federation whose world estimate is
    /// stale. Callers that care can count strays via
    /// [`GridConfig::outside_world`].
    fn cell_span(&self, mbr: &Rect) -> (u32, u32, u32, u32) {
        let w = self.world.width() / self.nx as f64;
        let h = self.world.height() / self.ny as f64;
        let lo_x = mbr.lo.x.clamp(self.world.lo.x, self.world.hi.x);
        let lo_y = mbr.lo.y.clamp(self.world.lo.y, self.world.hi.y);
        let hi_x = mbr.hi.x.clamp(self.world.lo.x, self.world.hi.x);
        let hi_y = mbr.hi.y.clamp(self.world.lo.y, self.world.hi.y);
        let cx0 =
            (((lo_x - self.world.lo.x) / w).floor() as i64).clamp(0, (self.nx - 1) as i64) as u32;
        let cy0 =
            (((lo_y - self.world.lo.y) / h).floor() as i64).clamp(0, (self.ny - 1) as i64) as u32;
        let cx1 =
            (((hi_x - self.world.lo.x) / w).floor() as i64).clamp(0, (self.nx - 1) as i64) as u32;
        let cy1 =
            (((hi_y - self.world.lo.y) / h).floor() as i64).clamp(0, (self.ny - 1) as i64) as u32;
        (cx0, cy0, cx1, cy1)
    }

    /// True when any part of `mbr` lies outside the world rectangle —
    /// the object still participates in the join (clamped to border
    /// cells) but is reported in [`OutsideWorld`].
    fn outside_world(&self, mbr: &Rect) -> bool {
        !(self.world.contains_point(&mbr.lo) && self.world.contains_point(&mbr.hi))
    }
}

/// Count of objects whose MBR extends beyond the configured world rect,
/// per relation side. Such objects are clamped to border cells rather
/// than dropped, so join results stay exact; a non-zero count tells the
/// caller (e.g. the shard router) that its world estimate is stale and
/// should be re-derived from the relations' true MBR union.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutsideWorld {
    /// Out-of-world objects in `R`.
    pub r: u64,
    /// Out-of-world objects in `S`.
    pub s: u64,
}

impl OutsideWorld {
    /// Total stray objects across both sides.
    pub fn total(&self) -> u64 {
        self.r + self.s
    }
}

/// The distance by which the Θ-filter of `theta` extends beyond MBR
/// overlap, or `None` for operators a shared-cell grid cannot support
/// (directional predicates have unbounded filter regions).
fn filter_slack(theta: ThetaOp) -> Option<f64> {
    match theta {
        ThetaOp::Overlaps | ThetaOp::Includes | ThetaOp::ContainedIn => Some(0.0),
        ThetaOp::WithinDistance(d) | ThetaOp::WithinCenterDistance(d) => Some(d),
        ThetaOp::ReachableWithin { minutes, speed } => Some(minutes * speed),
        ThetaOp::Adjacent => Some(sj_geom::EPSILON),
        ThetaOp::DirectionOf(_) => None,
    }
}

/// Grid-partitioned join `R ⋈_θ S`.
///
/// # Panics
///
/// Panics for directional θ-operators, whose qualifying region is a
/// half-plane and cannot be localized to grid cells.
pub fn grid_join(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    config: GridConfig,
    theta: ThetaOp,
) -> JoinRun {
    grid_join_traced(pool, r, s, config, theta, &mut TraceSink::Null)
}

/// [`grid_join`] with phase instrumentation: the scans plus cell
/// bucketing are the `partition` phase, cell-probing the `filter` phase
/// (cell co-residency needs no per-pair comparisons, so it carries only
/// wall-clock time), exact θ-tests the `refine` phase.
pub fn grid_join_traced(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    config: GridConfig,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> JoinRun {
    try_grid_join_traced(pool, r, s, config, theta, trace)
        .unwrap_or_else(|e| panic!("grid join failed: {e}"))
}

/// Fail-stop [`grid_join_traced`]: the first storage fault aborts the
/// run with a typed error. Still panics on directional θ-operators —
/// an unsupported operator is a logic error, not a storage fault.
pub fn try_grid_join_traced(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    config: GridConfig,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> Result<JoinRun, StorageError> {
    try_grid_join_counted(pool, r, s, config, theta, trace).map(|(run, _)| run)
}

/// [`try_grid_join_traced`] that also reports how many objects had to be
/// clamped into the world (see [`OutsideWorld`]). When the count is
/// non-zero a `grid/outside_world` span is emitted with per-side
/// counters so the stray objects are visible in traces, not just to
/// callers of this typed API.
pub fn try_grid_join_counted(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    config: GridConfig,
    theta: ThetaOp,
    trace: &mut TraceSink,
) -> Result<(JoinRun, OutsideWorld), StorageError> {
    let slack = filter_slack(theta).unwrap_or_else(|| {
        panic!("grid join cannot support {theta:?}: its filter region is unbounded")
    });
    let mut timer = PhaseTimer::for_sink(trace);
    timer.enter(Phase::Partition);
    let window = pool.stats();
    let mut run = JoinRun::default();
    let mut outside = OutsideWorld::default();
    let mut partition = ExecStats {
        passes: 1,
        ..Default::default()
    };

    let r_rows = r.try_scan(pool)?;
    let s_rows = s.try_scan(pool)?;

    // Bucket S by cell; out-of-world objects clamp to border cells.
    let cells = (config.nx as usize) * (config.ny as usize);
    let mut s_cells: Vec<Vec<usize>> = vec![Vec::new(); cells];
    for (idx, (_, g)) in s_rows.iter().enumerate() {
        let mbr = g.mbr();
        if config.outside_world(&mbr) {
            outside.s += 1;
        }
        let (x0, y0, x1, y1) = config.cell_span(&mbr);
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                s_cells[(cy * config.nx + cx) as usize].push(idx);
            }
        }
    }

    partition.add_io(pool.stats().since(&window));
    run.phases.record(Phase::Partition, partition);

    // Probe with R, expanding by the filter slack so distance matches
    // land in a shared cell. Strays are counted on the raw MBR — the
    // slack expansion legitimately pokes past the world near borders.
    timer.enter(Phase::Filter);
    let mut candidates: HashSet<(usize, usize)> = HashSet::new();
    for (r_idx, (_, g)) in r_rows.iter().enumerate() {
        let mbr = g.mbr();
        if config.outside_world(&mbr) {
            outside.r += 1;
        }
        let (x0, y0, x1, y1) = config.cell_span(&mbr.expand(slack));
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                for &s_idx in &s_cells[(cy * config.nx + cx) as usize] {
                    candidates.insert((r_idx, s_idx));
                }
            }
        }
    }

    timer.enter(Phase::Refine);
    let mut refine = ExecStats::default();
    let mut pairs: Vec<(usize, usize)> = candidates.into_iter().collect();
    pairs.sort_unstable();
    for (ri, si) in pairs {
        refine.theta_evals += 1;
        let (r_id, r_geom) = &r_rows[ri];
        let (s_id, s_geom) = &s_rows[si];
        if theta.eval(r_geom, s_geom) {
            run.pairs.push((*r_id, *s_id));
        }
    }
    timer.stop();
    run.phases.record(Phase::Refine, refine);
    run.seal("grid", &timer, trace);
    if outside.total() > 0 {
        trace.emit(
            "grid/outside_world",
            0,
            &[("r_outside", outside.r), ("s_outside", outside.s)],
        );
    }
    Ok((run, outside))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested_loop::nested_loop_join;
    use sj_geom::{Geometry, Point};
    use sj_storage::{Disk, DiskConfig, Layout};

    fn pool() -> BufferPool {
        BufferPool::new(Disk::new(DiskConfig::paper()), 64)
    }

    fn cfg() -> GridConfig {
        GridConfig {
            world: Rect::from_bounds(0.0, 0.0, 100.0, 100.0),
            nx: 10,
            ny: 10,
        }
    }

    fn points_rel(pool: &mut BufferPool, n: usize, step: f64, id0: u64) -> StoredRelation {
        let tuples: Vec<(u64, Geometry)> = (0..n * n)
            .map(|i| {
                (
                    id0 + i as u64,
                    Geometry::Point(Point::new(
                        (i % n) as f64 * step + 0.5,
                        (i / n) as f64 * step + 0.5,
                    )),
                )
            })
            .collect();
        StoredRelation::build(pool, &tuples, 300, Layout::Clustered)
    }

    #[test]
    fn overlap_and_distance_match_nested_loop() {
        let mut p = pool();
        let r = points_rel(&mut p, 8, 12.0, 0);
        let s = points_rel(&mut p, 8, 12.0, 1000);
        for theta in [
            ThetaOp::WithinDistance(12.5),
            ThetaOp::WithinDistance(0.1),
            ThetaOp::Overlaps,
        ] {
            let mut got = grid_join(&mut p, &r, &s, cfg(), theta).pairs;
            got.sort_unstable();
            let mut want = nested_loop_join(&mut p, &r, &s, theta).pairs;
            want.sort_unstable();
            assert_eq!(got, want, "{theta:?}");
        }
    }

    #[test]
    fn rect_objects_spanning_cells() {
        let mut p = pool();
        let r = StoredRelation::build(
            &mut p,
            &[
                (0, Geometry::Rect(Rect::from_bounds(5.0, 5.0, 45.0, 15.0))),
                (1, Geometry::Rect(Rect::from_bounds(60.0, 60.0, 61.0, 61.0))),
            ],
            300,
            Layout::Clustered,
        );
        let s = StoredRelation::build(
            &mut p,
            &[
                (
                    100,
                    Geometry::Rect(Rect::from_bounds(40.0, 10.0, 50.0, 20.0)),
                ),
                (
                    101,
                    Geometry::Rect(Rect::from_bounds(90.0, 90.0, 95.0, 95.0)),
                ),
            ],
            300,
            Layout::Clustered,
        );
        let run = grid_join(&mut p, &r, &s, cfg(), ThetaOp::Overlaps);
        assert_eq!(run.pairs, vec![(0, 100)]);
        // Each candidate pair is θ-tested exactly once despite sharing
        // several cells.
        assert!(run.stats.theta_evals <= 4);
    }

    #[test]
    fn fewer_theta_evals_than_nested_loop() {
        let mut p = pool();
        let r = points_rel(&mut p, 8, 12.0, 0);
        let s = points_rel(&mut p, 8, 12.0, 1000);
        let theta = ThetaOp::WithinDistance(1.0);
        let g = grid_join(&mut p, &r, &s, cfg(), theta);
        let nl = nested_loop_join(&mut p, &r, &s, theta);
        assert!(
            g.stats.theta_evals * 4 < nl.stats.theta_evals,
            "grid should prune most pairs: {} vs {}",
            g.stats.theta_evals,
            nl.stats.theta_evals
        );
    }

    #[test]
    #[should_panic(expected = "unbounded")]
    fn directional_theta_rejected() {
        let mut p = pool();
        let r = points_rel(&mut p, 2, 10.0, 0);
        let s = points_rel(&mut p, 2, 10.0, 100);
        let _ = grid_join(
            &mut p,
            &r,
            &s,
            cfg(),
            ThetaOp::DirectionOf(sj_geom::Direction::NorthWest),
        );
    }

    /// Regression (sharding bugfix sweep): objects outside the
    /// configured world used to be silently dropped — benign when the
    /// world truly bounds the data, a wrong answer once the world is a
    /// stale estimate. They are now clamped to border cells, the join
    /// stays exact against nested loop, and the strays are reported in
    /// the typed [`OutsideWorld`] count.
    #[test]
    fn objects_outside_world_are_clamped_not_dropped() {
        let mut p = pool();
        // Both tuples live entirely outside the 100×100 world and
        // overlap each other; the old intersection-based bucketing
        // dropped both and returned no pairs.
        let r = StoredRelation::build(
            &mut p,
            &[
                (
                    0,
                    Geometry::Rect(Rect::from_bounds(150.0, 150.0, 160.0, 160.0)),
                ),
                (1, Geometry::Point(Point::new(50.0, 50.0))),
            ],
            300,
            Layout::Clustered,
        );
        let s = StoredRelation::build(
            &mut p,
            &[
                (
                    100,
                    Geometry::Rect(Rect::from_bounds(155.0, 155.0, 165.0, 165.0)),
                ),
                (101, Geometry::Point(Point::new(-20.0, 50.0))),
                (102, Geometry::Point(Point::new(50.0, 50.0))),
            ],
            300,
            Layout::Clustered,
        );
        for theta in [ThetaOp::Overlaps, ThetaOp::WithinDistance(10.0)] {
            let (run, outside) =
                try_grid_join_counted(&mut p, &r, &s, cfg(), theta, &mut TraceSink::Null).unwrap();
            let mut got = run.pairs;
            got.sort_unstable();
            let mut want = nested_loop_join(&mut p, &r, &s, theta).pairs;
            want.sort_unstable();
            assert_eq!(got, want, "{theta:?}");
            assert!(
                got.contains(&(0, 100)),
                "out-of-world overlap must be found ({theta:?})"
            );
            assert_eq!(outside, OutsideWorld { r: 1, s: 2 }, "{theta:?}");
            assert_eq!(outside.total(), 3);
        }
    }

    /// Fully in-world data reports a zero stray count.
    #[test]
    fn outside_world_count_is_zero_for_in_world_data() {
        let mut p = pool();
        let r = points_rel(&mut p, 4, 10.0, 0);
        let s = points_rel(&mut p, 4, 10.0, 1000);
        let (_, outside) = try_grid_join_counted(
            &mut p,
            &r,
            &s,
            cfg(),
            ThetaOp::Overlaps,
            &mut TraceSink::Null,
        )
        .unwrap();
        assert_eq!(outside, OutsideWorld::default());
    }
}
