//! The strategy-equivalence matrix: every executable join strategy must
//! return exactly the nested-loop reference result on arbitrary workloads
//! (for the θ-operators it supports).

use proptest::prelude::*;
use sj_gentree::rtree::{RTree, RTreeConfig};
use sj_geom::{Geometry, Point, Rect, ThetaOp};
use sj_joins::grid::{grid_join, GridConfig};
use sj_joins::nested_loop::nested_loop_join;
use sj_joins::sort_merge::zorder_overlap_join;
use sj_joins::tree_join::tree_join;
use sj_joins::{JoinIndex, StoredRelation, TreeRelation};
use sj_storage::{BufferPool, Disk, DiskConfig, Layout};
use sj_zorder::ZGrid;

const WORLD: f64 = 128.0;

fn pool() -> BufferPool {
    BufferPool::new(Disk::new(DiskConfig::paper()), 64)
}

fn arb_geom() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        (0.0..WORLD, 0.0..WORLD).prop_map(|(x, y)| Geometry::Point(Point::new(x, y))),
        (0.0..WORLD - 9.0, 0.0..WORLD - 9.0, 0.1..8.0f64, 0.1..8.0f64)
            .prop_map(|(x, y, w, h)| Geometry::Rect(Rect::from_bounds(x, y, x + w, y + h))),
    ]
}

fn arb_tuples(id0: u64) -> impl Strategy<Value = Vec<(u64, Geometry)>> {
    prop::collection::vec(arb_geom(), 1..40).prop_map(move |gs| {
        gs.into_iter()
            .enumerate()
            .map(|(i, g)| (id0 + i as u64, g))
            .collect()
    })
}

fn sorted(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_strategies_agree(
        r_tuples in arb_tuples(0),
        s_tuples in arb_tuples(10_000),
        theta_pick in 0usize..4,
        layout_seed in any::<u64>(),
    ) {
        let theta = [
            ThetaOp::Overlaps,
            ThetaOp::WithinDistance(6.0),
            ThetaOp::Includes,
            ThetaOp::WithinCenterDistance(10.0),
        ][theta_pick];

        let mut p = pool();
        let r = StoredRelation::build(&mut p, &r_tuples, 300, Layout::Clustered);
        let s = StoredRelation::build(
            &mut p,
            &s_tuples,
            300,
            Layout::Unclustered { seed: layout_seed },
        );

        let reference = sorted(nested_loop_join(&mut p, &r, &s, theta).pairs);

        // Strategy II (both layouts) over bulk-loaded R-trees.
        for layout in [Layout::Clustered, Layout::Unclustered { seed: layout_seed }] {
            let tr = TreeRelation::new(
                &mut p,
                RTree::bulk_load(RTreeConfig::with_fanout(5), r_tuples.clone()).tree().clone(),
                300,
                layout,
            );
            let ts = TreeRelation::new(
                &mut p,
                RTree::bulk_load(RTreeConfig::with_fanout(4), s_tuples.clone()).tree().clone(),
                300,
                layout,
            );
            let got = sorted(tree_join(&mut p, &tr, &ts, theta).pairs);
            prop_assert_eq!(&got, &reference, "tree join ({:?}) diverges for {:?}", layout, theta);
        }

        // Strategy III.
        let (idx, _) = JoinIndex::build(&mut p, &r, &s, theta, 8);
        let got = sorted(idx.join(&mut p, &r, &s).pairs);
        prop_assert_eq!(&got, &reference, "join index diverges for {:?}", theta);

        // Z-order sort-merge and z-value index, where applicable.
        if sj_joins::sort_merge::supported_by_zorder(theta) {
            let grid = ZGrid::new(Rect::from_bounds(0.0, 0.0, WORLD, WORLD), 5);
            let got = sorted(zorder_overlap_join(&mut p, &r, &s, &grid, theta).pairs);
            prop_assert_eq!(&got, &reference, "z-order sort-merge diverges for {:?}", theta);

            let idx = sj_joins::ZIndex::build(&mut p, &r, grid, 16);
            let got = sorted(idx.join(&mut p, &r, &s, theta).pairs);
            prop_assert_eq!(&got, &reference, "z-index join diverges for {:?}", theta);
        }

        // Local join indices at two anchor levels.
        for level in [1usize, 2] {
            let tr = TreeRelation::new(
                &mut p,
                RTree::bulk_load(RTreeConfig::with_fanout(5), r_tuples.clone()).tree().clone(),
                300,
                Layout::Clustered,
            );
            let ts = TreeRelation::new(
                &mut p,
                RTree::bulk_load(RTreeConfig::with_fanout(5), s_tuples.clone()).tree().clone(),
                300,
                Layout::Clustered,
            );
            let (idx, _) = sj_joins::LocalJoinIndex::build(&mut p, &tr, &ts, theta, level, 16);
            let got = idx.join(&mut p).pairs;
            prop_assert_eq!(&got, &reference, "local join index (L={}) diverges for {:?}", level, theta);
        }

        // Grid-file join (supports all four operators above).
        let cfg = GridConfig {
            world: Rect::from_bounds(0.0, 0.0, WORLD, WORLD),
            nx: 8,
            ny: 8,
        };
        let got = sorted(grid_join(&mut p, &r, &s, cfg, theta).pairs);
        prop_assert_eq!(&got, &reference, "grid join diverges for {:?}", theta);
    }

    /// Join-index maintenance keeps the index equal to a fresh rebuild.
    #[test]
    fn incremental_maintenance_equals_rebuild(
        r_tuples in arb_tuples(0),
        s_tuples in arb_tuples(10_000),
        extra in arb_geom(),
    ) {
        let theta = ThetaOp::WithinDistance(8.0);
        let mut p = pool();
        let s = StoredRelation::build(&mut p, &s_tuples, 300, Layout::Clustered);

        // Incremental: build on R, then insert one more R tuple.
        let r_small = StoredRelation::build(&mut p, &r_tuples, 300, Layout::Clustered);
        let (mut idx, _) = JoinIndex::build(&mut p, &r_small, &s, theta, 8);
        let new_id = 5_000u64;
        idx.maintain_insert_r(&mut p, new_id, &extra, &s);

        // Rebuild from scratch on R ∪ {new}.
        let mut r_all_tuples = r_tuples.clone();
        r_all_tuples.push((new_id, extra.clone()));
        let r_all = StoredRelation::build(&mut p, &r_all_tuples, 300, Layout::Clustered);
        let (idx_fresh, _) = JoinIndex::build(&mut p, &r_all, &s, theta, 8);

        let a = sorted(idx.join(&mut p, &r_all, &s).pairs);
        let b = sorted(idx_fresh.join(&mut p, &r_all, &s).pairs);
        prop_assert_eq!(a, b);
    }
}
