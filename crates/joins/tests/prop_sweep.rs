//! Plane-sweep invariants:
//!
//! 1. the forward-scan kernel emits **exactly** the candidate set a
//!    quadratic Θ-filter loop produces, for every bounded-filter
//!    θ-operator, on arbitrary rectangle workloads;
//! 2. the sequential [`sweep_join`] executor returns exactly the
//!    nested-loop reference match set for **every** θ-operator
//!    (directional operators exercise the fallback path);
//! 3. the sweep never examines more pairs than the quadratic filter
//!    (`comparisons ≤ |R|·|S|`).

use proptest::prelude::*;
use sj_gentree::rtree::{RTree, RTreeConfig};
use sj_geom::sweep::{sweep_candidates, sweep_candidates_with, Kernel, SweepItem};
use sj_geom::{Direction, Geometry, Rect, ThetaOp};
use sj_joins::nested_loop::nested_loop_join;
use sj_joins::parallel::try_partition_join_with;
use sj_joins::sweep::{sweep_join, try_sweep_join_with};
use sj_joins::tree_join::try_tree_join_with;
use sj_joins::{Parallelism, StoredRelation, TraceSink, TreeRelation};
use sj_storage::{BufferPool, Disk, DiskConfig, Layout};

const WORLD: f64 = 128.0;

/// Every bounded-filter operator (each row of Table 1 whose Θ-region is
/// an ε-expanded rectangle intersection).
const BOUNDED: [ThetaOp; 7] = [
    ThetaOp::Overlaps,
    ThetaOp::Includes,
    ThetaOp::ContainedIn,
    ThetaOp::Adjacent,
    ThetaOp::WithinDistance(9.0),
    ThetaOp::WithinCenterDistance(14.0),
    ThetaOp::ReachableWithin {
        minutes: 4.0,
        speed: 2.0,
    },
];

fn pool() -> BufferPool {
    BufferPool::new(Disk::new(DiskConfig::paper()), 64)
}

/// Rectangles from degenerate (points) to a large fraction of the world.
fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0..WORLD, 0.0..WORLD, 0.0..60.0f64, 0.0..60.0f64)
        .prop_map(|(x, y, w, h)| Rect::from_bounds(x, y, (x + w).min(WORLD), (y + h).min(WORLD)))
}

fn arb_rects() -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec(arb_rect(), 0..60)
}

fn sorted(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_candidates_equal_quadratic_filter(
        l in arb_rects(),
        r in arb_rects(),
        theta_pick in 0usize..BOUNDED.len(),
    ) {
        let theta = BOUNDED[theta_pick];
        let eps = theta.filter_radius().expect("bounded operator");

        let mut want: Vec<(u32, u32)> = Vec::new();
        for (i, a) in l.iter().enumerate() {
            for (j, b) in r.iter().enumerate() {
                if theta.filter(a, b) {
                    want.push((i as u32, j as u32));
                }
            }
        }
        want.sort_unstable();

        let mut left: Vec<SweepItem> = l
            .iter()
            .enumerate()
            .map(|(i, m)| SweepItem::expanded(i as u32, *m, eps))
            .collect();
        let mut right: Vec<SweepItem> = r
            .iter()
            .enumerate()
            .map(|(j, m)| SweepItem::new(j as u32, *m))
            .collect();
        let mut got: Vec<(u32, u32)> = Vec::new();
        let comparisons =
            sweep_candidates(&mut left, &mut right, theta, &mut |a, b| got.push((a, b)));
        let raw_len = got.len();
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(raw_len, got.len(), "kernel emitted duplicates for {:?}", theta);
        prop_assert_eq!(&got, &want, "candidate sets diverge for {:?}", theta);
        prop_assert!(
            comparisons <= (l.len() * r.len()) as u64,
            "sweep examined more pairs than quadratic: {} > {}",
            comparisons,
            l.len() * r.len()
        );
    }
}

fn arb_tuples(id0: u64) -> impl Strategy<Value = Vec<(u64, Geometry)>> {
    prop::collection::vec(arb_rect(), 1..50).prop_map(move |gs| {
        gs.into_iter()
            .enumerate()
            .map(|(i, g)| (id0 + i as u64, Geometry::Rect(g)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sweep_join_equals_nested_loop(
        r_tuples in arb_tuples(0),
        s_tuples in arb_tuples(10_000),
        theta_pick in 0usize..8,
    ) {
        let theta = [
            ThetaOp::Overlaps,
            ThetaOp::Includes,
            ThetaOp::ContainedIn,
            ThetaOp::Adjacent,
            ThetaOp::WithinDistance(9.0),
            ThetaOp::WithinCenterDistance(14.0),
            ThetaOp::ReachableWithin { minutes: 4.0, speed: 2.0 },
            // Directional: exercises the nested-loop fallback.
            ThetaOp::DirectionOf(Direction::NorthWest),
        ][theta_pick];

        let mut p = pool();
        let r = StoredRelation::build(&mut p, &r_tuples, 300, Layout::Clustered);
        let s = StoredRelation::build(&mut p, &s_tuples, 300, Layout::Clustered);
        let reference = sorted(nested_loop_join(&mut p, &r, &s, theta).pairs);

        let run = sweep_join(&mut p, &r, &s, theta);
        let raw_len = run.pairs.len();
        let got = sorted(run.pairs);
        prop_assert_eq!(raw_len, got.len(), "duplicates for {:?}", theta);
        prop_assert_eq!(&got, &reference, "sweep join diverges for {:?}", theta);
        // The sweep may not do more filter work than the quadratic filter.
        prop_assert!(
            run.stats.filter_evals <= (r_tuples.len() * s_tuples.len()) as u64,
            "filter_evals {} exceeds |R|·|S| {}",
            run.stats.filter_evals,
            r_tuples.len() * s_tuples.len()
        );
    }
}

/// Every θ-operator, including the directional one (which exercises the
/// batched kernel's scalar fallback — [`ThetaOp::mask_filter`] is `None`).
const ALL_OPS: [ThetaOp; 8] = [
    ThetaOp::Overlaps,
    ThetaOp::Includes,
    ThetaOp::ContainedIn,
    ThetaOp::Adjacent,
    ThetaOp::WithinDistance(9.0),
    ThetaOp::WithinCenterDistance(14.0),
    ThetaOp::ReachableWithin {
        minutes: 4.0,
        speed: 2.0,
    },
    ThetaOp::DirectionOf(Direction::NorthWest),
];

/// Runs one pinned kernel end to end, returning the **raw** emission
/// sequence (order-sensitive, duplicates included) and the comparison
/// count.
fn run_kernel(l: &[Rect], r: &[Rect], theta: ThetaOp, kernel: Kernel) -> (Vec<(u32, u32)>, u64) {
    let eps = theta.filter_radius().unwrap_or(0.0);
    let mut left: Vec<SweepItem> = l
        .iter()
        .enumerate()
        .map(|(i, m)| SweepItem::expanded(i as u32, *m, eps))
        .collect();
    let mut right: Vec<SweepItem> = r
        .iter()
        .enumerate()
        .map(|(j, m)| SweepItem::new(j as u32, *m))
        .collect();
    let mut got: Vec<(u32, u32)> = Vec::new();
    let cmp = sweep_candidates_with(&mut left, &mut right, theta, kernel, &mut |a, b| {
        got.push((a, b))
    });
    (got, cmp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batched SoA kernel is **byte-identical** to the scalar kernel:
    /// same emission sequence (order included) and same comparison count
    /// for every θ-operator on arbitrary workloads — ragged chunk tails,
    /// empty sides, and the directional fallback included.
    #[test]
    fn batched_kernel_emission_sequence_equals_scalar(
        l in arb_rects(),
        r in arb_rects(),
        theta_pick in 0usize..ALL_OPS.len(),
    ) {
        let theta = ALL_OPS[theta_pick];
        let scalar = run_kernel(&l, &r, theta, Kernel::Scalar);
        let batched = run_kernel(&l, &r, theta, Kernel::Batched);
        prop_assert_eq!(batched, scalar, "kernels diverge for {:?}", theta);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pinning an executor's kernel must not change any observable:
    /// sweep-join, partition-join, and tree-join runs return identical
    /// match sequences and comparison counters under `Scalar` and
    /// `Batched` on arbitrary stored relations.
    #[test]
    fn executors_are_kernel_invariant(
        r_tuples in arb_tuples(0),
        s_tuples in arb_tuples(10_000),
        theta_pick in 0usize..BOUNDED.len(),
    ) {
        let theta = BOUNDED[theta_pick];
        let mut p = pool();
        let r = StoredRelation::build(&mut p, &r_tuples, 300, Layout::Clustered);
        let s = StoredRelation::build(&mut p, &s_tuples, 300, Layout::Clustered);

        let sweep: Vec<_> = [Kernel::Scalar, Kernel::Batched]
            .iter()
            .map(|&k| {
                try_sweep_join_with(&mut p, &r, &s, theta, &mut TraceSink::Null, k)
                    .expect("in-memory disk cannot fault")
            })
            .collect();
        prop_assert_eq!(&sweep[0].pairs, &sweep[1].pairs, "sweep join {:?}", theta);
        prop_assert_eq!(
            sweep[0].stats.comparisons(),
            sweep[1].stats.comparisons(),
            "sweep comparisons {:?}",
            theta
        );

        let part: Vec<_> = [Kernel::Scalar, Kernel::Batched]
            .iter()
            .map(|&k| {
                try_partition_join_with(
                    &mut p,
                    &r,
                    &s,
                    theta,
                    Parallelism { threads: 1 },
                    &mut TraceSink::Null,
                    Some(k),
                )
                .expect("in-memory disk cannot fault")
            })
            .collect();
        prop_assert_eq!(&part[0].pairs, &part[1].pairs, "partition join {:?}", theta);
        prop_assert_eq!(
            part[0].stats.comparisons(),
            part[1].stats.comparisons(),
            "partition comparisons {:?}",
            theta
        );

        let tr = TreeRelation::new(
            &mut p,
            RTree::bulk_load(RTreeConfig::with_fanout(5), r_tuples.clone())
                .tree()
                .clone(),
            300,
            Layout::Clustered,
        );
        let ts = TreeRelation::new(
            &mut p,
            RTree::bulk_load(RTreeConfig::with_fanout(5), s_tuples.clone())
                .tree()
                .clone(),
            300,
            Layout::Clustered,
        );
        let tree: Vec<_> = [Kernel::Scalar, Kernel::Batched]
            .iter()
            .map(|&k| {
                try_tree_join_with(&mut p, &tr, &ts, theta, &mut TraceSink::Null, k)
                    .expect("in-memory disk cannot fault")
            })
            .collect();
        prop_assert_eq!(&tree[0].pairs, &tree[1].pairs, "tree join {:?}", theta);
        prop_assert_eq!(
            tree[0].stats.comparisons(),
            tree[1].stats.comparisons(),
            "tree comparisons {:?}",
            theta
        );
    }
}
