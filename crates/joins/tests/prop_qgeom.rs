//! Properties of the compressed-geometry (v2) subsystem:
//!
//! 1. Every geometry kind round-trips through `encode_qrecord` /
//!    `try_decode_qrecord` to exactly the in-memory quantization
//!    ([`QGeometry::quantize`]), with the exact MBR preserved and every
//!    original vertex within the record's own error bound ε_q —
//!    including degenerate chains (identical vertices, axis-aligned
//!    slivers) where a zero-extent axis must decode exactly.
//! 2. Joins over compressed relations are **byte-identical** to the
//!    exact path across all eight θ-operators and the Θ-filtered
//!    executors (sweep, partition at several thread counts, tree over a
//!    quantized [`TreeRelation`]), with `theta_evals` charged
//!    identically — compression may only move `physical_reads`.
//! 3. The margin ledger balances: on a compressed sweep every candidate
//!    resolves as exactly one of `margin_hits`, `margin_misses`, or
//!    `decoded_exact`, and per-phase deltas still sum to the run totals
//!    (the `seal` invariant) on compressed executor runs.

use proptest::prelude::*;
use proptest::Strategy as _;
use sj_gentree::rtree::{RTree, RTreeConfig};
use sj_geom::codec::{encode_qrecord, encoded_qlen, try_decode_qrecord};
use sj_geom::{Bounded, Direction, Geometry, Point, Polygon, Polyline, QGeometry, Rect, ThetaOp};
use sj_joins::nested_loop::nested_loop_join;
use sj_joins::parallel::{partition_join, Parallelism};
use sj_joins::sweep::sweep_join;
use sj_joins::tree_join::tree_join;
use sj_joins::{JoinOperands, JoinRequest, StoredRelation, Strategy, TreeRelation};
use sj_storage::{BufferPool, Disk, DiskConfig, Layout};

const WORLD: f64 = 128.0;

fn pool() -> BufferPool {
    BufferPool::new(Disk::new(DiskConfig::paper()), 96)
}

fn sorted(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable();
    v
}

/// All eight θ-operators of the paper's Table 1.
const ALL_THETAS: [ThetaOp; 8] = [
    ThetaOp::Overlaps,
    ThetaOp::Includes,
    ThetaOp::ContainedIn,
    ThetaOp::WithinDistance(6.0),
    ThetaOp::WithinCenterDistance(10.0),
    ThetaOp::Adjacent,
    ThetaOp::ReachableWithin {
        minutes: 4.0,
        speed: 2.0,
    },
    ThetaOp::DirectionOf(Direction::NorthWest),
];

/// Every geometry kind, sized to stay inside the world box. Polygons are
/// regular k-gons (guaranteed simple); polylines are arbitrary chains,
/// including near-degenerate ones when the coordinate ranges collapse.
fn arb_geom() -> impl proptest::Strategy<Value = Geometry> {
    let point = (0.0..WORLD, 0.0..WORLD).prop_map(|(x, y)| Geometry::Point(Point::new(x, y)));
    let rect = (
        0.0..WORLD - 9.0,
        0.0..WORLD - 9.0,
        0.001..8.0f64,
        0.001..8.0f64,
    )
        .prop_map(|(x, y, w, h)| Geometry::Rect(Rect::from_bounds(x, y, x + w, y + h)));
    let polygon = (8.0..WORLD - 8.0, 8.0..WORLD - 8.0, 0.05..6.0f64, 3usize..12)
        .prop_map(|(x, y, r, k)| Geometry::Polygon(Polygon::regular(Point::new(x, y), r, k)));
    let polyline = prop::collection::vec((0.0..WORLD, 0.0..WORLD), 2..8).prop_map(|pts| {
        let verts = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
        Geometry::Polyline(Polyline::new(verts).expect("two or more vertices"))
    });
    prop_oneof![point, rect, polygon, polyline]
}

fn arb_tuples(id0: u64) -> impl proptest::Strategy<Value = Vec<(u64, Geometry)>> {
    prop::collection::vec(arb_geom(), 1..24).prop_map(move |gs| {
        gs.into_iter()
            .enumerate()
            .map(|(i, g)| (id0 + i as u64, g))
            .collect()
    })
}

/// Round-trip one geometry through the v2 codec and check the ε_q
/// contract. Returns the decoded record for further inspection.
fn roundtrip(id: u64, g: &Geometry) -> QGeometry {
    let frame = encode_qrecord(id, g, encoded_qlen(g));
    let (got_id, q) = try_decode_qrecord(&frame).expect("own encoding decodes");
    assert_eq!(got_id, id);
    assert_eq!(q, QGeometry::quantize(g), "decode ≠ in-memory quantization");
    assert_eq!(q.rect(), g.mbr(), "the exact MBR must be stored losslessly");
    assert!(q.eps().is_finite() && q.eps() >= 0.0);
    // ε_q is conservative: every original vertex sits within ε_q of its
    // dequantized image (with a hair of slack for the fold itself).
    let originals: &[Point] = match g {
        Geometry::Polygon(p) => p.vertices(),
        Geometry::Polyline(l) => l.vertices(),
        _ => &[],
    };
    for (v, d) in originals.iter().zip(q.verts()) {
        assert!(
            v.distance(d) <= q.eps() + 1e-12,
            "vertex {v:?} strays {} > ε_q {}",
            v.distance(d),
            q.eps()
        );
    }
    // The bound is also *tight enough to be useful*: at most half a grid
    // diagonal. (u16 grid → scale = extent / 65535 per axis.)
    let diag = (q.rect().width().powi(2) + q.rect().height().powi(2)).sqrt();
    assert!(
        q.eps() <= diag / 65535.0 + 1e-12,
        "ε_q {} exceeds one grid diagonal {}",
        q.eps(),
        diag / 65535.0
    );
    q
}

#[test]
fn degenerate_chains_roundtrip_exactly() {
    // Two identical vertices: both axes have zero extent, so decoding
    // must reproduce the anchor exactly and ε_q must be zero.
    let twin = Geometry::Polyline(
        Polyline::new(vec![Point::new(41.5, 7.25), Point::new(41.5, 7.25)]).unwrap(),
    );
    let q = roundtrip(3, &twin);
    assert_eq!(q.eps(), 0.0, "zero-extent chain must be lossless");
    assert_eq!(q.verts(), &[Point::new(41.5, 7.25), Point::new(41.5, 7.25)]);

    // Axis-aligned sliver: one degenerate axis decodes exactly, the
    // other still quantizes.
    let sliver = Geometry::Polyline(
        Polyline::new(vec![
            Point::new(10.0, 3.0),
            Point::new(10.0, 90.0),
            Point::new(10.0, 17.0),
        ])
        .unwrap(),
    );
    let q = roundtrip(4, &sliver);
    for v in q.verts() {
        assert_eq!(v.x, 10.0, "degenerate x-axis must decode exactly");
    }

    // A long, thin polygon sliver (simple, barely nonzero area).
    let thin = Geometry::Polygon(
        Polygon::new(vec![
            Point::new(1.0, 1.0),
            Point::new(100.0, 1.001),
            Point::new(100.0, 1.002),
        ])
        .unwrap(),
    );
    roundtrip(5, &thin);

    // Points and rectangles ride v1 tags inside v2 files: lossless.
    let q = roundtrip(6, &Geometry::Point(Point::new(0.125, 99.875)));
    assert_eq!(q.eps(), 0.0);
    let q = roundtrip(
        7,
        &Geometry::Rect(Rect::from_bounds(3.5, 2.25, 88.125, 90.0)),
    );
    assert_eq!(q.eps(), 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qrecords_roundtrip_within_eps(g in arb_geom(), id in 0u64..1_000_000) {
        roundtrip(id, &g);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Properties 2 and 3: the compressed path answers every θ-operator
    /// byte-identically on every Θ-filtered executor, with `theta_evals`
    /// unchanged and the margin ledger balanced.
    #[test]
    fn compressed_joins_are_byte_identical(
        r_tuples in arb_tuples(0),
        s_tuples in arb_tuples(10_000),
        theta_pick in 0usize..8,
    ) {
        let theta = ALL_THETAS[theta_pick];
        let world = Rect::from_bounds(0.0, 0.0, WORLD, WORLD);
        let mut p = pool();

        let re = StoredRelation::build(&mut p, &r_tuples, 300, Layout::Clustered);
        let se = StoredRelation::build(&mut p, &s_tuples, 300, Layout::Clustered);
        let qr = StoredRelation::quant_record_size_for(&r_tuples);
        let qs = StoredRelation::quant_record_size_for(&s_tuples);
        let rc = StoredRelation::build_compressed(&mut p, &r_tuples, 300, qr, Layout::Clustered);
        let sc = StoredRelation::build_compressed(&mut p, &s_tuples, 300, qs, Layout::Clustered);
        prop_assert!(rc.is_compressed() && sc.is_compressed());

        let r_rt = RTree::bulk_load(RTreeConfig::with_fanout(5), r_tuples.clone());
        let s_rt = RTree::bulk_load(RTreeConfig::with_fanout(4), s_tuples.clone());
        let te_r = TreeRelation::new(&mut p, r_rt.tree().clone(), 300, Layout::Clustered);
        let te_s = TreeRelation::new(&mut p, s_rt.tree().clone(), 300, Layout::Clustered);
        let tc_r = TreeRelation::new_compressed(&mut p, r_rt.tree().clone(), 0, Layout::Clustered);
        let tc_s = TreeRelation::new_compressed(&mut p, s_rt.tree().clone(), 0, Layout::Clustered);
        prop_assert!(tc_r.is_compressed() && tc_s.is_compressed());

        p.clear();
        p.reset_stats();
        let reference = sorted(nested_loop_join(&mut p, &re, &se, theta).pairs);

        // Sweep: exact vs compressed, byte-identical with the margin
        // ledger balancing the full θ-charge.
        p.clear();
        let exact = sweep_join(&mut p, &re, &se, theta);
        p.clear();
        let comp = sweep_join(&mut p, &rc, &sc, theta);
        prop_assert_eq!(&exact.pairs, &comp.pairs, "sweep diverges under {:?}", theta);
        prop_assert_eq!(sorted(comp.pairs.clone()), reference.clone());
        prop_assert_eq!(exact.stats.theta_evals, comp.stats.theta_evals);
        // The ledger balances whenever the sweep kernel actually ran;
        // unbounded (directional) θ falls back to strategy I, which is
        // the exact path on both sides by design.
        if theta.filter_radius().is_some() {
            prop_assert_eq!(
                comp.stats.margin_hits + comp.stats.margin_misses + comp.stats.decoded_exact,
                comp.stats.theta_evals,
                "margin ledger out of balance under {:?}", theta
            );
        }
        prop_assert_eq!(exact.stats.decoded_exact, 0, "exact path must not tick margin counters");

        // Partition at several worker counts: identical pairs and
        // θ-charge, decode work never exceeding the charge.
        for threads in [1usize, 2, 3] {
            p.clear();
            let pe = partition_join(&mut p, &re, &se, theta, Parallelism::with_threads(threads));
            p.clear();
            let pc = partition_join(&mut p, &rc, &sc, theta, Parallelism::with_threads(threads));
            prop_assert_eq!(
                &pe.pairs, &pc.pairs,
                "partition({threads}) diverges under {:?}", theta
            );
            prop_assert_eq!(pe.stats.theta_evals, pc.stats.theta_evals);
            prop_assert!(pc.stats.decoded_exact <= pc.stats.theta_evals);
        }

        // Tree join over quantized node pages: θ-evals run on the
        // in-memory generalization tree, so the record codec may only
        // shrink I/O — never perturb matches or the θ-charge.
        p.clear();
        let je = tree_join(&mut p, &te_r, &te_s, theta);
        p.clear();
        let jc = tree_join(&mut p, &tc_r, &tc_s, theta);
        prop_assert_eq!(&je.pairs, &jc.pairs, "tree join diverges under {:?}", theta);
        prop_assert_eq!(je.stats.theta_evals, jc.stats.theta_evals);

        // Property 3 (seal invariant on compressed runs): executor-surface
        // runs over compressed operands still sum phase deltas exactly.
        let ops = JoinOperands::flat(&rc, &sc, world).with_trees(&tc_r, &tc_s);
        for strat in [Strategy::Sweep, Strategy::Partition, Strategy::Tree] {
            if !strat.supports(theta) {
                continue;
            }
            let mut exec = strat.executor(&ops).expect("operands present");
            p.clear();
            p.reset_stats();
            let run = exec.execute(&JoinRequest::new(theta), &mut p);
            prop_assert_eq!(
                run.phases.total(), run.stats,
                "phase sums diverge for compressed {} under {:?}", strat.name(), theta
            );
            prop_assert_eq!(sorted(run.pairs.clone()), reference.clone());
        }
    }
}
