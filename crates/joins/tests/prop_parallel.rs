//! The parallel partition join must return exactly the nested-loop
//! reference match set on arbitrary rectangle workloads, at every thread
//! count — including workloads engineered to produce candidate pairs
//! spanning many tiles (the reference-point deduplication case).

use proptest::prelude::*;
use sj_geom::{Geometry, Rect, ThetaOp};
use sj_joins::nested_loop::nested_loop_join;
use sj_joins::parallel::{partition_join, Parallelism};
use sj_joins::StoredRelation;
use sj_storage::{BufferPool, Disk, DiskConfig, Layout};

const WORLD: f64 = 128.0;
const THREADS: [usize; 4] = [1, 2, 3, 8];

fn pool() -> BufferPool {
    BufferPool::new(Disk::new(DiskConfig::paper()), 64)
}

/// Rectangles with extents from degenerate (points) to a large fraction
/// of the world, so candidate pairs routinely straddle tile borders.
fn arb_rect() -> impl Strategy<Value = Geometry> {
    (0.0..WORLD, 0.0..WORLD, 0.0..60.0f64, 0.0..60.0f64).prop_map(|(x, y, w, h)| {
        Geometry::Rect(Rect::from_bounds(
            x,
            y,
            (x + w).min(WORLD),
            (y + h).min(WORLD),
        ))
    })
}

fn arb_tuples(id0: u64) -> impl Strategy<Value = Vec<(u64, Geometry)>> {
    prop::collection::vec(arb_rect(), 1..50).prop_map(move |gs| {
        gs.into_iter()
            .enumerate()
            .map(|(i, g)| (id0 + i as u64, g))
            .collect()
    })
}

fn sorted(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_join_equals_nested_loop(
        r_tuples in arb_tuples(0),
        s_tuples in arb_tuples(10_000),
        theta_pick in 0usize..7,
    ) {
        // All bounded-filter operators run the sweep-backed tile path;
        // Adjacent and ReachableWithin were added when the plane-sweep
        // kernel landed so its ε-gap rule is exercised at ε = EPSILON
        // and ε = minutes·speed too.
        let theta = [
            ThetaOp::Overlaps,
            ThetaOp::WithinDistance(9.0),
            ThetaOp::Includes,
            ThetaOp::ContainedIn,
            ThetaOp::WithinCenterDistance(14.0),
            ThetaOp::Adjacent,
            ThetaOp::ReachableWithin { minutes: 4.0, speed: 2.0 },
        ][theta_pick];

        let mut p = pool();
        let r = StoredRelation::build(&mut p, &r_tuples, 300, Layout::Clustered);
        let s = StoredRelation::build(&mut p, &s_tuples, 300, Layout::Clustered);
        let reference = sorted(nested_loop_join(&mut p, &r, &s, theta).pairs);

        let seq = partition_join(&mut p, &r, &s, theta, Parallelism::sequential());
        for threads in THREADS {
            let run = partition_join(&mut p, &r, &s, theta, Parallelism::with_threads(threads));
            // No duplicates: the reference-point rule must refine each
            // candidate pair in exactly one tile.
            let raw_len = run.pairs.len();
            let got = sorted(run.pairs);
            prop_assert_eq!(raw_len, got.len(), "duplicates at {} threads for {:?}", threads, theta);
            prop_assert_eq!(&got, &reference, "{} threads diverge for {:?}", threads, theta);
            // Comparison accounting is thread-invariant.
            prop_assert_eq!(run.stats.filter_evals, seq.stats.filter_evals);
            prop_assert_eq!(run.stats.theta_evals, seq.stats.theta_evals);
        }
    }
}
