//! Chaos property suite: every join strategy, under every θ-operator it
//! supports, with deterministic fault injection armed, is **fail-stop**:
//!
//! - `Ok(run)` carries *exactly* the fault-free match set — a fault can
//!   abort a run but can never corrupt one;
//! - `Err(e)` is a typed [`StorageError`] — no panic ever escapes the
//!   executor boundary;
//! - the same injector seed over the same operation sequence replays
//!   the identical fault trace (the determinism property the service's
//!   retry layer depends on).

use sj_geom::{Direction, Geometry, Point, Rect, ThetaOp};
use sj_joins::executor::JoinOperands;
use sj_joins::{JoinRequest, StoredRelation, Strategy, TreeRelation};
use sj_storage::{BufferPool, Disk, DiskConfig, FaultConfig, FaultInjector, Layout, StorageError};

const THETAS: [ThetaOp; 8] = [
    ThetaOp::WithinCenterDistance(10.5),
    ThetaOp::WithinDistance(10.5),
    ThetaOp::Overlaps,
    ThetaOp::Includes,
    ThetaOp::ContainedIn,
    ThetaOp::DirectionOf(Direction::NorthWest),
    ThetaOp::ReachableWithin {
        minutes: 5.0,
        speed: 2.0,
    },
    ThetaOp::Adjacent,
];

fn pool() -> BufferPool {
    BufferPool::new(Disk::new(DiskConfig::paper()), 128)
}

fn grid_tuples(n: usize, step: f64, id0: u64) -> Vec<(u64, Geometry)> {
    (0..n * n)
        .map(|i| {
            (
                id0 + i as u64,
                Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
            )
        })
        .collect()
}

struct World {
    r: StoredRelation,
    s: StoredRelation,
    r_tree: TreeRelation,
    s_tree: TreeRelation,
    world: Rect,
}

fn build_world(pool: &mut BufferPool) -> World {
    let r_tuples = grid_tuples(5, 10.0, 0);
    let s_tuples = grid_tuples(5, 10.0, 500);
    let r = StoredRelation::build(pool, &r_tuples, 300, Layout::Clustered);
    let s = StoredRelation::build(pool, &s_tuples, 300, Layout::Clustered);
    let fan = sj_gentree::rtree::RTreeConfig::with_fanout(5);
    let r_rt = sj_gentree::rtree::RTree::bulk_load(fan, r_tuples);
    let s_rt = sj_gentree::rtree::RTree::bulk_load(fan, s_tuples);
    let r_tree = TreeRelation::new(pool, r_rt.tree().clone(), 300, Layout::Clustered);
    let s_tree = TreeRelation::new(pool, s_rt.tree().clone(), 300, Layout::Clustered);
    World {
        r,
        s,
        r_tree,
        s_tree,
        world: Rect::from_bounds(0.0, 0.0, 64.0, 64.0),
    }
}

fn sweep_chooser(_: ThetaOp, _: &mut BufferPool) -> Result<Strategy, StorageError> {
    Ok(Strategy::Sweep)
}

fn operands(w: &World) -> JoinOperands<'_> {
    JoinOperands::flat(&w.r, &w.s, w.world)
        .with_trees(&w.r_tree, &w.s_tree)
        .with_chooser(&sweep_chooser)
}

/// Fault-free reference pairs for `strategy` under `theta`, sorted.
fn reference(
    pool: &mut BufferPool,
    w: &World,
    strategy: Strategy,
    theta: ThetaOp,
) -> Vec<(u64, u64)> {
    pool.set_fault_injector(None);
    let ops = operands(w);
    let mut exec = strategy.executor(&ops).expect("operands cover everything");
    let mut pairs = exec.execute(&JoinRequest::new(theta), pool).pairs;
    pairs.sort_unstable();
    pairs
}

#[test]
fn every_strategy_is_fail_stop_under_injected_faults() {
    let mut pool = pool();
    let w = build_world(&mut pool);
    let strategies: Vec<Strategy> = Strategy::ALL.into_iter().chain([Strategy::Auto]).collect();
    let mut faulted = 0u64;
    let mut survived = 0u64;
    // Salt every run's injector seed with the combination index:
    // strategies that replay the identical page-read sequence would
    // otherwise share the identical fault stream, collapsing hundreds
    // of runs into a handful of distinct draws.
    let mut combo = 0u64;
    for theta in THETAS {
        for &strategy in &strategies {
            if !strategy.supports(theta) {
                continue;
            }
            let want = reference(&mut pool, &w, strategy, theta);
            for rate in [0.02, 0.08] {
                for seed in [1u64, 2, 3] {
                    combo += 1;
                    pool.set_fault_injector(Some(FaultInjector::new(FaultConfig::uniform(
                        seed.wrapping_add(combo.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        rate,
                    ))));
                    // Evict everything so the run performs physical
                    // reads — resident pages never consult the injector.
                    pool.clear();
                    let ops = operands(&w);
                    let mut exec = strategy.executor(&ops).expect("operands cover everything");
                    match exec.try_execute(&JoinRequest::new(theta), &mut pool) {
                        Ok(run) => {
                            survived += 1;
                            let mut got = run.pairs;
                            got.sort_unstable();
                            assert_eq!(
                                got,
                                want,
                                "{} under {theta:?} at rate {rate} seed {seed}: an Ok run \
                                 must be byte-identical to the fault-free reference",
                                strategy.name()
                            );
                        }
                        Err(e) => {
                            faulted += 1;
                            assert!(!e.kind().is_empty(), "errors must be typed, got {e:?}");
                        }
                    }
                    pool.set_fault_injector(None);
                }
            }
        }
    }
    assert!(faulted > 0, "injection rates must actually abort some runs");
    assert!(survived > 0, "low rates must let some runs complete");
}

#[test]
fn select_paths_are_fail_stop_too() {
    let mut pool = pool();
    let w = build_world(&mut pool);
    let probe = Geometry::Point(Point::new(20.0, 20.0));
    let theta = ThetaOp::WithinDistance(15.0);

    pool.set_fault_injector(None);
    let mut want = sj_joins::tree_join::tree_select(
        &mut pool,
        &w.r_tree,
        &probe,
        theta,
        sj_joins::tree_join::TraversalOrder::BreadthFirst,
    )
    .matches;
    want.sort_unstable();

    for seed in 0u64..10 {
        pool.set_fault_injector(Some(FaultInjector::new(FaultConfig::uniform(seed, 0.05))));
        pool.clear();
        match sj_joins::tree_join::try_tree_select(
            &mut pool,
            &w.r_tree,
            &probe,
            theta,
            sj_joins::tree_join::TraversalOrder::BreadthFirst,
        ) {
            Ok(run) => {
                let mut got = run.matches;
                got.sort_unstable();
                assert_eq!(got, want, "seed {seed}");
            }
            Err(e) => assert_eq!(e.kind(), "injected_fault"),
        }
        pool.set_fault_injector(None);
    }
}

#[test]
fn same_seed_replays_the_same_fault_trace() {
    let run = |seed: u64| {
        let mut pool = pool();
        let w = build_world(&mut pool);
        pool.set_fault_injector(Some(FaultInjector::new(FaultConfig::uniform(seed, 0.05))));
        pool.clear();
        let ops = operands(&w);
        let mut exec = Strategy::Sweep.executor(&ops).expect("flat operands");
        let outcome = exec
            .try_execute(&JoinRequest::new(ThetaOp::Overlaps), &mut pool)
            .map(|run| {
                let mut pairs = run.pairs;
                pairs.sort_unstable();
                pairs
            });
        let trace = pool
            .fault_injector()
            .expect("injector still armed")
            .trace()
            .to_vec();
        (outcome, trace)
    };
    let (outcome_a, trace_a) = run(0xDEAD);
    let (outcome_b, trace_b) = run(0xDEAD);
    assert_eq!(outcome_a, outcome_b, "same seed, same outcome");
    assert_eq!(trace_a, trace_b, "same seed, same fault trace");
    let (outcome_c, trace_c) = run(0xBEEF);
    // Different seeds draw different streams (the traces may coincide
    // only if neither run faulted at all).
    if !(trace_a.is_empty() && trace_c.is_empty()) {
        assert!(
            trace_a != trace_c || outcome_a == outcome_c,
            "distinct seeds should not replay the same non-empty trace by construction"
        );
    }
}
