//! Properties of the unified executor surface and the observability
//! layer:
//!
//! 1. Every [`Strategy`] reachable through [`JoinExecutor::execute`]
//!    returns exactly the legacy entry point's match set (and, for the
//!    free-function strategies, its exact [`ExecStats`]) — the executors
//!    are thin wrappers, not reimplementations.
//! 2. Per-phase [`PhaseStats`] deltas sum *exactly* to the run's
//!    [`ExecStats`] totals, on every strategy × every θ-operator it
//!    supports (the `seal` invariant).
//! 3. A run with [`TraceSink::Null`] and a run with [`TraceSink::Vec`]
//!    produce identical [`JoinRun`]s — tracing observes, never perturbs —
//!    and the Vec sink actually captures well-formed span events.

use proptest::prelude::*;
// `sj_joins::Strategy` shadows the prelude's generator trait; re-import it
// anonymously so `prop_map` et al. stay in scope.
use proptest::Strategy as _;
use sj_gentree::rtree::{RTree, RTreeConfig};
use sj_geom::{Direction, Geometry, Point, Rect, ThetaOp};
use sj_joins::nested_loop::nested_loop_join;
use sj_joins::parallel::{partition_join, Parallelism};
use sj_joins::sweep::sweep_join;
use sj_joins::tree_join::tree_join;
use sj_joins::{JoinOperands, JoinRequest, StoredRelation, Strategy, TraceSink, TreeRelation};
use sj_storage::{BufferPool, Disk, DiskConfig, Layout};

const WORLD: f64 = 128.0;

fn pool() -> BufferPool {
    BufferPool::new(Disk::new(DiskConfig::paper()), 64)
}

fn arb_geom() -> impl proptest::Strategy<Value = Geometry> {
    prop_oneof![
        (0.0..WORLD, 0.0..WORLD).prop_map(|(x, y)| Geometry::Point(Point::new(x, y))),
        (0.0..WORLD - 9.0, 0.0..WORLD - 9.0, 0.1..8.0f64, 0.1..8.0f64)
            .prop_map(|(x, y, w, h)| Geometry::Rect(Rect::from_bounds(x, y, x + w, y + h))),
    ]
}

fn arb_tuples(id0: u64) -> impl proptest::Strategy<Value = Vec<(u64, Geometry)>> {
    prop::collection::vec(arb_geom(), 1..32).prop_map(move |gs| {
        gs.into_iter()
            .enumerate()
            .map(|(i, g)| (id0 + i as u64, g))
            .collect()
    })
}

fn sorted(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable();
    v
}

/// All eight θ-operators of the paper's Table 1.
const ALL_THETAS: [ThetaOp; 8] = [
    ThetaOp::Overlaps,
    ThetaOp::Includes,
    ThetaOp::ContainedIn,
    ThetaOp::WithinDistance(6.0),
    ThetaOp::WithinCenterDistance(10.0),
    ThetaOp::Adjacent,
    ThetaOp::ReachableWithin {
        minutes: 4.0,
        speed: 2.0,
    },
    ThetaOp::DirectionOf(Direction::NorthWest),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn executors_wrap_trace_and_phase_sum(
        r_tuples in arb_tuples(0),
        s_tuples in arb_tuples(10_000),
        theta_pick in 0usize..8,
    ) {
        let theta = ALL_THETAS[theta_pick];
        let world = Rect::from_bounds(0.0, 0.0, WORLD, WORLD);
        let mut p = pool();
        let r = StoredRelation::build(&mut p, &r_tuples, 300, Layout::Clustered);
        let s = StoredRelation::build(&mut p, &s_tuples, 300, Layout::Clustered);
        let tr = TreeRelation::new(
            &mut p,
            RTree::bulk_load(RTreeConfig::with_fanout(5), r_tuples.clone()).tree().clone(),
            300,
            Layout::Clustered,
        );
        let ts = TreeRelation::new(
            &mut p,
            RTree::bulk_load(RTreeConfig::with_fanout(4), s_tuples.clone()).tree().clone(),
            300,
            Layout::Clustered,
        );
        let ops = JoinOperands::flat(&r, &s, world).with_trees(&tr, &ts);

        p.clear();
        p.reset_stats();
        let reference = sorted(nested_loop_join(&mut p, &r, &s, theta).pairs);

        for strat in Strategy::ALL {
            if !strat.supports(theta) {
                continue;
            }
            let mut exec = strat.executor(&ops).expect("both operand kinds present");
            prop_assert_eq!(exec.strategy(), strat);

            // Untraced run.
            p.clear();
            p.reset_stats();
            let run = exec.execute(&JoinRequest::new(theta), &mut p);

            // Property 2: phase deltas sum exactly to run totals.
            prop_assert_eq!(
                run.phases.total(), run.stats,
                "phase sums diverge for {} under {:?}", strat.name(), theta
            );

            // Property 1: same match set as the legacy surface (the
            // nested-loop reference, which the legacy entry points are
            // already property-tested against).
            prop_assert_eq!(
                sorted(run.pairs.clone()), reference.clone(),
                "{} diverges from reference for {:?}", strat.name(), theta
            );

            // Property 3: a Vec-traced run of a fresh executor is
            // indistinguishable in pairs, totals, and phase deltas.
            let mut exec2 = strat.executor(&ops).expect("both operand kinds present");
            p.clear();
            p.reset_stats();
            let req = JoinRequest::new(theta).with_trace(TraceSink::vec());
            let traced = exec2.execute(&req, &mut p);
            prop_assert_eq!(&run.pairs, &traced.pairs, "{} trace perturbed pairs", strat.name());
            prop_assert_eq!(run.stats, traced.stats, "{} trace perturbed stats", strat.name());
            prop_assert_eq!(
                run.phases.clone(), traced.phases.clone(),
                "{} trace perturbed phase deltas", strat.name()
            );
            let sink = req.take_trace();
            let events = sink.events();
            prop_assert!(!events.is_empty(), "{} emitted no spans", strat.name());
            for ev in events {
                prop_assert!(!ev.span.is_empty());
                prop_assert!(
                    ev.counters.iter().all(|(name, _)| !name.is_empty()),
                    "unnamed counter in span {}", ev.span
                );
            }
        }
    }

    /// The free-function strategies' executors reproduce not just the
    /// match set but the *exact* `ExecStats` of their legacy twins.
    #[test]
    fn free_function_executors_preserve_exact_stats(
        r_tuples in arb_tuples(0),
        s_tuples in arb_tuples(10_000),
        theta_pick in 0usize..8,
    ) {
        let theta = ALL_THETAS[theta_pick];
        let world = Rect::from_bounds(0.0, 0.0, WORLD, WORLD);
        let mut p = pool();
        let r = StoredRelation::build(&mut p, &r_tuples, 300, Layout::Clustered);
        let s = StoredRelation::build(&mut p, &s_tuples, 300, Layout::Clustered);
        let tr = TreeRelation::new(
            &mut p,
            RTree::bulk_load(RTreeConfig::with_fanout(5), r_tuples.clone()).tree().clone(),
            300,
            Layout::Clustered,
        );
        let ts = TreeRelation::new(
            &mut p,
            RTree::bulk_load(RTreeConfig::with_fanout(4), s_tuples.clone()).tree().clone(),
            300,
            Layout::Clustered,
        );
        let ops = JoinOperands::flat(&r, &s, world).with_trees(&tr, &ts);

        type Legacy<'a> = Box<dyn FnMut(&mut BufferPool) -> sj_joins::JoinRun + 'a>;
        let legacy_pairs: Vec<(Strategy, Legacy)> = vec![
            (Strategy::NestedLoop, Box::new(|p: &mut BufferPool| nested_loop_join(p, &r, &s, theta))),
            (Strategy::Sweep, Box::new(|p: &mut BufferPool| sweep_join(p, &r, &s, theta))),
            (Strategy::Tree, Box::new(|p: &mut BufferPool| tree_join(p, &tr, &ts, theta))),
            (Strategy::Partition, Box::new(|p: &mut BufferPool| {
                partition_join(p, &r, &s, theta, Parallelism::sequential())
            })),
        ];
        for (strat, mut legacy) in legacy_pairs {
            p.clear();
            p.reset_stats();
            let want = legacy(&mut p);

            let mut exec = strat.executor(&ops).expect("operands present");
            p.clear();
            p.reset_stats();
            let got = exec.execute(&JoinRequest::new(theta), &mut p);
            prop_assert_eq!(&got.pairs, &want.pairs, "{} pairs diverge", strat.name());
            prop_assert_eq!(got.stats, want.stats, "{} stats diverge", strat.name());
        }
    }
}
