//! # sj-btree — an order-z B+-tree
//!
//! Günther's strategy III stores join indices "implemented using B±-trees"
//! (assumption S4, §4.1) with `z` index entries per page (Table 2; Table 3
//! uses z = 100) and charges one I/O per node visit plus the tree height
//! `d`. This crate provides exactly that substrate: an in-memory B+-tree
//! whose nodes stand in for disk pages, with
//!
//! * configurable order `z` (maximum entries per node),
//! * [`BPlusTree::height`] — the model's `d`,
//! * a node-visit counter ([`BPlusTree::accesses`]) so executors can report
//!   index I/O in the model's own unit,
//! * ordered iteration and inclusive range scans via linked leaves,
//! * full deletion with borrow/merge rebalancing.
//!
//! ## Example
//!
//! ```
//! use sj_btree::BPlusTree;
//!
//! let mut t: BPlusTree<u64, &str> = BPlusTree::new(4);
//! for (k, v) in [(3, "c"), (1, "a"), (2, "b"), (4, "d"), (5, "e")] {
//!     t.insert(k, v);
//! }
//! assert_eq!(t.get(&2), Some(&"b"));
//! assert_eq!(t.range(&2, &4), vec![(2, "b"), (3, "c"), (4, "d")]);
//! assert_eq!(t.remove(&3), Some("c"));
//! assert_eq!(t.len(), 4);
//! ```

use std::cell::Cell;
use std::fmt::Debug;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Internal {
        /// `keys[i]` is the smallest key reachable through `children[i+1]`.
        keys: Vec<K>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
        next: usize,
    },
    /// Recycled slot (produced by merges).
    Free,
}

/// An order-`z` B+-tree with node-access accounting.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    root: usize,
    order: usize,
    len: usize,
    height: usize,
    accesses: Cell<u64>,
}

impl<K: Ord + Clone + Debug, V: Clone> BPlusTree<K, V> {
    /// Creates an empty tree with at most `order` entries per node
    /// (`order` ≥ 3; the paper's `z`).
    pub fn new(order: usize) -> Self {
        assert!(order >= 3, "B+-tree order must be at least 3, got {order}");
        BPlusTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
                next: NIL,
            }],
            free: Vec::new(),
            root: 0,
            order,
            len: 0,
            height: 1,
            accesses: Cell::new(0),
        }
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (a lone leaf has height 1). This is the
    /// model's `d` parameter.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Maximum entries per node (the model's `z`).
    #[inline]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of live nodes — the tree's size in "pages".
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Node visits since the last [`BPlusTree::reset_accesses`] — the
    /// simulated page-I/O count of all operations performed.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Zeroes the node-visit counter.
    pub fn reset_accesses(&self) {
        self.accesses.set(0);
    }

    #[inline]
    fn visit(&self, node: usize) -> usize {
        self.accesses.set(self.accesses.get() + 1);
        node
    }

    fn alloc(&mut self, node: Node<K, V>) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn release(&mut self, idx: usize) {
        self.nodes[idx] = Node::Free;
        self.free.push(idx);
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = self.visit(self.root);
        loop {
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = self.visit(children[idx]);
                }
                Node::Leaf { keys, values, .. } => {
                    return keys.binary_search(key).ok().map(|i| &values[i]);
                }
                Node::Free => unreachable!("descended into a freed node"),
            }
        }
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts an entry, returning the previous value for `key` if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (old, split) = self.insert_rec(self.root, key, value);
        if let Some((sep, right)) = split {
            let new_root = self.alloc(Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            });
            self.root = new_root;
            self.height += 1;
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(&mut self, node: usize, key: K, value: V) -> (Option<V>, Option<(K, usize)>) {
        self.visit(node);
        match &mut self.nodes[node] {
            Node::Leaf { keys, values, .. } => match keys.binary_search(&key) {
                Ok(i) => {
                    let old = std::mem::replace(&mut values[i], value);
                    (Some(old), None)
                }
                Err(i) => {
                    keys.insert(i, key);
                    values.insert(i, value);
                    if keys.len() > self.order {
                        (None, Some(self.split_leaf(node)))
                    } else {
                        (None, None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                let child = children[idx];
                let (old, split) = self.insert_rec(child, key, value);
                if let Some((sep, right)) = split {
                    let Node::Internal { keys, children } = &mut self.nodes[node] else {
                        unreachable!()
                    };
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() > self.order {
                        return (old, Some(self.split_internal(node)));
                    }
                }
                (old, None)
            }
            Node::Free => unreachable!("descended into a freed node"),
        }
    }

    fn split_leaf(&mut self, node: usize) -> (K, usize) {
        let Node::Leaf { keys, values, next } = &mut self.nodes[node] else {
            unreachable!()
        };
        let mid = keys.len() / 2;
        let right_keys: Vec<K> = keys.split_off(mid);
        let right_values: Vec<V> = values.split_off(mid);
        let old_next = *next;
        let sep = right_keys[0].clone();
        let right = self.alloc(Node::Leaf {
            keys: right_keys,
            values: right_values,
            next: old_next,
        });
        let Node::Leaf { next, .. } = &mut self.nodes[node] else {
            unreachable!()
        };
        *next = right;
        (sep, right)
    }

    fn split_internal(&mut self, node: usize) -> (K, usize) {
        let Node::Internal { keys, children } = &mut self.nodes[node] else {
            unreachable!()
        };
        let mid = keys.len() / 2;
        let sep = keys[mid].clone();
        let right_keys: Vec<K> = keys.split_off(mid + 1);
        keys.pop(); // drop sep from the left node
        let right_children: Vec<usize> = children.split_off(mid + 1);
        let right = self.alloc(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        (sep, right)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = self.remove_rec(self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        // Collapse a root that lost all separators.
        if let Node::Internal { children, keys } = &self.nodes[self.root] {
            if keys.is_empty() {
                debug_assert_eq!(children.len(), 1);
                let only = children[0];
                let old_root = self.root;
                self.root = only;
                self.release(old_root);
                self.height -= 1;
            }
        }
        removed
    }

    fn min_keys(&self) -> usize {
        self.order / 2
    }

    fn remove_rec(&mut self, node: usize, key: &K) -> Option<V> {
        self.visit(node);
        match &mut self.nodes[node] {
            Node::Leaf { keys, values, .. } => match keys.binary_search(key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(values.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= key);
                let child = children[idx];
                let removed = self.remove_rec(child, key);
                if removed.is_some() {
                    self.rebalance_child(node, idx);
                }
                removed
            }
            Node::Free => unreachable!("descended into a freed node"),
        }
    }

    /// Restores the occupancy invariant of `children[idx]` under `parent`
    /// by borrowing from a sibling or merging with one.
    fn rebalance_child(&mut self, parent: usize, idx: usize) {
        let min = self.min_keys();
        let Node::Internal { children, .. } = &self.nodes[parent] else {
            unreachable!()
        };
        let child = children[idx];
        let child_size = self.node_len(child);
        if child_size >= min {
            return;
        }
        let sibling_count = children.len();

        // Try borrowing from the left sibling.
        if idx > 0 {
            let left = {
                let Node::Internal { children, .. } = &self.nodes[parent] else {
                    unreachable!()
                };
                children[idx - 1]
            };
            if self.node_len(left) > min {
                self.borrow_from_left(parent, idx);
                return;
            }
        }
        // Try borrowing from the right sibling.
        if idx + 1 < sibling_count {
            let right = {
                let Node::Internal { children, .. } = &self.nodes[parent] else {
                    unreachable!()
                };
                children[idx + 1]
            };
            if self.node_len(right) > min {
                self.borrow_from_right(parent, idx);
                return;
            }
        }
        // Merge with a sibling (prefer left).
        if idx > 0 {
            self.merge_children(parent, idx - 1);
        } else {
            self.merge_children(parent, idx);
        }
    }

    fn node_len(&self, node: usize) -> usize {
        match &self.nodes[node] {
            Node::Internal { keys, .. } => keys.len(),
            Node::Leaf { keys, .. } => keys.len(),
            Node::Free => unreachable!(),
        }
    }

    fn borrow_from_left(&mut self, parent: usize, idx: usize) {
        let (left, child) = {
            let Node::Internal { children, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            (children[idx - 1], children[idx])
        };
        // Move the last entry of `left` to the front of `child`.
        match (&self.nodes[left], &self.nodes[child]) {
            (Node::Leaf { .. }, Node::Leaf { .. }) => {
                let (k, v) = {
                    let Node::Leaf { keys, values, .. } = &mut self.nodes[left] else {
                        unreachable!()
                    };
                    (
                        keys.pop().expect("left has > min keys"),
                        values.pop().expect("values parallel keys"),
                    )
                };
                let new_sep = k.clone();
                {
                    let Node::Leaf { keys, values, .. } = &mut self.nodes[child] else {
                        unreachable!()
                    };
                    keys.insert(0, k);
                    values.insert(0, v);
                }
                let Node::Internal { keys, .. } = &mut self.nodes[parent] else {
                    unreachable!()
                };
                keys[idx - 1] = new_sep;
            }
            (Node::Internal { .. }, Node::Internal { .. }) => {
                let (k, c) = {
                    let Node::Internal { keys, children } = &mut self.nodes[left] else {
                        unreachable!()
                    };
                    (
                        keys.pop().expect("left has > min keys"),
                        children.pop().expect("children parallel keys"),
                    )
                };
                let sep = {
                    let Node::Internal { keys, .. } = &mut self.nodes[parent] else {
                        unreachable!()
                    };
                    std::mem::replace(&mut keys[idx - 1], k)
                };
                let Node::Internal { keys, children } = &mut self.nodes[child] else {
                    unreachable!()
                };
                keys.insert(0, sep);
                children.insert(0, c);
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    fn borrow_from_right(&mut self, parent: usize, idx: usize) {
        let (child, right) = {
            let Node::Internal { children, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            (children[idx], children[idx + 1])
        };
        match (&self.nodes[child], &self.nodes[right]) {
            (Node::Leaf { .. }, Node::Leaf { .. }) => {
                let (k, v) = {
                    let Node::Leaf { keys, values, .. } = &mut self.nodes[right] else {
                        unreachable!()
                    };
                    (keys.remove(0), values.remove(0))
                };
                let new_sep = {
                    let Node::Leaf { keys, .. } = &self.nodes[right] else {
                        unreachable!()
                    };
                    keys[0].clone()
                };
                {
                    let Node::Leaf { keys, values, .. } = &mut self.nodes[child] else {
                        unreachable!()
                    };
                    keys.push(k);
                    values.push(v);
                }
                let Node::Internal { keys, .. } = &mut self.nodes[parent] else {
                    unreachable!()
                };
                keys[idx] = new_sep;
            }
            (Node::Internal { .. }, Node::Internal { .. }) => {
                let (k, c) = {
                    let Node::Internal { keys, children } = &mut self.nodes[right] else {
                        unreachable!()
                    };
                    (keys.remove(0), children.remove(0))
                };
                let sep = {
                    let Node::Internal { keys, .. } = &mut self.nodes[parent] else {
                        unreachable!()
                    };
                    std::mem::replace(&mut keys[idx], k)
                };
                let Node::Internal { keys, children } = &mut self.nodes[child] else {
                    unreachable!()
                };
                keys.push(sep);
                children.push(c);
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    /// Merges `children[idx + 1]` into `children[idx]` under `parent`.
    fn merge_children(&mut self, parent: usize, idx: usize) {
        let (left, right, sep) = {
            let Node::Internal { keys, children } = &mut self.nodes[parent] else {
                unreachable!()
            };
            let sep = keys.remove(idx);
            let right = children.remove(idx + 1);
            (children[idx], right, sep)
        };
        let right_node = std::mem::replace(&mut self.nodes[right], Node::Free);
        self.free.push(right);
        match (&mut self.nodes[left], right_node) {
            (
                Node::Leaf { keys, values, next },
                Node::Leaf {
                    keys: rk,
                    values: rv,
                    next: rn,
                },
            ) => {
                keys.extend(rk);
                values.extend(rv);
                *next = rn;
            }
            (
                Node::Internal { keys, children },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                keys.push(sep);
                keys.extend(rk);
                children.extend(rc);
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    /// Inclusive range scan `[lo, hi]`, in key order.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        // Descend to the leaf that would hold `lo`.
        let mut node = self.visit(self.root);
        loop {
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= lo);
                    node = self.visit(children[idx]);
                }
                Node::Leaf { .. } => break,
                Node::Free => unreachable!(),
            }
        }
        // Walk the leaf chain.
        loop {
            let Node::Leaf { keys, values, next } = &self.nodes[node] else {
                unreachable!()
            };
            for (k, v) in keys.iter().zip(values) {
                if k > hi {
                    return out;
                }
                if k >= lo {
                    out.push((k.clone(), v.clone()));
                }
            }
            if *next == NIL {
                return out;
            }
            node = self.visit(*next);
        }
    }

    /// All entries in key order.
    pub fn iter_all(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len);
        let mut node = self.visit(self.root);
        loop {
            match &self.nodes[node] {
                Node::Internal { children, .. } => {
                    node = self.visit(children[0]);
                }
                Node::Leaf { .. } => break,
                Node::Free => unreachable!(),
            }
        }
        loop {
            let Node::Leaf { keys, values, next } = &self.nodes[node] else {
                unreachable!()
            };
            for (k, v) in keys.iter().zip(values) {
                out.push((k.clone(), v.clone()));
            }
            if *next == NIL {
                return out;
            }
            node = self.visit(*next);
        }
    }

    /// Verifies the structural invariants (sortedness, occupancy, height
    /// uniformity, leaf-chain order). Panics with a description on
    /// violation. Intended for tests.
    pub fn check_invariants(&self) {
        let depth = self.check_node(self.root, None, None, true);
        assert_eq!(depth, self.height, "cached height disagrees with structure");
        let all = self.iter_all();
        assert_eq!(all.len(), self.len, "cached len disagrees with contents");
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "leaf chain out of order");
        }
    }

    fn check_node(&self, node: usize, lo: Option<&K>, hi: Option<&K>, is_root: bool) -> usize {
        let min = self.min_keys();
        match &self.nodes[node] {
            Node::Leaf { keys, values, .. } => {
                assert_eq!(keys.len(), values.len());
                assert!(keys.len() <= self.order, "leaf overflow");
                if !is_root {
                    assert!(keys.len() >= min, "leaf underflow: {} < {min}", keys.len());
                }
                for w in keys.windows(2) {
                    assert!(w[0] < w[1], "unsorted leaf");
                }
                if let (Some(lo), Some(first)) = (lo, keys.first()) {
                    assert!(first >= lo, "leaf key below subtree bound");
                }
                if let (Some(hi), Some(last)) = (hi, keys.last()) {
                    assert!(last < hi, "leaf key above subtree bound");
                }
                1
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1);
                assert!(keys.len() <= self.order, "internal overflow");
                if !is_root {
                    assert!(keys.len() >= min, "internal underflow");
                } else {
                    assert!(!keys.is_empty(), "root internal must have a separator");
                }
                for w in keys.windows(2) {
                    assert!(w[0] < w[1], "unsorted separators");
                }
                let mut depth = None;
                for (i, &c) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    let d = self.check_node(c, clo, chi, false);
                    if let Some(prev) = depth {
                        assert_eq!(prev, d, "unbalanced subtrees");
                    }
                    depth = Some(d);
                }
                depth.expect("internal node has children") + 1
            }
            Node::Free => panic!("reachable freed node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_basics() {
        let t: BPlusTree<u64, u64> = BPlusTree::new(4);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.get(&1), None);
        assert_eq!(t.range(&0, &100), vec![]);
        t.check_invariants();
    }

    #[test]
    fn insert_get_replace() {
        let mut t = BPlusTree::new(4);
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.get(&1), Some(&"b"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sequential_inserts_grow_height() {
        let mut t = BPlusTree::new(4);
        for i in 0..100u64 {
            t.insert(i, i * 10);
            t.check_invariants();
        }
        assert_eq!(t.len(), 100);
        assert!(t.height() >= 3);
        for i in 0..100u64 {
            assert_eq!(t.get(&i), Some(&(i * 10)));
        }
    }

    #[test]
    fn reverse_inserts_stay_sorted() {
        let mut t = BPlusTree::new(3);
        let keys: Vec<u64> = (0..200).rev().collect();
        for &k in &keys {
            t.insert(k, k);
            t.check_invariants();
        }
        let all = t.iter_all();
        assert_eq!(all.len(), 200);
        for (i, (k, _)) in all.iter().enumerate() {
            assert_eq!(*k, i as u64);
        }
    }

    #[test]
    fn range_scan_inclusive() {
        let mut t = BPlusTree::new(4);
        for i in (0..50u64).map(|i| i * 2) {
            t.insert(i, ());
        }
        let r = t.range(&10, &20);
        let keys: Vec<u64> = r.into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20]);
        assert_eq!(t.range(&11, &11), vec![]);
        assert_eq!(t.range(&98, &1000), vec![(98, ())]);
        assert_eq!(t.range(&30, &10), vec![]); // inverted bounds
    }

    #[test]
    fn remove_simple_and_missing() {
        let mut t = BPlusTree::new(4);
        for i in 0..10u64 {
            t.insert(i, i);
        }
        assert_eq!(t.remove(&5), Some(5));
        assert_eq!(t.remove(&5), None);
        assert_eq!(t.len(), 9);
        assert_eq!(t.get(&5), None);
        t.check_invariants();
    }

    #[test]
    fn remove_everything_collapses_tree() {
        let mut t = BPlusTree::new(3);
        for i in 0..100u64 {
            t.insert(i, i);
        }
        for i in 0..100u64 {
            assert_eq!(t.remove(&i), Some(i), "removing {i}");
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn remove_in_random_order() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut t = BPlusTree::new(5);
        let mut keys: Vec<u64> = (0..300).collect();
        for &k in &keys {
            t.insert(k, k);
        }
        keys.shuffle(&mut rng);
        for (n, &k) in keys.iter().enumerate() {
            assert_eq!(t.remove(&k), Some(k));
            t.check_invariants();
            assert_eq!(t.len(), 300 - n - 1);
        }
    }

    #[test]
    fn height_matches_order_and_size() {
        // z = 100: 10^4 entries fit in ≤ 3 levels.
        let mut t = BPlusTree::new(100);
        for i in 0..10_000u64 {
            t.insert(i, ());
        }
        assert!(t.height() <= 3, "height {} too large", t.height());
        t.check_invariants();
    }

    #[test]
    fn accesses_count_node_visits() {
        let mut t = BPlusTree::new(4);
        for i in 0..100u64 {
            t.insert(i, ());
        }
        t.reset_accesses();
        t.get(&42);
        // A point lookup visits exactly `height` nodes.
        assert_eq!(t.accesses(), t.height() as u64);
    }

    #[test]
    fn composite_keys_support_prefix_ranges() {
        // The join-index use case: key = (r, s) pairs, prefix scans per r.
        let mut t: BPlusTree<(u32, u32), ()> = BPlusTree::new(4);
        for r in 0..10 {
            for s in 0..5 {
                t.insert((r, s), ());
            }
        }
        let pairs = t.range(&(3, 0), &(3, u32::MAX));
        assert_eq!(pairs.len(), 5);
        assert!(pairs.iter().all(|((r, _), _)| *r == 3));
    }

    #[test]
    fn node_count_shrinks_after_mass_removal() {
        let mut t = BPlusTree::new(4);
        for i in 0..500u64 {
            t.insert(i, ());
        }
        let full = t.node_count();
        for i in 0..400u64 {
            t.remove(&i);
        }
        t.check_invariants();
        assert!(t.node_count() < full);
    }
}
