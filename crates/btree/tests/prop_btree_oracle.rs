//! Model-based testing: the B+-tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences, while
//! maintaining its structural invariants after every operation.

use proptest::prelude::*;
use sj_btree::BPlusTree;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        any::<u16>().prop_map(|k| Op::Get(k % 512)),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Range(a % 512, b % 512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn btree_matches_std_oracle(
        order in 3usize..12,
        ops in prop::collection::vec(arb_op(), 1..400),
    ) {
        let mut tree: BPlusTree<u16, u32> = BPlusTree::new(order);
        let mut oracle: BTreeMap<u16, u32> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), oracle.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), oracle.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k), oracle.get(&k));
                }
                Op::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got = tree.range(&lo, &hi);
                    let want: Vec<(u16, u32)> =
                        oracle.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            tree.check_invariants();
            prop_assert_eq!(tree.len(), oracle.len());
        }

        // Final full iteration agrees.
        let got = tree.iter_all();
        let want: Vec<(u16, u32)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Height grows logarithmically: for order z and n entries,
    /// height ≤ ⌈log_{z/2}(n)⌉ + 1 (a loose but useful bound).
    #[test]
    fn height_is_logarithmic(order in 4usize..32, n in 1usize..2000) {
        let mut tree: BPlusTree<usize, ()> = BPlusTree::new(order);
        for i in 0..n {
            tree.insert(i, ());
        }
        let half = (order / 2) as f64;
        let bound = ((n as f64).ln() / half.ln()).ceil() as usize + 2;
        prop_assert!(
            tree.height() <= bound,
            "height {} exceeds bound {bound} for order {order}, n {n}",
            tree.height()
        );
    }
}
