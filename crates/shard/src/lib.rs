//! `sj-shard`: tile-sharded scatter-gather execution.
//!
//! ROADMAP item 5, and the distributed reading of the paper's §4
//! parallel cost discussion: the PBSM tile decomposition that
//! `sj-joins::parallel` uses for intra-process threading is promoted to
//! a shard-per-tile architecture. A [`ShardRouter`] partitions both
//! relations into tile shards, stands up one
//! [`SpatialService`](sj_service::SpatialService) per shard owning only
//! its tile's slice of the data, fans SELECT/JOIN requests out
//! scatter-gather style over a [`Transport`], and merges the shard
//! replies into a result that is *byte-identical* to what a single
//! whole-data service returns (property-tested across all eight
//! θ-operators, shard counts, and interleaved mutations).
//!
//! ## Why the merge is exact
//!
//! Shard `i` owns a leaf rectangle `Lᵢ` of the plan; the leaves tile the
//! router's world (the union of both relations' MBRs). The slices are
//! assigned with a halo: shard `i` holds every `R` tuple whose
//! halo-expanded, world-clamped MBR intersects `Lᵢ` and every `S` tuple
//! whose world-clamped MBR intersects `Lᵢ`. For a join with filter
//! radius `ε ≤ halo`, any matching pair `(r, s)` has a witness point
//! `p ∈ r.mbr.expand(ε) ∩ s.mbr`; its clamp `p'` lies in some leaf `L`,
//! and — clamping being monotone per coordinate — `p'` also lies in both
//! clamped assignment rects, so `L`'s shard holds *both* tuples and its
//! exact shard-local join reports the pair. Every reported pair is a
//! true θ-match (shards run the same exact executors as a single node),
//! so concatenating the shard outputs, sorting, and deduplicating the
//! halo-induced multi-assignment duplicates reproduces the single-node
//! result exactly. Predicates a spatial partition cannot localize
//! (directional operators, distance bounds beyond the halo) route to a
//! whole-world fallback shard instead — the same reason `grid_join`
//! rejects directional θ.
//!
//! ## Skew
//!
//! The base grid is sized from the requested shard count, then any tile
//! whose assigned tuple count exceeds a threshold is recursively
//! quad-split ([`ShardPlan::build`]) up to a bounded depth — occupancy-
//! driven splitting from the router, not the static `tiles_per_axis`
//! heuristic, so an all-in-one-corner dataset still spreads across
//! shards.
//!
//! ## Adaptive `Auto`
//!
//! `Strategy::Auto` joins are rewritten per shard: each shard has an
//! [`AdaptiveAdvisor`](sj_core::advisor::AdaptiveAdvisor) that starts
//! from the §4 static cost model and feeds each shard's observed
//! execution time (the sj-obs phase total surfaced as
//! `Response::exec_us`) back into the choice, so repeated requests
//! against a skewed tile migrate off a mispredicted strategy online.
//!
//! ## Observability
//!
//! [`ShardRouter::metrics`] merges the per-shard
//! [`ServiceMetrics`](sj_service::ServiceMetrics) histograms;
//! [`ShardRouter::emit_metrics`] absorbs every shard's trace stream
//! under a `shard:<i>/…` span prefix (see `TraceSink::absorb` in
//! `sj-obs`), so one merged trace still attributes every phase to the
//! shard that ran it.

pub mod plan;
pub mod router;
pub mod transport;

pub use plan::{ShardPlan, ShardPlanConfig};
pub use router::{RouterReceipt, RouterResponse, RouterResult, ShardConfig, ShardRouter};
pub use transport::{LocalTransport, Transport};
