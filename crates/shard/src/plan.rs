//! The shard plan: which leaf rectangle each shard owns.
//!
//! The base decomposition reuses [`TileGrid`] — the same grid (and the
//! same half-open boundary convention) the intra-process PBSM join uses,
//! so tile ownership means the same thing at both scales. On top of the
//! base grid, tiles whose occupancy exceeds a threshold are recursively
//! quad-split: skew handling is driven by *observed* occupancy at plan
//! build time, not by the static `tiles_per_axis` heuristic (which is
//! size-only and cannot see an all-in-one-corner dataset).

use sj_geom::{Point, Rect};
use sj_joins::TileGrid;

/// Geometry of the shard decomposition.
#[derive(Debug, Clone, Copy)]
pub struct ShardPlanConfig {
    /// Target shard count; the base grid is the smallest `a × b` grid
    /// with `a·b ≥ shards` and near-square aspect (1 → 1×1, 2 → 2×1,
    /// 4 → 2×2). Skew splitting can push the final leaf count higher.
    pub shards: usize,
    /// Quad-split a tile when its assigned tuple count exceeds this.
    pub split_threshold: usize,
    /// Bound on recursive splitting (identical coincident tuples can
    /// never be separated spatially, so recursion must terminate).
    pub max_split_depth: usize,
}

impl Default for ShardPlanConfig {
    fn default() -> Self {
        ShardPlanConfig {
            shards: 4,
            split_threshold: 8 * 1024,
            max_split_depth: 4,
        }
    }
}

/// The leaf rectangles of the shard decomposition. Leaves tile the
/// world: every world point lies in at least one leaf (closed
/// rectangles share edges), and [`ShardPlan::clamp`] maps any rectangle
/// — including out-of-world ones — into the world so that routing and
/// slice assignment agree about border objects.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    world: Rect,
    leaves: Vec<Rect>,
    base_tiles: usize,
}

impl ShardPlan {
    /// Builds the plan over `world` (the union of both relations'
    /// MBRs). `occupancy` reports how many tuples a candidate leaf
    /// would be assigned; it drives the recursive skew split.
    pub fn build(
        world: Rect,
        config: &ShardPlanConfig,
        occupancy: &dyn Fn(&Rect) -> usize,
    ) -> ShardPlan {
        let shards = config.shards.max(1);
        let tiles_x = (shards as f64).sqrt().ceil() as usize;
        let tiles_y = shards.div_ceil(tiles_x);
        let grid = TileGrid::new(world, tiles_x, tiles_y);
        let base_tiles = grid.len();
        let mut leaves = Vec::with_capacity(base_tiles);
        let mut work: Vec<(Rect, usize)> =
            (0..base_tiles).map(|t| (grid.tile_rect(t), 0)).collect();
        while let Some((rect, depth)) = work.pop() {
            // A degenerate rect cannot be subdivided; coincident tuples
            // stay together regardless of depth.
            let splittable = rect.width() > 0.0 && rect.height() > 0.0;
            if splittable
                && depth < config.max_split_depth
                && occupancy(&rect) > config.split_threshold
            {
                let c = rect.center();
                work.push((Rect::from_bounds(rect.lo.x, rect.lo.y, c.x, c.y), depth + 1));
                work.push((Rect::from_bounds(c.x, rect.lo.y, rect.hi.x, c.y), depth + 1));
                work.push((Rect::from_bounds(rect.lo.x, c.y, c.x, rect.hi.y), depth + 1));
                work.push((Rect::from_bounds(c.x, c.y, rect.hi.x, rect.hi.y), depth + 1));
            } else {
                leaves.push(rect);
            }
        }
        // Row-major-ish canonical order so shard indices are stable
        // across rebuilds of the same plan.
        leaves.sort_by(|a, b| {
            (a.lo.y, a.lo.x, a.hi.y, a.hi.x)
                .partial_cmp(&(b.lo.y, b.lo.x, b.hi.y, b.hi.x))
                .expect("finite leaf bounds")
        });
        ShardPlan {
            world,
            leaves,
            base_tiles,
        }
    }

    /// The world rectangle the leaves tile.
    pub fn world(&self) -> Rect {
        self.world
    }

    /// The leaf rectangle owned by each shard, indexed by shard id.
    pub fn leaves(&self) -> &[Rect] {
        &self.leaves
    }

    /// Number of shards (leaves).
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// A plan always has at least one leaf.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Leaves created by skew splitting beyond the base grid.
    pub fn splits(&self) -> usize {
        self.leaves.len().saturating_sub(self.base_tiles)
    }

    /// Clamps a rectangle into the world, coordinate-wise. Clamping is
    /// monotone, so two intersecting rectangles still intersect after
    /// clamping — the property that keeps out-of-world objects exactly
    /// joinable from the border shards they land in.
    pub fn clamp(&self, r: &Rect) -> Rect {
        Rect::from_bounds(
            r.lo.x.clamp(self.world.lo.x, self.world.hi.x),
            r.lo.y.clamp(self.world.lo.y, self.world.hi.y),
            r.hi.x.clamp(self.world.lo.x, self.world.hi.x),
            r.hi.y.clamp(self.world.lo.y, self.world.hi.y),
        )
    }

    /// Shards whose leaf intersects the (clamped) rectangle. Never
    /// empty: every rectangle clamps into the world, which the leaves
    /// cover.
    pub fn shards_overlapping(&self, r: &Rect) -> Vec<usize> {
        let c = self.clamp(r);
        self.leaves
            .iter()
            .enumerate()
            .filter(|(_, leaf)| leaf.intersects(&c))
            .map(|(i, _)| i)
            .collect()
    }

    /// The single shard owning a point (first covering leaf in
    /// canonical order — used for cheap point routing; boundary points
    /// may lie on several leaves' edges, any of which is correct).
    pub fn shard_of_point(&self, p: Point) -> usize {
        let c = self.clamp(&Rect::from_bounds(p.x, p.y, p.x, p.y));
        self.leaves
            .iter()
            .position(|leaf| leaf.intersects(&c))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn base_grid_matches_requested_shard_count() {
        for (shards, want) in [(1, 1), (2, 2), (4, 4), (3, 4)] {
            let cfg = ShardPlanConfig {
                shards,
                ..Default::default()
            };
            let plan = ShardPlan::build(world(), &cfg, &|_| 0);
            assert_eq!(plan.len(), want, "shards={shards}");
            assert_eq!(plan.splits(), 0);
        }
    }

    #[test]
    fn leaves_cover_the_world() {
        let cfg = ShardPlanConfig {
            shards: 4,
            ..Default::default()
        };
        let plan = ShardPlan::build(world(), &cfg, &|_| 0);
        // Probe a dense lattice including the max edges.
        for i in 0..=20 {
            for j in 0..=20 {
                let p = Point::new(i as f64 * 5.0, j as f64 * 5.0);
                let probe = Rect::from_bounds(p.x, p.y, p.x, p.y);
                assert!(
                    !plan.shards_overlapping(&probe).is_empty(),
                    "uncovered point {p:?}"
                );
            }
        }
    }

    #[test]
    fn out_of_world_rects_route_to_border_shards() {
        let cfg = ShardPlanConfig {
            shards: 4,
            ..Default::default()
        };
        let plan = ShardPlan::build(world(), &cfg, &|_| 0);
        let far = Rect::from_bounds(500.0, 500.0, 510.0, 510.0);
        let targets = plan.shards_overlapping(&far);
        assert!(!targets.is_empty(), "out-of-world must still route");
        // Clamps to the world's max corner → the top-right leaf.
        let corner = plan.shard_of_point(Point::new(100.0, 100.0));
        assert!(targets.contains(&corner));
    }

    /// Satellite regression: a pathological all-in-one-corner dataset.
    /// The static base grid concentrates everything in one tile; the
    /// occupancy-driven recursive quad-split must break that tile up.
    #[test]
    fn skew_split_breaks_up_a_corner_hotspot() {
        // 10k synthetic tuples, all inside [0,10]² of a [0,100]² world.
        let tuples: Vec<Rect> = (0..10_000)
            .map(|i| {
                let x = (i % 100) as f64 * 0.1;
                let y = (i / 100) as f64 * 0.1;
                Rect::from_bounds(x, y, x, y)
            })
            .collect();
        let occupancy = |leaf: &Rect| tuples.iter().filter(|t| t.intersects(leaf)).count();
        let cfg = ShardPlanConfig {
            shards: 4,
            split_threshold: 2_000,
            max_split_depth: 6,
        };
        let plan = ShardPlan::build(world(), &cfg, &occupancy);
        assert!(plan.splits() > 0, "hotspot tile must be quad-split");
        assert!(plan.len() > 4);
        let max_leaf = plan.leaves().iter().map(occupancy).max().unwrap();
        assert!(
            max_leaf <= cfg.split_threshold,
            "after splitting, no leaf should exceed the threshold (max {max_leaf})"
        );
        // Coverage still holds for the hotspot corner.
        assert!(!plan
            .shards_overlapping(&Rect::from_bounds(0.0, 0.0, 10.0, 10.0))
            .is_empty());
    }

    #[test]
    fn split_depth_is_bounded_for_coincident_tuples() {
        // Every tuple at the same point: occupancy can never drop below
        // the total, so only max_split_depth stops the recursion.
        let occupancy = |leaf: &Rect| {
            if leaf.intersects(&Rect::from_bounds(1.0, 1.0, 1.0, 1.0)) {
                1_000_000
            } else {
                0
            }
        };
        let cfg = ShardPlanConfig {
            shards: 1,
            split_threshold: 10,
            max_split_depth: 3,
        };
        let plan = ShardPlan::build(world(), &cfg, &occupancy);
        // Depth-3 quad splitting of a single base tile along the
        // hotspot path: bounded, not runaway.
        assert!(plan.len() <= 1 + 3 * 4 * cfg.max_split_depth);
    }

    #[test]
    fn degenerate_world_yields_single_effective_region() {
        let flat = Rect::from_bounds(5.0, 5.0, 5.0, 5.0);
        let cfg = ShardPlanConfig {
            shards: 4,
            split_threshold: 1,
            max_split_depth: 8,
        };
        // Occupancy huge everywhere, but a degenerate rect cannot split.
        let plan = ShardPlan::build(flat, &cfg, &|_| 1_000_000);
        assert!(!plan.is_empty());
        let targets = plan.shards_overlapping(&Rect::from_bounds(0.0, 0.0, 9.0, 9.0));
        assert!(!targets.is_empty());
    }
}
