//! The shard router: scatter-gather coordination with exact merges.
//!
//! See the crate docs for the coverage/exactness argument. The router
//! owns the [`ShardPlan`], an authority copy of both relations' id →
//! geometry maps (for mutation routing), one
//! [`AdaptiveAdvisor`](sj_core::advisor::AdaptiveAdvisor) per shard,
//! and a [`Transport`] over the shard services.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};

use sj_core::advisor::AdaptiveAdvisor;
use sj_geom::{codec, Bounded, Geometry, Rect, ThetaOp};
use sj_joins::{Mutation, MutationOutcome, Side, Strategy, WriteBatch};
use sj_obs::TraceSink;
use sj_service::{
    QueryKind, Rejection, Reply, Request, Response, ServiceConfig, ServiceMetrics, ServiceResult,
    SpatialService,
};
use sj_storage::IoStats;

use crate::plan::{ShardPlan, ShardPlanConfig};
use crate::transport::{LocalTransport, Transport};

/// Router configuration.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Target shard count (base grid size before skew splitting).
    pub shards: usize,
    /// The R-side assignment margin. Joins whose θ filter radius is
    /// ≤ `halo` scatter across shards exactly; larger radii (and
    /// directional operators, whose qualifying region is unbounded)
    /// route to the whole-world fallback shard. `0.0` means auto:
    /// 1/16 of the world's larger extent.
    pub halo: f64,
    /// Quad-split a tile whose assigned tuple count exceeds this.
    pub split_threshold: usize,
    /// Recursion bound for skew splitting.
    pub max_split_depth: usize,
    /// Configuration for every per-shard service instance.
    pub service: ServiceConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            halo: 0.0,
            split_threshold: 8 * 1024,
            max_split_depth: 4,
            service: ServiceConfig::default(),
        }
    }
}

/// A merged scatter-gather response.
#[derive(Debug, Clone)]
pub struct RouterResponse {
    /// The merged reply — byte-identical to the single-node reply for
    /// the same request (for `Auto` joins, the pair set is identical;
    /// `resolved` reflects the per-shard adaptive choices).
    pub reply: Reply,
    /// Shards this request was scattered to.
    pub shards_queried: usize,
    /// True when every shard reply was served from its result cache.
    pub cached: bool,
    /// Highest shard dataset version among the replies.
    pub version: u64,
    /// Max per-shard queue wait (µs) — the admission critical path.
    pub queue_us: u64,
    /// Max per-shard execution time (µs) — the compute critical path;
    /// the gather is bounded by the slowest shard, not the sum.
    pub exec_us: u64,
    /// Cross-shard duplicate results removed by the merge (the price of
    /// halo multi-assignment; always 0 for single-shard requests).
    pub duplicates: u64,
    /// True when any shard served via its degraded fallback path.
    pub degraded: bool,
}

/// What a routed request yields.
pub type RouterResult = Result<RouterResponse, Rejection>;

/// A merged commit receipt: per-shard WAL durability has happened for
/// every routed sub-batch by the time this is returned.
#[derive(Debug, Clone)]
pub struct RouterReceipt {
    /// Router-level commit sequence number (1-based).
    pub version: u64,
    /// Per-operation outcomes in batch order, computed against the
    /// router's global authority state — so `DuplicateId` / `MissingId`
    /// / `Upserted{replaced}` have whole-dataset semantics even when an
    /// operation only touched some shards.
    pub outcomes: Vec<MutationOutcome>,
    /// Physical apply I/O summed over all shard commits.
    pub io: IoStats,
    /// Cache entries purged, summed over shards.
    pub cache_purged: usize,
    /// Cache entries retained across the version bump, summed.
    pub cache_retained: usize,
    /// How many shards received a non-empty sub-batch.
    pub shard_commits: usize,
}

impl RouterReceipt {
    /// True when at least one operation changed state.
    pub fn changed(&self) -> bool {
        self.outcomes.iter().any(MutationOutcome::applied)
    }
}

/// The scatter-gather coordinator over tile shards.
pub struct ShardRouter {
    config: ShardConfig,
    halo: f64,
    plan: ShardPlan,
    transport: Box<dyn Transport>,
    /// Transport index of the whole-world fallback shard (present when
    /// the plan has more than one leaf; it serves predicates no spatial
    /// partition can localize).
    fallback: Option<usize>,
    advisors: Mutex<Vec<AdaptiveAdvisor>>,
    r_geoms: Mutex<HashMap<u64, Geometry>>,
    s_geoms: Mutex<HashMap<u64, Geometry>>,
    commits: AtomicU64,
    queries: AtomicU64,
    fallback_queries: AtomicU64,
    duplicates_removed: AtomicU64,
}

/// The union of every tuple MBR on both sides — the router's world.
/// With no tuples at all, a unit square keeps the plan non-degenerate.
fn world_of(r_tuples: &[(u64, Geometry)], s_tuples: &[(u64, Geometry)]) -> Rect {
    let mut world: Option<Rect> = None;
    for (_, g) in r_tuples.iter().chain(s_tuples.iter()) {
        let mbr = g.mbr();
        world = Some(match world {
            Some(w) => w.union(&mbr),
            None => mbr,
        });
    }
    world.unwrap_or_else(|| Rect::from_bounds(0.0, 0.0, 1.0, 1.0))
}

fn clamp_to(world: &Rect, r: &Rect) -> Rect {
    Rect::from_bounds(
        r.lo.x.clamp(world.lo.x, world.hi.x),
        r.lo.y.clamp(world.lo.y, world.hi.y),
        r.hi.x.clamp(world.lo.x, world.hi.x),
        r.hi.y.clamp(world.lo.y, world.hi.y),
    )
}

impl ShardRouter {
    /// Partitions the relations, starts one service per shard (plus the
    /// whole-world fallback when there is more than one shard), and
    /// returns the router. The world is computed as the union of both
    /// relations' MBRs — never a configured guess, so no tuple starts
    /// outside it (out-of-world *inserts* are clamped to border shards
    /// later).
    pub fn start(
        config: ShardConfig,
        r_tuples: &[(u64, Geometry)],
        s_tuples: &[(u64, Geometry)],
    ) -> Self {
        let world = world_of(r_tuples, s_tuples);
        let halo = if config.halo > 0.0 {
            config.halo
        } else {
            world.width().max(world.height()) / 16.0
        };
        let plan_cfg = ShardPlanConfig {
            shards: config.shards,
            split_threshold: config.split_threshold,
            max_split_depth: config.max_split_depth,
        };
        let occupancy = |leaf: &Rect| {
            let r_n = r_tuples
                .iter()
                .filter(|(_, g)| clamp_to(&world, &g.mbr().expand(halo)).intersects(leaf))
                .count();
            let s_n = s_tuples
                .iter()
                .filter(|(_, g)| clamp_to(&world, &g.mbr()).intersects(leaf))
                .count();
            r_n + s_n
        };
        let plan = ShardPlan::build(world, &plan_cfg, &occupancy);

        let mut services = Vec::with_capacity(plan.len() + 1);
        for leaf in plan.leaves() {
            let r_slice: Vec<(u64, Geometry)> = r_tuples
                .iter()
                .filter(|(_, g)| clamp_to(&world, &g.mbr().expand(halo)).intersects(leaf))
                .cloned()
                .collect();
            let s_slice: Vec<(u64, Geometry)> = s_tuples
                .iter()
                .filter(|(_, g)| clamp_to(&world, &g.mbr()).intersects(leaf))
                .cloned()
                .collect();
            // The shard's own world covers its leaf plus everything it
            // holds (halo tuples poke past the leaf).
            let shard_world = r_slice
                .iter()
                .chain(s_slice.iter())
                .fold(*leaf, |w, (_, g)| w.union(&g.mbr()));
            services.push(SpatialService::start(
                config.service,
                &r_slice,
                &s_slice,
                shard_world,
            ));
        }
        let fallback = if plan.len() > 1 {
            services.push(SpatialService::start(
                config.service,
                r_tuples,
                s_tuples,
                world,
            ));
            Some(plan.len())
        } else {
            None
        };
        let transport = Box::new(LocalTransport::new(services));
        Self::with_transport(config, halo, plan, transport, fallback, r_tuples, s_tuples)
    }

    /// Assembles a router over an externally-built transport (the hook
    /// a socket transport slots into). `plan.len()` leaves must map to
    /// transport indices `0..plan.len()`, with `fallback` (if any)
    /// naming a whole-data endpoint at a further index.
    pub fn with_transport(
        config: ShardConfig,
        halo: f64,
        plan: ShardPlan,
        transport: Box<dyn Transport>,
        fallback: Option<usize>,
        r_tuples: &[(u64, Geometry)],
        s_tuples: &[(u64, Geometry)],
    ) -> Self {
        assert!(
            transport.shards() >= plan.len(),
            "transport must expose every plan leaf"
        );
        let advisors = (0..transport.shards())
            .map(|_| AdaptiveAdvisor::new(config.service.profile))
            .collect();
        ShardRouter {
            config,
            halo,
            plan,
            transport,
            fallback,
            advisors: Mutex::new(advisors),
            r_geoms: Mutex::new(r_tuples.iter().map(|(id, g)| (*id, g.clone())).collect()),
            s_geoms: Mutex::new(s_tuples.iter().map(|(id, g)| (*id, g.clone())).collect()),
            commits: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            fallback_queries: AtomicU64::new(0),
            duplicates_removed: AtomicU64::new(0),
        }
    }

    /// The shard decomposition.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of tile shards (excluding the fallback).
    pub fn shard_count(&self) -> usize {
        self.plan.len()
    }

    /// The resolved R-side assignment margin.
    pub fn halo(&self) -> f64 {
        self.halo
    }

    /// Whether a whole-world fallback shard exists.
    pub fn has_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// Router-level commit count (the version space of
    /// [`RouterReceipt::version`]).
    pub fn version(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Adaptive-advisor observation count for one shard and θ-family
    /// (test/inspection hook).
    pub fn advisor_observations(&self, shard: usize, theta: ThetaOp) -> u64 {
        self.advisors.lock().expect("advisor lock")[shard].observations(theta)
    }

    /// Which transport endpoints a request scatters to.
    fn targets(&self, req: &Request) -> Result<Vec<usize>, Rejection> {
        match &req.kind {
            QueryKind::Select { probe, .. } => Ok(match req.theta.filter_radius() {
                // A matching tuple's MBR intersects the probe MBR
                // expanded by the filter radius (Θ-filter guarantee),
                // so only shards overlapping that region can hold
                // matches.
                Some(eps) => self.plan.shards_overlapping(&probe.mbr().expand(eps)),
                // Unbounded predicate: matches can live anywhere, and
                // every tuple lives in ≥ 1 shard — broadcast is exact.
                None => (0..self.plan.len()).collect(),
            }),
            QueryKind::Join { strategy } => {
                // Mirror service admission so unsupported operators are
                // rejected before any scatter.
                if *strategy != Strategy::Auto && !strategy.supports(req.theta) {
                    return Err(Rejection::UnsupportedTheta);
                }
                match req.theta.filter_radius() {
                    Some(eps) if eps <= self.halo => Ok((0..self.plan.len()).collect()),
                    // Radius beyond the halo (or unbounded): the tile
                    // coverage proof no longer applies; route to the
                    // whole-world shard — the same reason grid_join
                    // rejects directional θ.
                    _ => {
                        self.fallback_queries.fetch_add(1, Ordering::Relaxed);
                        Ok(vec![self.fallback.unwrap_or(0)])
                    }
                }
            }
        }
    }

    /// Scatter a request to its target shards, gather, and merge.
    /// Blocking; the gather is bounded by the slowest targeted shard.
    pub fn call(&self, req: Request) -> RouterResult {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let targets = self.targets(&req)?;
        let auto_join = matches!(
            req.kind,
            QueryKind::Join {
                strategy: Strategy::Auto
            }
        );

        // Rewrite Auto joins to each shard's adaptive choice, so the
        // feedback loop can attribute the observed cost to a concrete
        // strategy.
        let subs: Vec<(usize, Request)> = {
            let advisors = self.advisors.lock().expect("advisor lock");
            targets
                .iter()
                .map(|&t| {
                    let mut sub = req.clone();
                    if auto_join {
                        sub.kind = QueryKind::Join {
                            strategy: advisors[t].choose(req.theta),
                        };
                    }
                    (t, sub)
                })
                .collect()
        };

        // Scatter first, gather second: every shard computes in
        // parallel with the others.
        let mut pending: Vec<(usize, Receiver<ServiceResult>)> = Vec::with_capacity(subs.len());
        let mut first_err = None;
        for (t, sub) in &subs {
            match self.transport.submit(*t, sub.clone()) {
                Ok(rx) => pending.push((*t, rx)),
                Err(rej) => {
                    first_err.get_or_insert(rej);
                    break;
                }
            }
        }
        let mut responses: Vec<(usize, Response)> = Vec::with_capacity(pending.len());
        for (t, rx) in pending {
            match rx.recv() {
                Ok(Ok(resp)) => responses.push((t, resp)),
                Ok(Err(rej)) => {
                    first_err.get_or_insert(rej);
                }
                Err(_) => {
                    first_err.get_or_insert(Rejection::WorkerPanicked);
                }
            }
        }
        if let Some(rej) = first_err {
            return Err(rej);
        }

        // Feed observed execution cost back into the per-shard advisors
        // (cache hits carry no compute signal and are skipped).
        if auto_join {
            let mut advisors = self.advisors.lock().expect("advisor lock");
            for ((t, sub), (_, resp)) in subs.iter().zip(responses.iter()) {
                if !resp.cached {
                    if let QueryKind::Join { strategy } = sub.kind {
                        advisors[*t].observe(req.theta, strategy, resp.exec_us.max(1));
                    }
                }
            }
        }

        Ok(self.merge(&req, &responses))
    }

    /// Concat + sort + dedup merge. Exactness: every shard result is a
    /// true match (shards run exact executors), coverage guarantees
    /// every true match appears in ≥ 1 shard, and duplicates only arise
    /// from halo multi-assignment — so dedup restores the single-node
    /// result precisely.
    fn merge(&self, req: &Request, responses: &[(usize, Response)]) -> RouterResponse {
        let mut cached = !responses.is_empty();
        let mut degraded = false;
        let mut version = 0;
        let mut queue_us = 0;
        let mut exec_us = 0;
        for (_, resp) in responses {
            cached &= resp.cached;
            degraded |= resp.degraded;
            version = version.max(resp.version);
            queue_us = queue_us.max(resp.queue_us);
            exec_us = exec_us.max(resp.exec_us);
        }

        let duplicates: u64;
        let reply = match &req.kind {
            QueryKind::Select { .. } => {
                let mut matches: Vec<u64> = Vec::new();
                for (_, resp) in responses {
                    if let Reply::Select { matches: m } = &resp.reply {
                        matches.extend(m.iter().copied());
                    }
                }
                matches.sort_unstable();
                let before = matches.len();
                matches.dedup();
                duplicates = (before - matches.len()) as u64;
                Reply::Select {
                    matches: Arc::new(matches),
                }
            }
            QueryKind::Join { strategy } => {
                let mut pairs: Vec<(u64, u64)> = Vec::new();
                let mut resolutions: Vec<Strategy> = Vec::new();
                for (_, resp) in responses {
                    if let Reply::Join { pairs: p, resolved } = &resp.reply {
                        pairs.extend(p.iter().copied());
                        resolutions.push(*resolved);
                    }
                }
                pairs.sort_unstable();
                let before = pairs.len();
                pairs.dedup();
                duplicates = (before - pairs.len()) as u64;
                // Concrete strategies resolve to themselves on every
                // shard; Auto reports the shards' unanimous choice, or
                // stays Auto when the adaptive picks diverged.
                let resolved = if *strategy != Strategy::Auto {
                    *strategy
                } else if !resolutions.is_empty()
                    && resolutions.iter().all(|s| *s == resolutions[0])
                {
                    resolutions[0]
                } else {
                    Strategy::Auto
                };
                Reply::Join {
                    pairs: Arc::new(pairs),
                    resolved,
                }
            }
        };
        self.duplicates_removed
            .fetch_add(duplicates, Ordering::Relaxed);
        RouterResponse {
            reply,
            shards_queried: responses.len(),
            cached,
            version,
            queue_us,
            exec_us,
            duplicates,
            degraded,
        }
    }

    /// Which shards own a tuple with this MBR: R-side assignment is
    /// halo-expanded (so cross-tile joins stay local), S-side is exact.
    fn owners(&self, side: Side, mbr: &Rect) -> Vec<usize> {
        match side {
            Side::R => self.plan.shards_overlapping(&mbr.expand(self.halo)),
            Side::S => self.plan.shards_overlapping(mbr),
        }
    }

    /// Mirror of the service's record-size admission bound, so the
    /// router can compute `TooLarge` outcomes without a round-trip.
    fn too_large(&self, g: &Geometry) -> bool {
        codec::encoded_len(g) > self.config.service.record_size
            || (self.config.service.compress_geometry
                && codec::encoded_qlen(g) > self.config.service.quant_record_size)
    }

    /// Routes a write batch to the shards owning each touched region
    /// and commits the per-shard sub-batches (each durably, through
    /// that shard's own WAL). The fallback shard receives the batch
    /// verbatim. Global read-your-writes holds once this returns: every
    /// shard a future query can target has published the new snapshot.
    ///
    /// Outcomes are computed against the router's authority maps, so
    /// they carry whole-dataset semantics; an upsert that moves a tuple
    /// across shards turns into upserts at the new owners plus deletes
    /// at the vacated ones.
    pub fn commit(&self, batch: &WriteBatch) -> Result<RouterReceipt, Rejection> {
        let mut r_geoms = self.r_geoms.lock().expect("authority lock");
        let mut s_geoms = self.s_geoms.lock().expect("authority lock");
        let endpoints = self.transport.shards();
        let mut subs: Vec<WriteBatch> = (0..endpoints).map(|_| WriteBatch::new()).collect();
        let mut outcomes = Vec::with_capacity(batch.len());

        for (side, op) in &batch.ops {
            let geoms = match side {
                Side::R => &mut *r_geoms,
                Side::S => &mut *s_geoms,
            };
            match op {
                Mutation::Insert { id, value } => {
                    if geoms.contains_key(id) {
                        outcomes.push(MutationOutcome::DuplicateId);
                        continue;
                    }
                    if self.too_large(value) {
                        outcomes.push(MutationOutcome::TooLarge);
                        continue;
                    }
                    for t in self.owners(*side, &value.mbr()) {
                        subs[t].ops.push((*side, op.clone()));
                    }
                    geoms.insert(*id, value.clone());
                    outcomes.push(MutationOutcome::Inserted);
                }
                Mutation::Delete { id } => {
                    let Some(old) = geoms.get(id).map(Bounded::mbr) else {
                        outcomes.push(MutationOutcome::MissingId);
                        continue;
                    };
                    for t in self.owners(*side, &old) {
                        subs[t].ops.push((*side, op.clone()));
                    }
                    geoms.remove(id);
                    outcomes.push(MutationOutcome::Deleted);
                }
                Mutation::Upsert { id, value } => {
                    if self.too_large(value) {
                        outcomes.push(MutationOutcome::TooLarge);
                        continue;
                    }
                    let old = geoms.get(id).map(Bounded::mbr);
                    let new_owners = self.owners(*side, &value.mbr());
                    for &t in &new_owners {
                        subs[t].ops.push((*side, op.clone()));
                    }
                    if let Some(old) = old {
                        // Vacated shards must drop their stale copy or
                        // they would keep reporting matches for the
                        // tuple's old position.
                        for t in self.owners(*side, &old) {
                            if !new_owners.contains(&t) {
                                subs[t].ops.push((*side, Mutation::Delete { id: *id }));
                            }
                        }
                    }
                    let replaced = geoms.insert(*id, value.clone()).is_some();
                    outcomes.push(MutationOutcome::Upserted { replaced });
                }
            }
        }
        drop(r_geoms);
        drop(s_geoms);

        // The fallback holds the full dataset: it applies the original
        // batch unmodified and independently derives the same outcomes
        // — a continuous consistency check on the routing logic.
        if let Some(fb) = self.fallback {
            subs[fb] = batch.clone();
        }

        let mut io = IoStats::default();
        let mut cache_purged = 0;
        let mut cache_retained = 0;
        let mut shard_commits = 0;
        for (t, sub) in subs.iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let receipt = self.transport.commit(t, sub)?;
            io.merge(&receipt.io);
            cache_purged += receipt.cache_purged;
            cache_retained += receipt.cache_retained;
            shard_commits += 1;
            if Some(t) == self.fallback {
                debug_assert_eq!(
                    receipt.outcomes, outcomes,
                    "fallback outcomes diverged from router-computed outcomes"
                );
            }
        }
        let version = self.commits.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(RouterReceipt {
            version,
            outcomes,
            io,
            cache_purged,
            cache_retained,
            shard_commits,
        })
    }

    /// Fault-free sequential oracle over the full dataset (the fallback
    /// shard, or shard 0 when the plan has a single leaf — either holds
    /// everything). Used by benches and tests to assert zero divergence
    /// between scatter-gather and single-node execution.
    pub fn execute_reference(&self, req: &Request) -> Reply {
        self.transport
            .execute_reference(self.fallback.unwrap_or(0), req)
    }

    /// Per-shard metrics merged into one snapshot (histograms merge
    /// bucket-wise; counters sum).
    pub fn metrics(&self) -> ServiceMetrics {
        let mut total = ServiceMetrics::new();
        for t in 0..self.transport.shards() {
            total.merge(&self.transport.metrics(t));
        }
        total
    }

    /// Emits every shard's metric spans namespaced as `shard:<i>/…`
    /// (`shard:fallback/…` for the fallback) plus a `router/summary`
    /// span with the router's own counters — one merged trace stream
    /// that still attributes every phase to the shard that ran it.
    pub fn emit_metrics(&self, sink: &mut TraceSink) {
        if !sink.is_enabled() {
            return;
        }
        for t in 0..self.plan.len() {
            let mut shard_sink = TraceSink::vec();
            self.transport.emit_metrics(t, &mut shard_sink);
            sink.absorb(&format!("shard:{t}"), shard_sink.events());
        }
        if let Some(fb) = self.fallback {
            let mut shard_sink = TraceSink::vec();
            self.transport.emit_metrics(fb, &mut shard_sink);
            sink.absorb("shard:fallback", shard_sink.events());
        }
        sink.emit(
            "router/summary",
            0,
            &[
                ("shards", self.plan.len() as u64),
                ("splits", self.plan.splits() as u64),
                ("queries", self.queries.load(Ordering::Relaxed)),
                (
                    "fallback_queries",
                    self.fallback_queries.load(Ordering::Relaxed),
                ),
                (
                    "duplicates_removed",
                    self.duplicates_removed.load(Ordering::Relaxed),
                ),
                ("commits", self.commits.load(Ordering::Relaxed)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geom::{Direction, Point, Polygon};

    const ALL_THETAS: [ThetaOp; 8] = [
        ThetaOp::WithinCenterDistance(9.0),
        ThetaOp::WithinDistance(6.5),
        ThetaOp::Overlaps,
        ThetaOp::Includes,
        ThetaOp::ContainedIn,
        ThetaOp::DirectionOf(Direction::NorthWest),
        ThetaOp::ReachableWithin {
            minutes: 3.0,
            speed: 2.0,
        },
        ThetaOp::Adjacent,
    ];

    fn grid_tuples(n: usize, step: f64, id0: u64) -> Vec<(u64, Geometry)> {
        (0..n * n)
            .map(|i| {
                (
                    id0 + i as u64,
                    Geometry::Point(Point::new((i % n) as f64 * step, (i / n) as f64 * step)),
                )
            })
            .collect()
    }

    fn config(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            halo: 8.0,
            service: ServiceConfig {
                workers: 2,
                queue_depth: 128,
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
            ..ShardConfig::default()
        }
    }

    fn router(shards: usize) -> ShardRouter {
        ShardRouter::start(
            config(shards),
            &grid_tuples(8, 8.0, 0),
            &grid_tuples(8, 8.0, 500),
        )
    }

    fn pairs_of(reply: &Reply) -> Vec<(u64, u64)> {
        match reply {
            Reply::Join { pairs, .. } => pairs.as_ref().clone(),
            _ => panic!("expected a join reply"),
        }
    }

    /// Scatter-gather equals the single-node oracle for every θ-op and
    /// shard count, for both SELECT and JOIN, including the operators
    /// that must route to the fallback (DirectionOf; distance beyond
    /// the halo).
    #[test]
    fn scatter_gather_matches_reference_for_all_thetas() {
        for shards in [1, 2, 4] {
            let router = router(shards);
            for theta in ALL_THETAS {
                let join = Request::join(Strategy::Tree, theta);
                let got = router.call(join.clone()).expect("join accepted");
                assert_eq!(
                    got.reply,
                    router.execute_reference(&join),
                    "join {theta:?} diverged at {shards} shards"
                );
                for probe in [
                    Geometry::Point(Point::new(28.0, 28.0)),
                    Geometry::Rect(Rect::from_bounds(20.0, 20.0, 36.0, 44.0)),
                ] {
                    let select = Request::select(Side::S, probe, theta);
                    let got = router.call(select.clone()).expect("select accepted");
                    assert_eq!(
                        got.reply,
                        router.execute_reference(&select),
                        "select {theta:?} diverged at {shards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn bounded_joins_scatter_and_unbounded_route_to_fallback() {
        let router = router(4);
        assert!(router.has_fallback());
        let scattered = router
            .call(Request::join(Strategy::Tree, ThetaOp::Overlaps))
            .unwrap();
        assert_eq!(scattered.shards_queried, router.shard_count());
        let unbounded = router
            .call(Request::join(
                Strategy::Tree,
                ThetaOp::DirectionOf(Direction::NorthWest),
            ))
            .unwrap();
        assert_eq!(unbounded.shards_queried, 1, "unbounded θ uses the fallback");
        // Distance beyond the halo cannot rely on tile coverage either.
        let wide = router
            .call(Request::join(Strategy::Tree, ThetaOp::WithinDistance(50.0)))
            .unwrap();
        assert_eq!(wide.shards_queried, 1);
    }

    #[test]
    fn bounded_selects_target_only_overlapping_shards() {
        let router = router(4);
        let near_corner = Request::select(
            Side::R,
            Geometry::Point(Point::new(1.0, 1.0)),
            ThetaOp::Overlaps,
        );
        let got = router.call(near_corner).unwrap();
        assert!(
            got.shards_queried < router.shard_count(),
            "a corner probe with radius 0 must not broadcast"
        );
        let unbounded = Request::select(
            Side::R,
            Geometry::Point(Point::new(1.0, 1.0)),
            ThetaOp::DirectionOf(Direction::NorthWest),
        );
        let got = router.call(unbounded).unwrap();
        assert_eq!(got.shards_queried, router.shard_count());
    }

    /// Commits route to owning shards, reads observe them immediately
    /// (global read-your-writes), and an out-of-world insert is clamped
    /// into border shards rather than lost.
    #[test]
    fn commit_routes_writes_and_reads_observe_them() {
        let router = router(2);
        let batch = WriteBatch::new()
            .insert(Side::S, 9_000, Geometry::Point(Point::new(33.0, 17.0)))
            .insert(Side::S, 9_001, Geometry::Point(Point::new(200.0, 200.0)));
        let receipt = router.commit(&batch).expect("commit accepted");
        assert_eq!(
            receipt.outcomes,
            vec![MutationOutcome::Inserted, MutationOutcome::Inserted]
        );
        assert!(receipt.shard_commits >= 2, "data shard + fallback");
        assert_eq!(receipt.version, 1);

        let in_world = Request::select(
            Side::S,
            Geometry::Point(Point::new(33.0, 17.0)),
            ThetaOp::Overlaps,
        );
        let got = router.call(in_world.clone()).unwrap();
        assert_eq!(got.reply, router.execute_reference(&in_world));
        match got.reply {
            Reply::Select { matches } => assert!(matches.contains(&9_000)),
            _ => panic!("expected select reply"),
        }

        // The stray tuple is queryable via a probe near the border it
        // clamped to (WithinDistance reaches out-of-world positions).
        let near_border = Request::select(
            Side::S,
            Geometry::Point(Point::new(56.0, 56.0)),
            ThetaOp::WithinCenterDistance(300.0),
        );
        let got = router.call(near_border.clone()).unwrap();
        assert_eq!(got.reply, router.execute_reference(&near_border));
        match got.reply {
            Reply::Select { matches } => assert!(matches.contains(&9_001)),
            _ => panic!("expected select reply"),
        }
    }

    /// An upsert that moves a tuple across shards deletes the stale
    /// copy at the vacated owner — otherwise the scattered join would
    /// keep reporting the old position.
    #[test]
    fn upsert_move_across_shards_deletes_stale_copy() {
        let router = router(2);
        let moved = WriteBatch::new().upsert(
            Side::S,
            500, // originally at (0, 0)
            Geometry::Point(Point::new(56.0, 0.0)),
        );
        let receipt = router.commit(&moved).expect("commit accepted");
        assert_eq!(
            receipt.outcomes,
            vec![MutationOutcome::Upserted { replaced: true }]
        );
        for theta in [ThetaOp::Overlaps, ThetaOp::WithinDistance(4.0)] {
            let join = Request::join(Strategy::Tree, theta);
            let got = router.call(join.clone()).unwrap();
            let want = router.execute_reference(&join);
            assert_eq!(got.reply, want, "{theta:?} after cross-shard move");
            let pairs = pairs_of(&got.reply);
            assert!(
                !pairs.contains(&(0, 500)),
                "stale copy at the old position must be gone"
            );
            assert!(
                pairs.contains(&(7, 500)),
                "tuple must match at its new position (r id 7 is at (56, 0))"
            );
        }
    }

    /// Router-computed outcomes carry whole-dataset semantics.
    #[test]
    fn mutation_outcomes_are_global() {
        let router = router(2);
        let huge = Geometry::Polygon(
            Polygon::new(
                (0..64)
                    .map(|i| {
                        let a = i as f64 * std::f64::consts::TAU / 64.0;
                        Point::new(30.0 + 10.0 * a.cos(), 30.0 + 10.0 * a.sin())
                    })
                    .collect(),
            )
            .expect("valid polygon"),
        );
        let batch = WriteBatch::new()
            .insert(Side::R, 0, Geometry::Point(Point::new(1.0, 1.0)))
            .insert(Side::R, 9_100, huge)
            .delete(Side::R, 77_777)
            .delete(Side::R, 63)
            .upsert(Side::R, 9_200, Geometry::Point(Point::new(2.0, 2.0)));
        let receipt = router.commit(&batch).expect("commit accepted");
        assert_eq!(
            receipt.outcomes,
            vec![
                MutationOutcome::DuplicateId,
                MutationOutcome::TooLarge,
                MutationOutcome::MissingId,
                MutationOutcome::Deleted,
                MutationOutcome::Upserted { replaced: false },
            ]
        );
    }

    /// `Auto` joins feed per-shard observations back into the advisors
    /// while every reply stays correct (pair-set comparison: the oracle
    /// resolves `Auto` with the static model, shards adaptively).
    #[test]
    fn adaptive_auto_accumulates_observations_and_stays_exact() {
        let router = router(2);
        let theta = ThetaOp::WithinDistance(5.0);
        let req = Request::join(Strategy::Auto, theta);
        let want = pairs_of(&router.execute_reference(&req));
        for _ in 0..6 {
            let got = router.call(req.clone()).expect("join accepted");
            assert_eq!(pairs_of(&got.reply), want);
        }
        for shard in 0..router.shard_count() {
            assert!(
                router.advisor_observations(shard, theta) >= 4,
                "shard {shard} advisor must be learning"
            );
        }
    }

    #[test]
    fn metrics_merge_and_traces_are_namespaced_per_shard() {
        let router = router(2);
        let req = Request::join(Strategy::Tree, ThetaOp::Overlaps);
        router.call(req.clone()).unwrap();
        router.call(req).unwrap();
        let merged = router.metrics();
        assert!(
            merged.completed >= 2 * router.shard_count() as u64,
            "merged completions must count every shard sub-request"
        );

        let mut sink = TraceSink::vec();
        router.emit_metrics(&mut sink);
        let spans: Vec<&str> = sink.events().iter().map(|e| e.span.as_str()).collect();
        assert!(spans.iter().any(|s| s.starts_with("shard:0/")));
        assert!(spans.iter().any(|s| s.starts_with("shard:1/")));
        assert!(spans.iter().any(|s| s.starts_with("shard:fallback/")));
        assert!(spans.contains(&"router/summary"));
        // A Null sink stays silent.
        let mut null = TraceSink::Null;
        router.emit_metrics(&mut null);
    }

    #[test]
    fn unsupported_strategy_theta_combination_is_rejected_before_scatter() {
        let router = router(2);
        let req = Request::join(Strategy::Grid, ThetaOp::DirectionOf(Direction::NorthWest));
        assert!(matches!(router.call(req), Err(Rejection::UnsupportedTheta)));
    }

    #[test]
    fn single_shard_plan_has_no_fallback_but_serves_everything() {
        let router = router(1);
        assert!(!router.has_fallback());
        let req = Request::join(Strategy::Tree, ThetaOp::DirectionOf(Direction::South));
        let got = router.call(req.clone()).unwrap();
        assert_eq!(got.reply, router.execute_reference(&req));
    }
}
