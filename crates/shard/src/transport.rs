//! The shard transport: how the router talks to shard endpoints.
//!
//! [`Transport`] abstracts the call surface a shard exposes — submit a
//! query, commit a write batch, export metrics — behind shard indices,
//! so the router never holds a `SpatialService` directly. The only
//! implementation today is [`LocalTransport`] (every shard is an
//! in-process service); a socket transport can slot in later by
//! implementing the same trait over a wire protocol, with the
//! `Receiver` end fed by a reader thread. The router's merge logic is
//! transport-agnostic by construction.

use std::sync::mpsc::Receiver;

use sj_joins::WriteBatch;
use sj_obs::TraceSink;
use sj_service::{
    CommitReceipt, Rejection, Reply, Request, ServiceMetrics, ServiceResult, SpatialService,
};

/// A set of shard endpoints the router can scatter over.
///
/// Submissions are asynchronous: `submit` returns a receiver so the
/// router can fan a request out to every target shard *before* blocking
/// on any reply — the scatter half of scatter-gather. Commits are
/// synchronous: durability (the shard's WAL sync) has happened by the
/// time `commit` returns, which is what makes the router's global
/// read-your-writes guarantee compose from per-shard guarantees.
pub trait Transport: Send + Sync {
    /// Number of shard endpoints (including any fallback shard).
    fn shards(&self) -> usize;

    /// Enqueue a request on one shard; the receiver yields its result.
    fn submit(&self, shard: usize, req: Request) -> Result<Receiver<ServiceResult>, Rejection>;

    /// Durably commit a write batch on one shard.
    fn commit(&self, shard: usize, batch: &WriteBatch) -> Result<CommitReceipt, Rejection>;

    /// Fault-free sequential oracle for one shard (testing/validation).
    fn execute_reference(&self, shard: usize, req: &Request) -> Reply;

    /// Merged metrics snapshot of one shard.
    fn metrics(&self, shard: usize) -> ServiceMetrics;

    /// Emit one shard's metrics as trace events into `sink` (unprefixed;
    /// the router namespaces them on absorption).
    fn emit_metrics(&self, shard: usize, sink: &mut TraceSink);

    /// The shard's current dataset version.
    fn version(&self, shard: usize) -> u64;
}

/// All shards are in-process [`SpatialService`] instances.
pub struct LocalTransport {
    services: Vec<SpatialService>,
}

impl LocalTransport {
    /// Wraps a set of already-started shard services; index order is
    /// shard-id order.
    pub fn new(services: Vec<SpatialService>) -> Self {
        LocalTransport { services }
    }

    /// Direct access to a shard's service (tests and local tooling).
    pub fn service(&self, shard: usize) -> &SpatialService {
        &self.services[shard]
    }
}

impl Transport for LocalTransport {
    fn shards(&self) -> usize {
        self.services.len()
    }

    fn submit(&self, shard: usize, req: Request) -> Result<Receiver<ServiceResult>, Rejection> {
        self.services[shard].submit(req)
    }

    fn commit(&self, shard: usize, batch: &WriteBatch) -> Result<CommitReceipt, Rejection> {
        self.services[shard].commit(batch)
    }

    fn execute_reference(&self, shard: usize, req: &Request) -> Reply {
        self.services[shard].execute_reference(req)
    }

    fn metrics(&self, shard: usize) -> ServiceMetrics {
        self.services[shard].metrics()
    }

    fn emit_metrics(&self, shard: usize, sink: &mut TraceSink) {
        self.services[shard].emit_metrics(sink);
    }

    fn version(&self, shard: usize) -> u64 {
        self.services[shard].version()
    }
}
