//! Analytic-vs-measured validation.
//!
//! The paper's §4.5 comparison is purely analytic. This harness closes the
//! loop: it materializes the model's assumptions (balanced k-ary
//! generalization trees, S1/S2; clustered or random record placement;
//! an LRU memory of M pages) in the storage simulator, runs the *real*
//! SELECT/JOIN executors, and compares measured page reads and comparison
//! counts against the §4.3/§4.4 formulas evaluated with *empirical*
//! match probabilities (the per-level Θ-match fractions actually observed,
//! substituted for π). Agreement therefore validates the model's
//! *structure* — the per-level accounting and the Yao I/O estimates —
//! independently of any distributional assumption.

use std::collections::HashSet;
use std::fmt;

use sj_costmodel::yao::yao;
use sj_gentree::balanced::build_balanced;
use sj_gentree::{join as gt_join, select as gt_select};
use sj_geom::{Geometry, Rect, ThetaOp};
use sj_joins::tree_join::{tree_select, TraversalOrder};
use sj_joins::{JoinOperands, JoinRequest, StoredRelation, Strategy, TreeRelation};
use sj_storage::{BufferPool, Disk, DiskConfig, Layout};

/// One predicted/measured pair.
#[derive(Debug, Clone)]
pub struct ValRow {
    pub quantity: String,
    pub predicted: f64,
    pub measured: f64,
}

impl ValRow {
    /// measured / predicted.
    pub fn ratio(&self) -> f64 {
        if self.predicted == 0.0 {
            if self.measured == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured / self.predicted
        }
    }
}

/// A validation run's report.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    pub title: String,
    pub rows: Vec<ValRow>,
}

impl ValidationReport {
    fn push(&mut self, quantity: impl Into<String>, predicted: f64, measured: f64) {
        self.rows.push(ValRow {
            quantity: quantity.into(),
            predicted,
            measured,
        });
    }

    /// True if every row's measured/predicted ratio lies within
    /// `[1/tolerance, tolerance]`.
    pub fn within(&self, tolerance: f64) -> bool {
        self.rows
            .iter()
            .all(|r| r.ratio() >= 1.0 / tolerance && r.ratio() <= tolerance)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(
            f,
            "{:<38} {:>14} {:>14} {:>8}",
            "quantity", "predicted", "measured", "ratio"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<38} {:>14.2} {:>14.2} {:>8.3}",
                r.quantity,
                r.predicted,
                r.measured,
                r.ratio()
            )?;
        }
        Ok(())
    }
}

const RECORD_SIZE: usize = 300; // the paper's v

fn fresh_pool(mem_pages: usize) -> BufferPool {
    BufferPool::new(Disk::new(DiskConfig::paper()), mem_pages)
}

/// Validates the SELECT cost structure (§4.3) on a balanced k-ary tree of
/// height `n`: strategy I, IIa, and IIb page reads and comparison counts,
/// predicted from the observed per-level Θ-match counts.
pub fn validate_select(k: usize, n: usize, radius: f64, seed: u64) -> ValidationReport {
    let world = Rect::from_bounds(0.0, 0.0, 1024.0, 1024.0);
    let tree = build_balanced(k, n, world);
    let total_nodes = tree.node_count() as f64;
    let m = DiskConfig::paper().records_per_page(RECORD_SIZE) as f64;
    let pages = (total_nodes / m).ceil();

    // Selector: a point near the middle of the world, θ = within `radius`
    // of closest points.
    let o = Geometry::Point(sj_geom::Point::new(512.0 + seed as f64 % 97.0, 512.0));
    let theta = ThetaOp::WithinDistance(radius);

    // Dry traversal to observe per-level Θ-match counts (the empirical π̂·kⁱ).
    let outcome = gt_select::select(&tree, &o, theta, |_| {});
    let visited = &outcome.stats.visited_per_level;

    let mut report = ValidationReport {
        title: format!("SELECT validation: k={k}, n={n}, radius={radius}"),
        ..Default::default()
    };

    // --- comparisons -----------------------------------------------------
    // Model: C_II^Θ/C_Θ = 1 + Σ (Θ-matches at level i)·k  — which equals
    // the total visited count; measured = filter evals.
    let predicted_comparisons: f64 = visited.iter().map(|&v| v as f64).sum();
    report.push(
        "II: Θ-filter evaluations",
        predicted_comparisons,
        outcome.stats.filter_evals as f64,
    );

    // --- strategy I ------------------------------------------------------
    let mut pool = fresh_pool(10_000);
    let items: Vec<(u64, Geometry)> = tree
        .entry_nodes()
        .iter()
        .map(|&nid| {
            let e = tree.entry(nid).expect("entry");
            (e.id, e.geometry.clone())
        })
        .collect();
    let flat = StoredRelation::build(&mut pool, &items, RECORD_SIZE, Layout::Clustered);
    pool.clear();
    pool.reset_stats();
    let exh = sj_joins::nested_loop::exhaustive_select(&mut pool, &flat, &o, theta);
    report.push(
        "I: page reads (⌈N/m⌉)",
        pages,
        exh.stats.physical_reads as f64,
    );
    report.push(
        "I: θ evaluations (N)",
        total_nodes,
        exh.stats.theta_evals as f64,
    );

    // --- strategy IIa (unclustered) ---------------------------------------
    // Model: Σ_i Y(visited_{i+1}, ⌈N/m⌉, N) + 1 root page.
    let predicted_iia: f64 = 1.0
        + visited
            .iter()
            .skip(1)
            .map(|&v| yao(v as f64, pages, total_nodes))
            .sum::<f64>();
    let mut pool = fresh_pool(10_000);
    let tr = TreeRelation::new(
        &mut pool,
        tree.clone(),
        RECORD_SIZE,
        Layout::Unclustered { seed },
    );
    pool.clear();
    pool.reset_stats();
    let run_a = tree_select(&mut pool, &tr, &o, theta, TraversalOrder::BreadthFirst);
    report.push(
        "IIa: page reads (Σ Yao per level)",
        predicted_iia,
        run_a.stats.physical_reads as f64,
    );

    // --- strategy IIb (clustered) ------------------------------------------
    // Model: Σ_i Y(matches_i, ⌈k^{i+1}/m⌉, k^i) + 1 root page; matches_i =
    // visited_{i+1} / k.
    let kf = k as f64;
    let predicted_iib: f64 = 1.0
        + (0..n)
            .map(|i| {
                let matches_i = visited.get(i + 1).copied().unwrap_or(0) as f64 / kf;
                yao(
                    matches_i,
                    (kf.powi(i as i32 + 1) / m).ceil(),
                    kf.powi(i as i32),
                )
            })
            .sum::<f64>();
    let mut pool = fresh_pool(10_000);
    let tr = TreeRelation::new(&mut pool, tree.clone(), RECORD_SIZE, Layout::Clustered);
    pool.clear();
    pool.reset_stats();
    let run_b = tree_select(&mut pool, &tr, &o, theta, TraversalOrder::BreadthFirst);
    report.push(
        "IIb: page reads (clustered Yao)",
        predicted_iib,
        run_b.stats.physical_reads as f64,
    );

    // Sanity: both tree runs find the same matches as the exhaustive scan.
    let mut a = run_a.matches.clone();
    let mut b = run_b.matches.clone();
    let mut e = exh.matches.clone();
    a.sort_unstable();
    b.sort_unstable();
    e.sort_unstable();
    assert_eq!(a, e, "IIa result must equal exhaustive result");
    assert_eq!(b, e, "IIb result must equal exhaustive result");
    report
}

/// Validates the JOIN cost structure (§4.4) on two balanced k-ary trees:
/// measured strategy-I and strategy-II costs against their formula
/// predictions with empirical per-level participation counts.
pub fn validate_join(k: usize, n: usize, radius: f64, seed: u64) -> ValidationReport {
    let world = Rect::from_bounds(0.0, 0.0, 1024.0, 1024.0);
    // Two trees over slightly shifted subdivisions so matches are sparse.
    let tree_r = build_balanced(k, n, world);
    let tree_s = build_balanced(k, n, Rect::from_bounds(3.0, 3.0, 1027.0, 1027.0));
    let total_nodes = tree_r.node_count() as f64;
    let m = DiskConfig::paper().records_per_page(RECORD_SIZE) as f64;
    let pages = (total_nodes / m).ceil();
    let theta = ThetaOp::WithinDistance(radius);

    let mut report = ValidationReport {
        title: format!("JOIN validation: k={k}, n={n}, radius={radius}"),
        ..Default::default()
    };

    // Dry run to collect distinct nodes visited per level on each side.
    let mut seen_r: Vec<HashSet<sj_gentree::NodeId>> = vec![HashSet::new(); n + 1];
    let mut seen_s: Vec<HashSet<sj_gentree::NodeId>> = vec![HashSet::new(); n + 1];
    let dry = {
        let depth_r: std::collections::HashMap<_, _> = tree_r
            .levels()
            .into_iter()
            .enumerate()
            .flat_map(|(d, nodes)| nodes.into_iter().map(move |nd| (nd, d)))
            .collect();
        let depth_s: std::collections::HashMap<_, _> = tree_s
            .levels()
            .into_iter()
            .enumerate()
            .flat_map(|(d, nodes)| nodes.into_iter().map(move |nd| (nd, d)))
            .collect();
        gt_join::join(
            &tree_r,
            &tree_s,
            theta,
            |nd| {
                seen_r[depth_r[&nd]].insert(nd);
            },
            |nd| {
                seen_s[depth_s[&nd]].insert(nd);
            },
        )
    };

    // --- strategy I ---------------------------------------------------------
    let items = |tree: &sj_gentree::GenTree, offset: u64| -> Vec<(u64, Geometry)> {
        tree.entry_nodes()
            .iter()
            .map(|&nid| {
                let e = tree.entry(nid).expect("entry");
                (offset + e.id, e.geometry.clone())
            })
            .collect()
    };
    let mem_pages = 64usize;
    let mut pool = fresh_pool(mem_pages);
    let r_flat = StoredRelation::build(
        &mut pool,
        &items(&tree_r, 0),
        RECORD_SIZE,
        Layout::Clustered,
    );
    let s_flat = StoredRelation::build(
        &mut pool,
        &items(&tree_s, 1_000_000),
        RECORD_SIZE,
        Layout::Clustered,
    );
    pool.clear();
    pool.reset_stats();
    // All executors below dispatch through the unified Strategy surface;
    // with a sequential, untraced request each is exactly its legacy
    // free-function twin.
    let flat_ops = JoinOperands::flat(&r_flat, &s_flat, world);
    let nl = Strategy::NestedLoop
        .executor(&flat_ops)
        .expect("flat operands present")
        .execute(&JoinRequest::new(theta), &mut pool);
    let passes = (total_nodes / (m * (mem_pages as f64 - 10.0))).ceil();
    report.push(
        "I: page reads ((passes+1)·⌈N/m⌉)",
        (passes + 1.0) * pages,
        nl.stats.physical_reads as f64,
    );
    report.push(
        "I: θ evaluations (N²)",
        total_nodes * total_nodes,
        nl.stats.theta_evals as f64,
    );

    // --- strategy II ----------------------------------------------------------
    // Predicted I/O: one Yao term per level per side over the *distinct*
    // participating nodes (the model's per-level participation counts).
    let predict = |seen: &[HashSet<sj_gentree::NodeId>], clustered: bool| -> f64 {
        let kf = k as f64;
        seen.iter()
            .enumerate()
            .map(|(lvl, nodes)| {
                let x = nodes.len() as f64;
                if clustered {
                    if lvl == 0 {
                        // Root record.
                        1.0
                    } else {
                        let records = kf.powi(lvl as i32 - 1).max(1.0);
                        yao(
                            (x / kf).max(if x > 0.0 { 1.0 } else { 0.0 }),
                            (kf.powi(lvl as i32) / m).ceil(),
                            records,
                        )
                    }
                } else {
                    yao(x, pages, total_nodes)
                }
            })
            .sum()
    };
    for (layout, clustered, label) in [
        (Layout::Unclustered { seed }, false, "IIa"),
        (Layout::Clustered, true, "IIb"),
    ] {
        let mut pool = fresh_pool(10_000);
        let tr = TreeRelation::new(&mut pool, tree_r.clone(), RECORD_SIZE, layout);
        let ts = TreeRelation::new(&mut pool, tree_s.clone(), RECORD_SIZE, layout);
        pool.clear();
        pool.reset_stats();
        let run = Strategy::Tree
            .executor(&JoinOperands::trees(&tr, &ts, world))
            .expect("tree operands present")
            .execute(&JoinRequest::new(theta), &mut pool);
        let predicted = predict(&seen_r, clustered) + predict(&seen_s, clustered);
        report.push(
            format!("{label}: page reads (Σ Yao per level)"),
            predicted,
            run.stats.physical_reads as f64,
        );
        // Result correctness against strategy I (ids offset on the S side).
        let mut got = run.pairs.clone();
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = nl.pairs.iter().map(|&(a, b)| (a, b - 1_000_000)).collect();
        want.sort_unstable();
        assert_eq!(got, want, "{label} join result must equal nested loop");
    }

    // Comparison-count cross-check: the dry (in-memory) run of Algorithm
    // JOIN and the stored executor must perform identical Θ+θ work — the
    // storage layer may only change I/O, never the algorithm.
    let mut stored_pool = fresh_pool(10_000);
    let tr = TreeRelation::new(
        &mut stored_pool,
        tree_r.clone(),
        RECORD_SIZE,
        Layout::Clustered,
    );
    let ts = TreeRelation::new(
        &mut stored_pool,
        tree_s.clone(),
        RECORD_SIZE,
        Layout::Clustered,
    );
    let stored = Strategy::Tree
        .executor(&JoinOperands::trees(&tr, &ts, world))
        .expect("tree operands present")
        .execute(&JoinRequest::new(theta), &mut stored_pool);
    report.push(
        "II: Θ+θ comparisons (dry vs stored)",
        (dry.stats.filter_evals + dry.stats.theta_evals) as f64,
        (stored.stats.filter_evals + stored.stats.theta_evals) as f64,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_validation_within_tolerance() {
        let report = validate_select(4, 4, 40.0, 7);
        // Yao-based I/O predictions land close to measurement; comparison
        // counts match exactly by construction.
        assert!(
            report.within(2.0),
            "predictions off by more than 2x:\n{report}"
        );
    }

    #[test]
    fn select_validation_other_shape() {
        let report = validate_select(6, 3, 100.0, 13);
        assert!(report.within(2.0), "{report}");
    }

    #[test]
    fn join_validation_within_tolerance() {
        let report = validate_join(4, 3, 6.0, 21);
        assert!(
            report.within(2.5),
            "predictions off by more than 2.5x:\n{report}"
        );
    }

    #[test]
    fn reports_render() {
        let report = validate_select(3, 3, 60.0, 1);
        let text = report.to_string();
        assert!(text.contains("SELECT validation"));
        assert!(text.contains("IIa"));
    }
}
