//! # sj-core — workloads, scenarios, and the model-validation harness
//!
//! The top-level crate of the reproduction. It provides:
//!
//! * [`workload`] — seeded synthetic spatial workload generators: uniform
//!   and Gaussian-clustered points/rectangles/polygons, plus the paper's
//!   motivating *house/lake* scenario (§1, query (2)),
//! * [`advisor`] — the paper's §5 conclusions as an executable strategy
//!   advisor (cost-model scoring + Monte-Carlo selectivity estimation),
//! * [`experiment`] — the analytic-vs-measured harness: it runs the real
//!   executors of `sj-joins` on balanced k-ary trees (the model's S1/S2
//!   assumptions made concrete) and compares measured page I/O and
//!   comparison counts against the §4 cost formulas,
//! * re-exports of every sub-crate so that downstream users (and the
//!   `examples/` directory) need a single dependency.
//!
//! ## Quick start
//!
//! ```
//! use sj_core::workload::{self, WorkloadSpec};
//! use sj_core::{Database, JoinStrategy, ThetaOp};
//!
//! let mut db = Database::in_memory();
//! workload::load_house_lake(&mut db, 100, 5, 7);
//! let pairs = db.spatial_join(
//!     "house", "hlocation", "lake", "larea",
//!     ThetaOp::WithinDistance(150.0),
//!     JoinStrategy::GenTree,
//! );
//! // Some houses are within 150 km of a lake in this synthetic map.
//! assert!(!pairs.is_empty());
//! let _ = WorkloadSpec::default();
//! ```

pub mod advisor;
pub mod experiment;
pub mod workload;

pub use sj_btree::BPlusTree;
pub use sj_costmodel::{Distribution, ModelParams};
pub use sj_gentree::{GenTree, NodeId};
pub use sj_geom::{Bounded, Direction, Geometry, Point, Polygon, Polyline, Rect, ThetaOp};
pub use sj_joins::{ExecStats, JoinIndex, StoredRelation, TreeRelation};
pub use sj_rel::{Column, Database, JoinStrategy, Schema, Tuple, Value, ValueType};
pub use sj_storage::{BufferPool, Disk, DiskConfig, HeapFile, IoStats, Layout};
pub use sj_zorder::ZGrid;
