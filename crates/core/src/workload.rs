//! Seeded synthetic workload generators.
//!
//! The paper evaluates analytically; to run the *executors* we need data.
//! These generators produce the standard synthetic spatial workloads
//! (uniform, Gaussian-clustered) plus the paper's own motivating scenario —
//! houses (points) and lakes (polygons) — with deterministic seeds so
//! every experiment is reproducible.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sj_geom::{Geometry, Point, Polygon, Polyline, Rect};
use sj_rel::{Column, Database, Schema, Value, ValueType};

/// Shape of generated geometries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryKind {
    Point,
    /// Axis-aligned rectangles with sides up to `max_extent`.
    Rect,
    /// Regular polygons (5–8 vertices) with circumradius up to
    /// `max_extent / 2`.
    Polygon,
    /// Open polylines (roads/rivers) of 3–6 segments, total span up to
    /// `max_extent`.
    Polyline,
}

/// Placement of generated geometries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Uniform over the world rectangle.
    Uniform,
    /// A mixture of `clusters` Gaussian blobs with the given standard
    /// deviation (skewed data — the hard case for uniform grids).
    Clustered { clusters: usize, sigma: f64 },
}

/// A complete workload specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    pub count: usize,
    pub world: Rect,
    pub kind: GeometryKind,
    pub placement: Placement,
    /// Maximum object extent (ignored for points).
    pub max_extent: f64,
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            count: 1000,
            world: Rect::from_bounds(0.0, 0.0, 1000.0, 1000.0),
            kind: GeometryKind::Point,
            placement: Placement::Uniform,
            max_extent: 10.0,
            seed: 42,
        }
    }
}

/// Generates `(id, geometry)` tuples per the spec, ids starting at `id0`.
pub fn generate(spec: &WorkloadSpec, id0: u64) -> Vec<(u64, Geometry)> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let centers: Vec<Point> = match spec.placement {
        Placement::Uniform => Vec::new(),
        Placement::Clustered { clusters, .. } => (0..clusters.max(1))
            .map(|_| random_point(&mut rng, &spec.world))
            .collect(),
    };
    (0..spec.count)
        .map(|i| {
            let center = match spec.placement {
                Placement::Uniform => random_point(&mut rng, &spec.world),
                Placement::Clustered { sigma, .. } => {
                    let c = centers[rng.random_range(0..centers.len())];
                    // Box–Muller Gaussian displacement, clamped to world.
                    let (u1, u2): (f64, f64) =
                        (rng.random_range(1e-12..1.0), rng.random_range(0.0..1.0));
                    let r = sigma * (-2.0 * u1.ln()).sqrt();
                    let a = 2.0 * std::f64::consts::PI * u2;
                    Point::new(
                        (c.x + r * a.cos()).clamp(spec.world.lo.x, spec.world.hi.x),
                        (c.y + r * a.sin()).clamp(spec.world.lo.y, spec.world.hi.y),
                    )
                }
            };
            let g = match spec.kind {
                GeometryKind::Point => Geometry::Point(center),
                GeometryKind::Rect => {
                    let w = rng.random_range(0.01..spec.max_extent.max(0.02));
                    let h = rng.random_range(0.01..spec.max_extent.max(0.02));
                    let x0 = (center.x - w / 2.0).max(spec.world.lo.x);
                    let y0 = (center.y - h / 2.0).max(spec.world.lo.y);
                    let x1 = (x0 + w).min(spec.world.hi.x);
                    let y1 = (y0 + h).min(spec.world.hi.y);
                    Geometry::Rect(Rect::from_bounds(x0, y0, x1.max(x0), y1.max(y0)))
                }
                GeometryKind::Polyline => {
                    let segs = rng.random_range(3..=6);
                    let step = (spec.max_extent / segs as f64).max(0.02);
                    let mut pts = vec![center];
                    let mut cur = center;
                    for _ in 0..segs {
                        cur = Point::new(
                            (cur.x + rng.random_range(-step..step))
                                .clamp(spec.world.lo.x, spec.world.hi.x),
                            (cur.y + rng.random_range(-step..step))
                                .clamp(spec.world.lo.y, spec.world.hi.y),
                        );
                        pts.push(cur);
                    }
                    Geometry::Polyline(Polyline::new(pts).expect("≥2 vertices"))
                }
                GeometryKind::Polygon => {
                    let r = rng.random_range(0.05..(spec.max_extent / 2.0).max(0.1));
                    let sides = rng.random_range(5..=8);
                    // Keep the polygon inside the world by nudging the
                    // center inward.
                    let cx = center.x.clamp(spec.world.lo.x + r, spec.world.hi.x - r);
                    let cy = center.y.clamp(spec.world.lo.y + r, spec.world.hi.y - r);
                    Geometry::Polygon(Polygon::regular(Point::new(cx, cy), r, sides))
                }
            };
            (id0 + i as u64, g)
        })
        .collect()
}

fn random_point(rng: &mut StdRng, world: &Rect) -> Point {
    Point::new(
        rng.random_range(world.lo.x..=world.hi.x),
        rng.random_range(world.lo.y..=world.hi.y),
    )
}

/// Loads the paper's `house(hid, hprice, hlocation)` and
/// `lake(lid, name, larea)` relations into `db`, with `houses` point
/// locations and `lakes` polygonal areas in a 1000×1000 km world.
pub fn load_house_lake(db: &mut Database, houses: usize, lakes: usize, seed: u64) {
    db.create_table(
        "house",
        Schema::new(vec![
            Column::new("hid", ValueType::Int),
            Column::new("hprice", ValueType::Float),
            Column::new("hlocation", ValueType::Spatial),
        ]),
        300,
    );
    db.create_table(
        "lake",
        Schema::new(vec![
            Column::new("lid", ValueType::Int),
            Column::new("name", ValueType::Str),
            Column::new("larea", ValueType::Spatial),
        ]),
        300,
    );
    let world = Rect::from_bounds(0.0, 0.0, 1000.0, 1000.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let house_geoms = generate(
        &WorkloadSpec {
            count: houses,
            world,
            kind: GeometryKind::Point,
            placement: Placement::Clustered {
                clusters: 8,
                sigma: 60.0,
            },
            max_extent: 0.0,
            seed,
        },
        0,
    );
    for (i, (_, g)) in house_geoms.into_iter().enumerate() {
        let price = rng.random_range(50_000.0..2_000_000.0f64);
        db.insert(
            "house",
            vec![Value::Int(i as i64), Value::Float(price), Value::Spatial(g)],
        );
    }
    let lake_geoms = generate(
        &WorkloadSpec {
            count: lakes,
            world,
            kind: GeometryKind::Polygon,
            placement: Placement::Uniform,
            max_extent: 80.0,
            seed: seed.wrapping_add(1),
        },
        0,
    );
    for (i, (_, g)) in lake_geoms.into_iter().enumerate() {
        db.insert(
            "lake",
            vec![
                Value::Int(i as i64),
                Value::Str(format!("Lake {i}")),
                Value::Spatial(g),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geom::Bounded;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let spec = WorkloadSpec::default();
        let a = generate(&spec, 0);
        let b = generate(&spec, 0);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        let c = generate(&WorkloadSpec { seed: 43, ..spec }, 0);
        assert_ne!(a, c);
    }

    #[test]
    fn geometries_stay_in_world() {
        for kind in [
            GeometryKind::Point,
            GeometryKind::Rect,
            GeometryKind::Polygon,
        ] {
            for placement in [
                Placement::Uniform,
                Placement::Clustered {
                    clusters: 4,
                    sigma: 30.0,
                },
            ] {
                let spec = WorkloadSpec {
                    count: 200,
                    kind,
                    placement,
                    ..WorkloadSpec::default()
                };
                let world = spec.world.expand(1e-6);
                for (_, g) in generate(&spec, 0) {
                    assert!(
                        world.contains_rect(&g.mbr()),
                        "{kind:?}/{placement:?}: {g:?} escapes the world"
                    );
                }
            }
        }
    }

    #[test]
    fn clustered_placement_is_skewed() {
        // Clustered data should concentrate mass: the densest 10% of a
        // 10×10 histogram must hold far more than 10% of the points.
        let spec = WorkloadSpec {
            count: 2000,
            placement: Placement::Clustered {
                clusters: 3,
                sigma: 25.0,
            },
            ..WorkloadSpec::default()
        };
        let mut hist = [0usize; 100];
        for (_, g) in generate(&spec, 0) {
            let c = g.centerpoint();
            let cx = ((c.x / 100.0) as usize).min(9);
            let cy = ((c.y / 100.0) as usize).min(9);
            hist[cy * 10 + cx] += 1;
        }
        let mut sorted = hist;
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = sorted[..10].iter().sum();
        assert!(top10 > 2000 / 3, "top-10 cells hold only {top10} points");
    }

    #[test]
    fn house_lake_scenario_loads() {
        let mut db = Database::in_memory();
        load_house_lake(&mut db, 50, 4, 9);
        assert_eq!(db.row_count("house"), 50);
        assert_eq!(db.row_count("lake"), 4);
        // Lakes are polygons, houses are points.
        let lake_row = db.get("lake", 0);
        assert!(matches!(lake_row[2], Value::Spatial(Geometry::Polygon(_))));
        let house_row = db.get("house", 0);
        assert!(matches!(house_row[2], Value::Spatial(Geometry::Point(_))));
    }
}
