//! Strategy advisor: the paper's conclusions (§4.5/§5), operationalized.
//!
//! > "In summary, we find that join indices are only efficient if update
//! > ratios are very low and if join selectivities are comparatively low.
//! > Otherwise, the generalization tree is the superior approach."
//!
//! Given a workload profile — operation type, match distribution,
//! selectivity `p`, and the expected number of updates per query — the
//! advisor totals `query cost + updates·update cost` from the §4 formulas
//! and recommends a strategy. A Monte-Carlo selectivity estimator supplies
//! `p` when only the data is known.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sj_costmodel::{join, select, update, Distribution, ModelParams};
use sj_geom::ThetaOp;
use sj_joins::StoredRelation;
use sj_storage::{BufferPool, StorageError};

/// What the query mix does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Spatial selections (§4.3).
    Selection,
    /// General spatial joins (§4.4).
    Join,
}

/// A candidate strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Candidate {
    NestedLoop,
    TreeUnclustered,
    TreeClustered,
    JoinIndex,
}

impl Candidate {
    pub const ALL: [Candidate; 4] = [
        Candidate::NestedLoop,
        Candidate::TreeUnclustered,
        Candidate::TreeClustered,
        Candidate::JoinIndex,
    ];

    /// The paper's roman-numeral label.
    pub fn label(&self) -> &'static str {
        match self {
            Candidate::NestedLoop => "I (nested loop)",
            Candidate::TreeUnclustered => "IIa (unclustered tree)",
            Candidate::TreeClustered => "IIb (clustered tree)",
            Candidate::JoinIndex => "III (join index)",
        }
    }
}

/// The workload description the advisor consumes.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProfile {
    pub params: ModelParams,
    pub distribution: Distribution,
    /// Join selectivity `p`.
    pub selectivity: f64,
    /// Expected insertions per query — the "update ratio" of §5.
    pub updates_per_query: f64,
    pub operation: Operation,
}

/// One scored candidate.
#[derive(Debug, Clone, Copy)]
pub struct Scored {
    pub candidate: Candidate,
    pub query_cost: f64,
    pub update_cost: f64,
}

impl Scored {
    /// Query cost plus amortized maintenance.
    pub fn total(&self, updates_per_query: f64) -> f64 {
        self.query_cost + updates_per_query * self.update_cost
    }
}

/// Scores all four strategies for the profile (query and per-insert
/// update costs, in model units).
pub fn score(profile: &WorkloadProfile) -> Vec<Scored> {
    let p = &profile.params;
    let d = profile.distribution;
    let sel = profile.selectivity;
    Candidate::ALL
        .iter()
        .map(|&candidate| {
            let query_cost = match (profile.operation, candidate) {
                (Operation::Selection, Candidate::NestedLoop) => select::c_i(p),
                (Operation::Selection, Candidate::TreeUnclustered) => select::c_iia(p, d, sel),
                (Operation::Selection, Candidate::TreeClustered) => select::c_iib(p, d, sel),
                (Operation::Selection, Candidate::JoinIndex) => select::c_iii(p, d, sel),
                (Operation::Join, Candidate::NestedLoop) => join::d_i(p),
                (Operation::Join, Candidate::TreeUnclustered) => join::d_iia(p, d, sel),
                (Operation::Join, Candidate::TreeClustered) => join::d_iib(p, d, sel),
                (Operation::Join, Candidate::JoinIndex) => join::d_iii(p, d, sel),
            };
            let update_cost = match candidate {
                Candidate::NestedLoop => update::u_i(p),
                Candidate::TreeUnclustered => update::u_iia(p),
                Candidate::TreeClustered => update::u_iib(p),
                Candidate::JoinIndex => update::u_iii(p),
            };
            Scored {
                candidate,
                query_cost,
                update_cost,
            }
        })
        .collect()
}

/// The cheapest strategy for the profile, with the full scoreboard.
pub fn recommend(profile: &WorkloadProfile) -> (Candidate, Vec<Scored>) {
    let scores = score(profile);
    let best = scores
        .iter()
        .min_by(|a, b| {
            a.total(profile.updates_per_query)
                .partial_cmp(&b.total(profile.updates_per_query))
                .expect("finite costs")
        })
        .expect("non-empty candidate set");
    (best.candidate, scores)
}

/// The executor strategy implementing a cost-model candidate.
///
/// The model scores the paper's four §4 strategies; the executor layer
/// has more (sweep, z-order, grid, partition), but those are outside the
/// §4 cost formulas, so `Auto` dispatch only ever names these three.
fn candidate_strategy(c: Candidate) -> sj_joins::Strategy {
    match c {
        Candidate::NestedLoop => sj_joins::Strategy::NestedLoop,
        Candidate::TreeUnclustered | Candidate::TreeClustered => sj_joins::Strategy::Tree,
        Candidate::JoinIndex => sj_joins::Strategy::JoinIndex,
    }
}

/// Picks the executor [`Strategy`](sj_joins::Strategy) for a join with
/// operator `theta` under `profile`: walks the §4 scoreboard
/// cheapest-first (query cost plus amortized update cost) and returns
/// the first candidate whose executor strategy
/// [`supports`](sj_joins::Strategy::supports) the operator — so `Auto`
/// never dispatches an inapplicable strategy.
pub fn choose_join_strategy(profile: &WorkloadProfile, theta: ThetaOp) -> sj_joins::Strategy {
    let mut scores = score(profile);
    scores.sort_by(|a, b| {
        a.total(profile.updates_per_query)
            .partial_cmp(&b.total(profile.updates_per_query))
            .expect("finite costs")
    });
    scores
        .iter()
        .map(|s| candidate_strategy(s.candidate))
        .find(|strategy| strategy.supports(theta))
        // All three mapped strategies handle all eight operators today;
        // the fallback guards against a future restricted candidate.
        .unwrap_or(sj_joins::Strategy::NestedLoop)
}

/// Builds the closure for
/// [`JoinOperands::with_chooser`](sj_joins::JoinOperands::with_chooser):
/// per request it estimates the operator's selectivity by seeded
/// sampling over `(r, s)` — charged through the pool like any other I/O
/// — then scores the §4 candidates via [`choose_join_strategy`].
/// Deterministic for a fixed seed, so repeated identical requests
/// resolve identically. Because sampling performs real page reads, the
/// chooser is fallible: a storage fault during estimation surfaces as a
/// typed error rather than a bogus recommendation.
pub fn auto_chooser<'a>(
    base: WorkloadProfile,
    r: &'a StoredRelation,
    s: &'a StoredRelation,
    samples: usize,
    seed: u64,
) -> impl Fn(ThetaOp, &mut BufferPool) -> Result<sj_joins::Strategy, StorageError> + 'a {
    move |theta, pool| {
        if r.is_empty() || s.is_empty() {
            // An empty operand makes every join empty, and the sampler
            // needs tuples to draw — dispatch the universally-applicable
            // strategy I without estimating. Empty operands are routine
            // under sharding, where a shard may own no slice of one side.
            return Ok(sj_joins::Strategy::NestedLoop);
        }
        let mut profile = base;
        profile.operation = Operation::Join;
        profile.selectivity = try_estimate_selectivity(pool, r, s, theta, samples, seed)?;
        Ok(choose_join_strategy(&profile, theta))
    }
}

/// Online feedback for `Strategy::Auto`: the §4 cost model predicts, the
/// observed phase totals correct.
///
/// The static scoreboard assumes the model's data distribution; a skewed
/// shard can make its prediction arbitrarily wrong. `AdaptiveAdvisor`
/// keeps a per-(θ-family, strategy) running mean of observed execution
/// cost (microseconds of sj-obs phase wall-clock, or any monotone cost
/// proxy) and chooses with a deterministic explore-then-exploit policy:
///
/// 1. the static model's pick runs first (no observations yet);
/// 2. while any supporting candidate is unobserved, the first unobserved
///    one (in [`CANDIDATES`](Self::CANDIDATES) order) runs next;
/// 3. once every candidate has been observed, the one with the lowest
///    mean observed cost wins (ties break in candidate order).
///
/// Repeated requests against a shard where the model mispredicts thus
/// migrate off the mispredicted strategy after at most
/// `CANDIDATES.len()` requests, without any wall-clock dependence in the
/// decision itself — the policy is a pure function of the observation
/// history, so replays are deterministic.
#[derive(Debug, Clone)]
pub struct AdaptiveAdvisor {
    profile: WorkloadProfile,
    /// Running (mean cost, observation count) per θ-family × strategy.
    observed: std::collections::HashMap<(&'static str, sj_joins::Strategy), (f64, u64)>,
}

impl AdaptiveAdvisor {
    /// The strategies the feedback loop arbitrates between: the three §4
    /// executor strategies the static model can name, plus the
    /// partition-parallel executor, which the §4 formulas do not score
    /// but which shard-local skew often favors.
    pub const CANDIDATES: [sj_joins::Strategy; 4] = [
        sj_joins::Strategy::Tree,
        sj_joins::Strategy::JoinIndex,
        sj_joins::Strategy::Partition,
        sj_joins::Strategy::NestedLoop,
    ];

    /// A fresh advisor with no observations; `profile` seeds the static
    /// model used for the very first pick of each θ-family.
    pub fn new(profile: WorkloadProfile) -> Self {
        AdaptiveAdvisor {
            profile,
            observed: std::collections::HashMap::new(),
        }
    }

    /// θ-families share observations: two `WithinDistance` requests with
    /// different bounds exercise the same executor paths, so their costs
    /// pool. Keyed by the operator family, parameters ignored.
    fn theta_key(theta: ThetaOp) -> &'static str {
        match theta {
            ThetaOp::WithinCenterDistance(_) => "within_center_distance",
            ThetaOp::WithinDistance(_) => "within_distance",
            ThetaOp::Overlaps => "overlaps",
            ThetaOp::Includes => "includes",
            ThetaOp::ContainedIn => "contained_in",
            ThetaOp::DirectionOf(_) => "direction_of",
            ThetaOp::ReachableWithin { .. } => "reachable_within",
            ThetaOp::Adjacent => "adjacent",
        }
    }

    /// Record an observed execution cost for `strategy` on `theta`'s
    /// family. `cost_us` is typically the sj-obs phase total (or
    /// `Response::exec_us`) of a completed run.
    pub fn observe(&mut self, theta: ThetaOp, strategy: sj_joins::Strategy, cost_us: u64) {
        let entry = self
            .observed
            .entry((Self::theta_key(theta), strategy))
            .or_insert((0.0, 0));
        entry.1 += 1;
        entry.0 += (cost_us as f64 - entry.0) / entry.1 as f64;
    }

    /// Total observations recorded for `theta`'s family.
    pub fn observations(&self, theta: ThetaOp) -> u64 {
        Self::CANDIDATES
            .iter()
            .filter_map(|s| self.observed.get(&(Self::theta_key(theta), *s)))
            .map(|(_, n)| n)
            .sum()
    }

    /// The concrete strategy `Auto` should dispatch for `theta` given
    /// the history so far (see the type docs for the policy). Always
    /// returns a strategy that [`supports`](sj_joins::Strategy::supports)
    /// the operator.
    pub fn choose(&self, theta: ThetaOp) -> sj_joins::Strategy {
        let key = Self::theta_key(theta);
        let supported: Vec<sj_joins::Strategy> = Self::CANDIDATES
            .iter()
            .copied()
            .filter(|s| s.supports(theta))
            .collect();
        let static_pick = choose_join_strategy(&self.profile, theta);
        // Phase 1: trust the model until it has been measured once.
        if supported.contains(&static_pick) && !self.observed.contains_key(&(key, static_pick)) {
            return static_pick;
        }
        // Phase 2: measure the remaining candidates.
        if let Some(unexplored) = supported
            .iter()
            .find(|s| !self.observed.contains_key(&(key, **s)))
        {
            return *unexplored;
        }
        // Phase 3: exploit the lowest observed mean.
        supported
            .iter()
            .copied()
            .min_by(|a, b| {
                let ca = self.observed[&(key, *a)].0;
                let cb = self.observed[&(key, *b)].0;
                ca.partial_cmp(&cb).expect("finite observed costs")
            })
            .unwrap_or(sj_joins::Strategy::NestedLoop)
    }
}

/// Monte-Carlo selectivity estimation: θ-tests `samples` random tuple
/// pairs and returns the matching fraction — the `p` to feed the model
/// when only the data is known.
pub fn estimate_selectivity(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    samples: usize,
    seed: u64,
) -> f64 {
    try_estimate_selectivity(pool, r, s, theta, samples, seed)
        .unwrap_or_else(|e| panic!("selectivity estimation failed: {e}"))
}

/// Fail-stop [`estimate_selectivity`]: the first faulted sample read
/// aborts the estimate with a typed error (no estimate from a partial
/// sample).
pub fn try_estimate_selectivity(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    samples: usize,
    seed: u64,
) -> Result<f64, StorageError> {
    assert!(samples > 0, "need at least one sample");
    assert!(
        !r.is_empty() && !s.is_empty(),
        "cannot sample empty relations"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..samples {
        let i = rng.random_range(0..r.len());
        let j = rng.random_range(0..s.len());
        let (_, rg) = r.try_read_at(pool, i)?;
        let (_, sg) = s.try_read_at(pool, j)?;
        if theta.eval(&rg, &sg) {
            hits += 1;
        }
    }
    Ok(hits as f64 / samples as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geom::{Geometry, Point};
    use sj_storage::{Disk, DiskConfig, Layout};

    fn profile(
        operation: Operation,
        distribution: Distribution,
        selectivity: f64,
        updates_per_query: f64,
    ) -> WorkloadProfile {
        WorkloadProfile {
            params: ModelParams::paper(),
            distribution,
            selectivity,
            updates_per_query,
            operation,
        }
    }

    #[test]
    fn join_index_wins_static_low_selectivity_joins() {
        // §5: join indices pay off when updates are rare AND selectivity
        // is very low.
        let (best, _) = recommend(&profile(Operation::Join, Distribution::Uniform, 1e-11, 0.0));
        assert_eq!(best, Candidate::JoinIndex);
    }

    #[test]
    fn tree_wins_once_updates_matter() {
        // The same workload with one insert per query flips to the tree:
        // U_III is prohibitive.
        let (best, _) = recommend(&profile(Operation::Join, Distribution::Uniform, 1e-11, 1.0));
        assert!(
            matches!(best, Candidate::TreeClustered | Candidate::TreeUnclustered),
            "got {best:?}"
        );
    }

    #[test]
    fn tree_wins_high_selectivity_joins() {
        // §4.5: at higher selectivities the generalization tree is the
        // better option; the clustered/unclustered difference is
        // "usually negligible", so accept either variant.
        let (best, _) = recommend(&profile(Operation::Join, Distribution::Uniform, 1e-6, 0.0));
        assert!(
            matches!(best, Candidate::TreeClustered | Candidate::TreeUnclustered),
            "got {best:?}"
        );
    }

    #[test]
    fn clustered_tree_wins_selections() {
        // §5: "for the spatial selection operation, clustered
        // generalization trees clearly seem to be the most efficient
        // strategy".
        for d in Distribution::ALL {
            let (best, _) = recommend(&profile(Operation::Selection, d, 1e-2, 0.1));
            assert_eq!(best, Candidate::TreeClustered, "{d:?}");
        }
    }

    #[test]
    fn nested_loop_never_recommended() {
        for op in [Operation::Selection, Operation::Join] {
            for d in Distribution::ALL {
                for sel in [1e-10, 1e-6, 1e-2] {
                    for upd in [0.0, 0.5] {
                        let (best, _) = recommend(&profile(op, d, sel, upd));
                        assert_ne!(best, Candidate::NestedLoop);
                    }
                }
            }
        }
    }

    #[test]
    fn scoreboard_is_complete_and_finite() {
        let scores = score(&profile(Operation::Join, Distribution::HiLoc, 1e-8, 0.25));
        assert_eq!(scores.len(), 4);
        for s in scores {
            assert!(s.query_cost.is_finite() && s.query_cost >= 0.0);
            assert!(s.update_cost.is_finite() && s.update_cost >= 0.0);
            assert!(s.total(0.25) >= s.query_cost);
        }
    }

    #[test]
    fn choose_join_strategy_tracks_the_recommendation() {
        // Static low-selectivity joins → join index; add updates → tree.
        let static_low = profile(Operation::Join, Distribution::Uniform, 1e-11, 0.0);
        assert_eq!(
            choose_join_strategy(&static_low, ThetaOp::Overlaps),
            sj_joins::Strategy::JoinIndex
        );
        let updating = profile(Operation::Join, Distribution::Uniform, 1e-11, 1.0);
        assert_eq!(
            choose_join_strategy(&updating, ThetaOp::Overlaps),
            sj_joins::Strategy::Tree
        );
    }

    #[test]
    fn chosen_strategy_always_supports_the_operator() {
        let thetas = [
            ThetaOp::WithinCenterDistance(2.0),
            ThetaOp::WithinDistance(2.0),
            ThetaOp::Overlaps,
            ThetaOp::Includes,
            ThetaOp::ContainedIn,
            ThetaOp::DirectionOf(sj_geom::Direction::NorthWest),
            ThetaOp::ReachableWithin {
                minutes: 5.0,
                speed: 1.0,
            },
            ThetaOp::Adjacent,
        ];
        for d in Distribution::ALL {
            for sel in [1e-11, 1e-6, 1e-2] {
                for upd in [0.0, 1.0] {
                    let p = profile(Operation::Join, d, sel, upd);
                    for theta in thetas {
                        let s = choose_join_strategy(&p, theta);
                        assert!(s.supports(theta), "{s:?} cannot run {theta:?}");
                        assert_ne!(s, sj_joins::Strategy::Auto);
                    }
                }
            }
        }
    }

    #[test]
    fn auto_chooser_drives_the_auto_executor() {
        use sj_joins::{JoinOperands, JoinRequest, Strategy};

        let mut pool = BufferPool::new(Disk::new(DiskConfig::paper()), 128);
        let mk = |id0: u64| -> Vec<(u64, Geometry)> {
            (0..100)
                .map(|i| {
                    (
                        id0 + i as u64,
                        Geometry::Point(Point::new((i % 10) as f64, (i / 10) as f64)),
                    )
                })
                .collect()
        };
        let r = StoredRelation::build(&mut pool, &mk(0), 300, Layout::Clustered);
        let s = StoredRelation::build(&mut pool, &mk(1000), 300, Layout::Clustered);
        let base = profile(Operation::Join, Distribution::Uniform, 0.0, 0.0);
        let chooser = auto_chooser(base, &r, &s, 200, 42);
        let world = sj_geom::Rect::from_bounds(0.0, 0.0, 16.0, 16.0);
        let ops = JoinOperands::flat(&r, &s, world).with_chooser(&chooser);
        let theta = ThetaOp::WithinDistance(1.1);

        let mut want = Strategy::NestedLoop
            .executor(&ops)
            .unwrap()
            .execute(&JoinRequest::new(theta), &mut pool)
            .pairs;
        want.sort_unstable();

        let mut exec = Strategy::Auto.executor(&ops).expect("chooser attached");
        let mut got = exec.execute(&JoinRequest::new(theta), &mut pool).pairs;
        got.sort_unstable();
        assert_eq!(got, want, "auto dispatch must preserve the join result");
        let resolved = exec.resolved_strategy();
        assert_ne!(resolved, Strategy::Auto);
        assert!(resolved.supports(theta));
    }

    #[test]
    fn auto_chooser_handles_empty_relations() {
        let mut pool = BufferPool::new(Disk::new(DiskConfig::paper()), 16);
        let empty = StoredRelation::build(&mut pool, &[], 300, Layout::Clustered);
        let full = StoredRelation::build(
            &mut pool,
            &[(1, Geometry::Point(Point::new(1.0, 2.0)))],
            300,
            Layout::Clustered,
        );
        let base = profile(Operation::Join, Distribution::Uniform, 0.0, 0.0);
        for (r, s) in [(&empty, &full), (&full, &empty), (&empty, &empty)] {
            let chooser = auto_chooser(base, r, s, 64, 1);
            let got = chooser(ThetaOp::Overlaps, &mut pool).unwrap();
            assert_eq!(got, sj_joins::Strategy::NestedLoop);
        }
    }

    #[test]
    fn adaptive_advisor_starts_from_the_static_model() {
        // Static low-selectivity joins pick the join index; with no
        // observations the adaptive advisor must agree.
        let adv = AdaptiveAdvisor::new(profile(Operation::Join, Distribution::Uniform, 1e-11, 0.0));
        assert_eq!(adv.choose(ThetaOp::Overlaps), sj_joins::Strategy::JoinIndex);
        assert_eq!(adv.observations(ThetaOp::Overlaps), 0);
    }

    #[test]
    fn adaptive_advisor_migrates_off_a_mispredicted_strategy() {
        use sj_joins::Strategy;
        // The model insists on the join index; observations say the tree
        // is 10× cheaper. After the exploration round the advisor must
        // settle on the tree and stay there.
        let p = profile(Operation::Join, Distribution::Uniform, 1e-11, 0.0);
        let mut adv = AdaptiveAdvisor::new(p);
        let theta = ThetaOp::Overlaps;
        assert_eq!(adv.choose(theta), Strategy::JoinIndex);
        // Feed deterministic synthetic costs: run whatever it picks,
        // observe JoinIndex as expensive and everything else per table.
        let cost = |s: Strategy| match s {
            Strategy::JoinIndex => 10_000,
            Strategy::Tree => 1_000,
            Strategy::Partition => 4_000,
            Strategy::NestedLoop => 8_000,
            _ => unreachable!("not a candidate"),
        };
        for _ in 0..AdaptiveAdvisor::CANDIDATES.len() {
            let pick = adv.choose(theta);
            adv.observe(theta, pick, cost(pick));
        }
        // Exploration visited every candidate exactly once…
        assert_eq!(
            adv.observations(theta),
            AdaptiveAdvisor::CANDIDATES.len() as u64
        );
        // …and exploitation now prefers the empirically cheapest.
        assert_eq!(adv.choose(theta), Strategy::Tree);
        // More consistent observations do not destabilize the choice.
        adv.observe(theta, Strategy::Tree, 1_100);
        adv.observe(theta, Strategy::JoinIndex, 9_000);
        assert_eq!(adv.choose(theta), Strategy::Tree);
    }

    #[test]
    fn adaptive_advisor_keys_by_theta_family() {
        use sj_joins::Strategy;
        let p = profile(Operation::Join, Distribution::Uniform, 1e-6, 0.0);
        let mut adv = AdaptiveAdvisor::new(p);
        // Observations under within-distance(5) pool with
        // within-distance(50)…
        adv.observe(ThetaOp::WithinDistance(5.0), Strategy::Tree, 100);
        assert_eq!(adv.observations(ThetaOp::WithinDistance(50.0)), 1);
        // …but not with a different operator family.
        assert_eq!(adv.observations(ThetaOp::Overlaps), 0);
    }

    #[test]
    fn adaptive_advisor_respects_operator_support() {
        // DirectionOf is unsupported by some executors; whatever the
        // history, the choice must support the operator.
        let p = profile(Operation::Join, Distribution::Uniform, 1e-2, 0.0);
        let mut adv = AdaptiveAdvisor::new(p);
        let theta = ThetaOp::DirectionOf(sj_geom::Direction::NorthWest);
        for _ in 0..8 {
            let pick = adv.choose(theta);
            assert!(pick.supports(theta), "{pick:?} cannot run {theta:?}");
            adv.observe(theta, pick, 500);
        }
    }

    #[test]
    fn selectivity_estimator_converges() {
        let mut pool = BufferPool::new(Disk::new(DiskConfig::paper()), 128);
        // 50x50 grid vs itself shifted by half a step under within-0.6:
        // each R tuple matches the S tuples half a step to either side.
        let mk = |offset: f64, id0: u64| -> Vec<(u64, Geometry)> {
            (0..2500)
                .map(|i| {
                    (
                        id0 + i as u64,
                        Geometry::Point(Point::new((i % 50) as f64 + offset, (i / 50) as f64)),
                    )
                })
                .collect()
        };
        let r = StoredRelation::build(&mut pool, &mk(0.0, 0), 300, Layout::Clustered);
        let s = StoredRelation::build(&mut pool, &mk(0.5, 10_000), 300, Layout::Clustered);
        let theta = ThetaOp::WithinDistance(0.6);
        let est = estimate_selectivity(&mut pool, &r, &s, theta, 20_000, 7);
        // Ground truth by exhaustive counting.
        let matches = sj_joins::nested_loop::nested_loop_join(&mut pool, &r, &s, theta)
            .pairs
            .len() as f64;
        let truth = matches / (2500.0 * 2500.0);
        assert!(
            (est - truth).abs() < 0.5 * truth,
            "estimate {est} too far from {truth}"
        );
    }
}
