//! Strategy advisor: the paper's conclusions (§4.5/§5), operationalized.
//!
//! > "In summary, we find that join indices are only efficient if update
//! > ratios are very low and if join selectivities are comparatively low.
//! > Otherwise, the generalization tree is the superior approach."
//!
//! Given a workload profile — operation type, match distribution,
//! selectivity `p`, and the expected number of updates per query — the
//! advisor totals `query cost + updates·update cost` from the §4 formulas
//! and recommends a strategy. A Monte-Carlo selectivity estimator supplies
//! `p` when only the data is known.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sj_costmodel::{join, select, update, Distribution, ModelParams};
use sj_geom::ThetaOp;
use sj_joins::StoredRelation;
use sj_storage::BufferPool;

/// What the query mix does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Spatial selections (§4.3).
    Selection,
    /// General spatial joins (§4.4).
    Join,
}

/// A candidate strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Candidate {
    NestedLoop,
    TreeUnclustered,
    TreeClustered,
    JoinIndex,
}

impl Candidate {
    pub const ALL: [Candidate; 4] = [
        Candidate::NestedLoop,
        Candidate::TreeUnclustered,
        Candidate::TreeClustered,
        Candidate::JoinIndex,
    ];

    /// The paper's roman-numeral label.
    pub fn label(&self) -> &'static str {
        match self {
            Candidate::NestedLoop => "I (nested loop)",
            Candidate::TreeUnclustered => "IIa (unclustered tree)",
            Candidate::TreeClustered => "IIb (clustered tree)",
            Candidate::JoinIndex => "III (join index)",
        }
    }
}

/// The workload description the advisor consumes.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProfile {
    pub params: ModelParams,
    pub distribution: Distribution,
    /// Join selectivity `p`.
    pub selectivity: f64,
    /// Expected insertions per query — the "update ratio" of §5.
    pub updates_per_query: f64,
    pub operation: Operation,
}

/// One scored candidate.
#[derive(Debug, Clone, Copy)]
pub struct Scored {
    pub candidate: Candidate,
    pub query_cost: f64,
    pub update_cost: f64,
}

impl Scored {
    /// Query cost plus amortized maintenance.
    pub fn total(&self, updates_per_query: f64) -> f64 {
        self.query_cost + updates_per_query * self.update_cost
    }
}

/// Scores all four strategies for the profile (query and per-insert
/// update costs, in model units).
pub fn score(profile: &WorkloadProfile) -> Vec<Scored> {
    let p = &profile.params;
    let d = profile.distribution;
    let sel = profile.selectivity;
    Candidate::ALL
        .iter()
        .map(|&candidate| {
            let query_cost = match (profile.operation, candidate) {
                (Operation::Selection, Candidate::NestedLoop) => select::c_i(p),
                (Operation::Selection, Candidate::TreeUnclustered) => select::c_iia(p, d, sel),
                (Operation::Selection, Candidate::TreeClustered) => select::c_iib(p, d, sel),
                (Operation::Selection, Candidate::JoinIndex) => select::c_iii(p, d, sel),
                (Operation::Join, Candidate::NestedLoop) => join::d_i(p),
                (Operation::Join, Candidate::TreeUnclustered) => join::d_iia(p, d, sel),
                (Operation::Join, Candidate::TreeClustered) => join::d_iib(p, d, sel),
                (Operation::Join, Candidate::JoinIndex) => join::d_iii(p, d, sel),
            };
            let update_cost = match candidate {
                Candidate::NestedLoop => update::u_i(p),
                Candidate::TreeUnclustered => update::u_iia(p),
                Candidate::TreeClustered => update::u_iib(p),
                Candidate::JoinIndex => update::u_iii(p),
            };
            Scored {
                candidate,
                query_cost,
                update_cost,
            }
        })
        .collect()
}

/// The cheapest strategy for the profile, with the full scoreboard.
pub fn recommend(profile: &WorkloadProfile) -> (Candidate, Vec<Scored>) {
    let scores = score(profile);
    let best = scores
        .iter()
        .min_by(|a, b| {
            a.total(profile.updates_per_query)
                .partial_cmp(&b.total(profile.updates_per_query))
                .expect("finite costs")
        })
        .expect("non-empty candidate set");
    (best.candidate, scores)
}

/// Monte-Carlo selectivity estimation: θ-tests `samples` random tuple
/// pairs and returns the matching fraction — the `p` to feed the model
/// when only the data is known.
pub fn estimate_selectivity(
    pool: &mut BufferPool,
    r: &StoredRelation,
    s: &StoredRelation,
    theta: ThetaOp,
    samples: usize,
    seed: u64,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    assert!(
        !r.is_empty() && !s.is_empty(),
        "cannot sample empty relations"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..samples {
        let i = rng.random_range(0..r.len());
        let j = rng.random_range(0..s.len());
        let (_, rg) = r.read_at(pool, i);
        let (_, sg) = s.read_at(pool, j);
        if theta.eval(&rg, &sg) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geom::{Geometry, Point};
    use sj_storage::{Disk, DiskConfig, Layout};

    fn profile(
        operation: Operation,
        distribution: Distribution,
        selectivity: f64,
        updates_per_query: f64,
    ) -> WorkloadProfile {
        WorkloadProfile {
            params: ModelParams::paper(),
            distribution,
            selectivity,
            updates_per_query,
            operation,
        }
    }

    #[test]
    fn join_index_wins_static_low_selectivity_joins() {
        // §5: join indices pay off when updates are rare AND selectivity
        // is very low.
        let (best, _) = recommend(&profile(Operation::Join, Distribution::Uniform, 1e-11, 0.0));
        assert_eq!(best, Candidate::JoinIndex);
    }

    #[test]
    fn tree_wins_once_updates_matter() {
        // The same workload with one insert per query flips to the tree:
        // U_III is prohibitive.
        let (best, _) = recommend(&profile(Operation::Join, Distribution::Uniform, 1e-11, 1.0));
        assert!(
            matches!(best, Candidate::TreeClustered | Candidate::TreeUnclustered),
            "got {best:?}"
        );
    }

    #[test]
    fn tree_wins_high_selectivity_joins() {
        // §4.5: at higher selectivities the generalization tree is the
        // better option; the clustered/unclustered difference is
        // "usually negligible", so accept either variant.
        let (best, _) = recommend(&profile(Operation::Join, Distribution::Uniform, 1e-6, 0.0));
        assert!(
            matches!(best, Candidate::TreeClustered | Candidate::TreeUnclustered),
            "got {best:?}"
        );
    }

    #[test]
    fn clustered_tree_wins_selections() {
        // §5: "for the spatial selection operation, clustered
        // generalization trees clearly seem to be the most efficient
        // strategy".
        for d in Distribution::ALL {
            let (best, _) = recommend(&profile(Operation::Selection, d, 1e-2, 0.1));
            assert_eq!(best, Candidate::TreeClustered, "{d:?}");
        }
    }

    #[test]
    fn nested_loop_never_recommended() {
        for op in [Operation::Selection, Operation::Join] {
            for d in Distribution::ALL {
                for sel in [1e-10, 1e-6, 1e-2] {
                    for upd in [0.0, 0.5] {
                        let (best, _) = recommend(&profile(op, d, sel, upd));
                        assert_ne!(best, Candidate::NestedLoop);
                    }
                }
            }
        }
    }

    #[test]
    fn scoreboard_is_complete_and_finite() {
        let scores = score(&profile(Operation::Join, Distribution::HiLoc, 1e-8, 0.25));
        assert_eq!(scores.len(), 4);
        for s in scores {
            assert!(s.query_cost.is_finite() && s.query_cost >= 0.0);
            assert!(s.update_cost.is_finite() && s.update_cost >= 0.0);
            assert!(s.total(0.25) >= s.query_cost);
        }
    }

    #[test]
    fn selectivity_estimator_converges() {
        let mut pool = BufferPool::new(Disk::new(DiskConfig::paper()), 128);
        // 50x50 grid vs itself shifted by half a step under within-0.6:
        // each R tuple matches the S tuples half a step to either side.
        let mk = |offset: f64, id0: u64| -> Vec<(u64, Geometry)> {
            (0..2500)
                .map(|i| {
                    (
                        id0 + i as u64,
                        Geometry::Point(Point::new((i % 50) as f64 + offset, (i / 50) as f64)),
                    )
                })
                .collect()
        };
        let r = StoredRelation::build(&mut pool, &mk(0.0, 0), 300, Layout::Clustered);
        let s = StoredRelation::build(&mut pool, &mk(0.5, 10_000), 300, Layout::Clustered);
        let theta = ThetaOp::WithinDistance(0.6);
        let est = estimate_selectivity(&mut pool, &r, &s, theta, 20_000, 7);
        // Ground truth by exhaustive counting.
        let matches = sj_joins::nested_loop::nested_loop_join(&mut pool, &r, &s, theta)
            .pairs
            .len() as f64;
        let truth = matches / (2500.0 * 2500.0);
        assert!(
            (est - truth).abs() < 0.5 * truth,
            "estimate {est} too far from {truth}"
        );
    }
}
