//! Bit interleaving — the Morton / Peano / z-order encoding.

/// Spreads the low 32 bits of `v` so that bit `i` of the input lands at bit
/// `2i` of the output (the classic "part-1-by-1" bit trick).
#[inline]
fn part1by1(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`part1by1`]: collects every second bit.
#[inline]
fn compact1by1(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Z-value of grid cell `(x, y)`: bits of `x` at even positions, bits of
/// `y` at odd positions. Cells are enumerated in the "Z" (Peano) pattern of
/// the paper's Figure 1.
#[inline]
pub fn interleave(x: u32, y: u32) -> u64 {
    part1by1(x) | (part1by1(y) << 1)
}

/// Inverse of [`interleave`].
#[inline]
pub fn deinterleave(z: u64) -> (u32, u32) {
    (compact1by1(z), compact1by1(z >> 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cells_follow_the_z_pattern() {
        // The 2x2 block order is (0,0), (1,0), (0,1), (1,1) — the "Z".
        assert_eq!(interleave(0, 0), 0);
        assert_eq!(interleave(1, 0), 1);
        assert_eq!(interleave(0, 1), 2);
        assert_eq!(interleave(1, 1), 3);
        // The next 2x2 block (x in 2..4) starts at 4.
        assert_eq!(interleave(2, 0), 4);
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        for x in 0..64u32 {
            for y in 0..64u32 {
                assert_eq!(deinterleave(interleave(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn roundtrip_large_values() {
        for &(x, y) in &[
            (u32::MAX, 0),
            (0, u32::MAX),
            (u32::MAX, u32::MAX),
            (0xDEAD_BEEF, 0x1234_5678),
        ] {
            assert_eq!(deinterleave(interleave(x, y)), (x, y));
        }
    }

    #[test]
    fn z_is_monotone_in_each_coordinate_within_block() {
        // Within an aligned block, increasing x or y increases z.
        assert!(interleave(2, 3) < interleave(3, 3));
        assert!(interleave(2, 2) < interleave(2, 3));
    }

    #[test]
    fn spatial_neighbors_can_be_z_distant() {
        // The paper's core observation: cells (3, y) and (4, y) are
        // spatially adjacent but live in different top-level quadrants of
        // an 8x8 grid, so their z-values differ wildly.
        let a = interleave(3, 3); // last cell of the lower-left 4x4 quadrant
        let b = interleave(4, 3); // adjacent cell in the lower-right quadrant
        assert_eq!(a, 15);
        assert_eq!(b, 26); // 11 z-positions away despite touching `a`
                           // The definitive check: there exist adjacent cells at distance > half
                           // the grid in z-rank.
        let gap = interleave(3, 0).abs_diff(interleave(4, 0));
        assert!(
            gap > 8,
            "adjacent cells (3,0) and (4,0) are {gap} apart in z-order"
        );
    }
}
