//! The Hilbert curve — a second space-filling total order.
//!
//! §2.2 claims that the sort-merge counterexample is not specific to
//! Peano curves: "Similar examples can be constructed for any other
//! spatial ordering." This module provides the standard alternative
//! ordering so that claim can be demonstrated empirically (see the
//! `hilbert_vs_zorder` binary in `sj-bench`): the Hilbert curve clusters
//! range queries into fewer contiguous index runs than z-order, yet still
//! admits spatially adjacent cell pairs that are arbitrarily far apart in
//! curve order — so the paper's impossibility argument stands for it too.

/// Hilbert index of cell `(x, y)` on a `2^order × 2^order` grid
/// (`1 ≤ order ≤ 31`). The classic rotate-and-accumulate formulation.
pub fn hilbert_index(order: u32, mut x: u32, mut y: u32) -> u64 {
    assert!((1..=31).contains(&order), "order must be in 1..=31");
    let side = 1u32 << order;
    assert!(
        x < side && y < side,
        "cell ({x}, {y}) outside 2^{order} grid"
    );
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s = side / 2;
    while s > 0 {
        rx = u32::from((x & s) > 0);
        ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x) & (side - 1);
                y = s.wrapping_sub(1).wrapping_sub(y) & (side - 1);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse of [`hilbert_index`]: the cell at curve position `d`.
pub fn hilbert_cell(order: u32, mut d: u64) -> (u32, u32) {
    assert!((1..=31).contains(&order), "order must be in 1..=31");
    let side = 1u64 << order;
    assert!(d < side * side, "index {d} outside the curve");
    let (mut x, mut y) = (0u32, 0u32);
    let mut s = 1u64;
    while s < side {
        let rx = 1 & (d / 2) as u32;
        let ry = 1 & ((d as u32) ^ rx);
        // Rotate.
        if ry == 0 {
            if rx == 1 {
                x = (s as u32 - 1) - x;
                y = (s as u32 - 1) - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += (s as u32) * rx;
        y += (s as u32) * ry;
        d /= 4;
        s *= 2;
    }
    (x, y)
}

/// Mean number of contiguous curve-index runs ("clusters") needed to
/// cover a sliding `window × window` query region — the standard locality
/// metric for space-filling curves (fewer clusters = fewer disk seeks for
/// a range query). Hilbert beats z-order on this metric.
pub fn mean_cluster_count(order: u32, window: u32, index_of: impl Fn(u32, u32) -> u64) -> f64 {
    let side = 1u32 << order;
    assert!(window >= 1 && window <= side);
    let mut total_runs = 0u64;
    let mut windows = 0u64;
    for y0 in 0..=(side - window) {
        for x0 in 0..=(side - window) {
            let mut idx: Vec<u64> = Vec::with_capacity((window * window) as usize);
            for y in y0..y0 + window {
                for x in x0..x0 + window {
                    idx.push(index_of(x, y));
                }
            }
            idx.sort_unstable();
            let runs = 1 + idx.windows(2).filter(|w| w[1] > w[0] + 1).count() as u64;
            total_runs += runs;
            windows += 1;
        }
    }
    total_runs as f64 / windows as f64
}

/// Mean curve-index distance between all horizontally/vertically adjacent
/// cell pairs of a `2^order` grid, for a given cell→index function.
pub fn mean_adjacent_gap(order: u32, index_of: impl Fn(u32, u32) -> u64) -> f64 {
    let side = 1u32 << order;
    let mut total = 0u64;
    let mut count = 0u64;
    for y in 0..side {
        for x in 0..side {
            let here = index_of(x, y);
            if x + 1 < side {
                total += here.abs_diff(index_of(x + 1, y));
                count += 1;
            }
            if y + 1 < side {
                total += here.abs_diff(index_of(x, y + 1));
                count += 1;
            }
        }
    }
    total as f64 / count as f64
}

/// Largest curve-index distance over all adjacent cell pairs — the
/// quantity the paper's impossibility argument is about: it grows with the
/// grid for *every* total order.
pub fn max_adjacent_gap(order: u32, index_of: impl Fn(u32, u32) -> u64) -> u64 {
    let side = 1u32 << order;
    let mut max = 0u64;
    for y in 0..side {
        for x in 0..side {
            let here = index_of(x, y);
            if x + 1 < side {
                max = max.max(here.abs_diff(index_of(x + 1, y)));
            }
            if y + 1 < side {
                max = max.max(here.abs_diff(index_of(x, y + 1)));
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::interleave;

    #[test]
    fn first_order_curve() {
        // Order 1: the U-shape (0,0) → (0,1) → (1,1) → (1,0).
        assert_eq!(hilbert_index(1, 0, 0), 0);
        assert_eq!(hilbert_index(1, 0, 1), 1);
        assert_eq!(hilbert_index(1, 1, 1), 2);
        assert_eq!(hilbert_index(1, 1, 0), 3);
    }

    #[test]
    fn roundtrip_exhaustive() {
        for order in 1..=5u32 {
            let side = 1u32 << order;
            for x in 0..side {
                for y in 0..side {
                    let d = hilbert_index(order, x, y);
                    assert_eq!(
                        hilbert_cell(order, d),
                        (x, y),
                        "order {order} cell ({x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    fn curve_is_a_bijection_visiting_neighbors() {
        // Consecutive curve positions are always spatially adjacent —
        // Hilbert's defining property (unlike z-order's jumps).
        let order = 4;
        let side = 1u64 << order;
        for d in 0..(side * side - 1) {
            let (x0, y0) = hilbert_cell(order as u32, d);
            let (x1, y1) = hilbert_cell(order as u32, d + 1);
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(dist, 1, "positions {d} and {} not adjacent", d + 1);
        }
    }

    #[test]
    fn hilbert_has_better_clustering_than_zorder() {
        // The classic result (Moon et al.): a range query over a Hilbert-
        // ordered grid touches fewer contiguous index runs than over a
        // z-ordered grid.
        for order in 3..=6 {
            for window in [2u32, 4] {
                let h = mean_cluster_count(order, window, |x, y| hilbert_index(order, x, y));
                let z = mean_cluster_count(order, window, interleave);
                assert!(
                    h <= z,
                    "order {order}, window {window}: Hilbert clusters {h} vs z-order {z}"
                );
            }
        }
    }

    #[test]
    fn mean_adjacent_gap_is_finite_and_grows() {
        let g3 = mean_adjacent_gap(3, interleave);
        let g5 = mean_adjacent_gap(5, interleave);
        assert!(g3 > 1.0 && g5 > g3, "gaps grow with the grid: {g3} vs {g5}");
    }

    #[test]
    fn but_hilbert_still_has_distant_adjacent_pairs() {
        // The paper's point: *any* total order tears some neighbours far
        // apart. For Hilbert the worst adjacent pair is Θ(4^order) apart.
        for order in 3..=6u32 {
            let side = 1u64 << order;
            let worst = max_adjacent_gap(order, |x, y| hilbert_index(order, x, y));
            assert!(
                worst as f64 > (side * side) as f64 / 4.0,
                "order {order}: worst gap {worst} must grow with the grid"
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_grid_rejected() {
        let _ = hilbert_index(3, 8, 0);
    }
}
