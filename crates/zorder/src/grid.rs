//! A finite z-ordered grid over a world rectangle and Orenstein's
//! decomposition of rectangles into *z-elements* (aligned quadtree blocks,
//! which are contiguous z-ranges).

use sj_geom::{Point, Rect};

use crate::curve::interleave;

/// An inclusive range of z-values — one *z-element* of an object's
/// decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ZRange {
    pub lo: u64,
    pub hi: u64,
}

impl ZRange {
    /// True if the ranges share at least one z-value.
    #[inline]
    pub fn overlaps(&self, other: &ZRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Number of cells covered.
    #[inline]
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// Never true — construction sites guarantee `lo ≤ hi`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A `2ᵇ × 2ᵇ` z-ordered grid covering a world rectangle.
#[derive(Debug, Clone, Copy)]
pub struct ZGrid {
    world: Rect,
    bits: u8,
}

impl ZGrid {
    /// Creates a grid of `2^bits × 2^bits` cells over `world`
    /// (`1 ≤ bits ≤ 16`).
    pub fn new(world: Rect, bits: u8) -> Self {
        assert!(
            (1..=16).contains(&bits),
            "bits must be in 1..=16, got {bits}"
        );
        assert!(
            world.width() > 0.0 && world.height() > 0.0,
            "world rectangle must have positive area"
        );
        ZGrid { world, bits }
    }

    /// Cells per side.
    #[inline]
    pub fn side(&self) -> u32 {
        1u32 << self.bits
    }

    /// Total cell count.
    #[inline]
    pub fn cell_count(&self) -> u64 {
        (self.side() as u64) * (self.side() as u64)
    }

    /// The covered world rectangle.
    #[inline]
    pub fn world(&self) -> Rect {
        self.world
    }

    /// Grid coordinates of the cell containing `p` (points on the far
    /// boundary are clamped into the last cell).
    pub fn cell_of(&self, p: &Point) -> (u32, u32) {
        let side = self.side();
        let fx = (p.x - self.world.lo.x) / self.world.width();
        let fy = (p.y - self.world.lo.y) / self.world.height();
        let cx = ((fx * side as f64).floor() as i64).clamp(0, (side - 1) as i64) as u32;
        let cy = ((fy * side as f64).floor() as i64).clamp(0, (side - 1) as i64) as u32;
        (cx, cy)
    }

    /// Z-value of the cell containing `p`.
    pub fn z_of_point(&self, p: &Point) -> u64 {
        let (cx, cy) = self.cell_of(p);
        interleave(cx, cy)
    }

    /// World rectangle of cell `(cx, cy)`.
    pub fn cell_rect(&self, cx: u32, cy: u32) -> Rect {
        let side = self.side() as f64;
        let w = self.world.width() / side;
        let h = self.world.height() / side;
        let x0 = self.world.lo.x + cx as f64 * w;
        let y0 = self.world.lo.y + cy as f64 * h;
        Rect::from_bounds(x0, y0, x0 + w, y0 + h)
    }

    /// Inclusive grid-coordinate span of the cells overlapping `r`
    /// (clamped to the grid), or `None` when `r` lies outside the world.
    pub fn cell_span(&self, r: &Rect) -> Option<(u32, u32, u32, u32)> {
        let clipped = self.world.intersection(r)?;
        let (x0, y0) = self.cell_of(&clipped.lo);
        // The far corner needs care: a boundary exactly on a cell edge must
        // not drag in the next cell.
        let eps_x = self.world.width() / self.side() as f64 * 1e-9;
        let eps_y = self.world.height() / self.side() as f64 * 1e-9;
        let far = Point::new(
            (clipped.hi.x - eps_x).max(clipped.lo.x),
            (clipped.hi.y - eps_y).max(clipped.lo.y),
        );
        let (x1, y1) = self.cell_of(&far);
        Some((x0, y0, x1, y1))
    }

    /// Decomposes `r` into maximal aligned quadtree blocks — Orenstein's
    /// z-elements — *without* coalescing: every returned range is an
    /// aligned block `[b, b + 4^k)`, the property index structures rely on
    /// (an aligned block either contains a z-value's position or starts at
    /// one of its prefix-aligned offsets). Sorted by `lo`.
    pub fn decompose_aligned(&self, r: &Rect) -> Vec<ZRange> {
        let Some((x0, y0, x1, y1)) = self.cell_span(r) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        self.decompose_block(0, 0, self.bits, (x0, y0, x1, y1), &mut out);
        out.sort_unstable();
        out
    }

    /// Decomposes `r` into maximal aligned quadtree blocks — Orenstein's
    /// z-elements. Each block is a contiguous z-range; together they cover
    /// exactly the cells overlapping `r`. Returns ranges sorted by `lo`,
    /// with adjacent ranges coalesced.
    pub fn decompose(&self, r: &Rect) -> Vec<ZRange> {
        let out = self.decompose_aligned(r);
        // Coalesce ranges that touch.
        let mut merged: Vec<ZRange> = Vec::with_capacity(out.len());
        for range in out {
            match merged.last_mut() {
                Some(last) if last.hi + 1 >= range.lo => {
                    last.hi = last.hi.max(range.hi);
                }
                _ => merged.push(range),
            }
        }
        merged
    }

    /// Recursion over aligned blocks: block at `(bx, by)` with side
    /// `2^level` cells.
    fn decompose_block(
        &self,
        bx: u32,
        by: u32,
        level: u8,
        span: (u32, u32, u32, u32),
        out: &mut Vec<ZRange>,
    ) {
        let size = 1u32 << level;
        let (qx0, qy0) = (bx, by);
        let (qx1, qy1) = (bx + size - 1, by + size - 1);
        let (x0, y0, x1, y1) = span;
        // Disjoint?
        if qx1 < x0 || x1 < qx0 || qy1 < y0 || y1 < qy0 {
            return;
        }
        // Fully covered → one contiguous z-range (aligned blocks are
        // contiguous in Morton order).
        if x0 <= qx0 && qx1 <= x1 && y0 <= qy0 && qy1 <= y1 {
            let lo = interleave(qx0, qy0);
            out.push(ZRange {
                lo,
                hi: lo + (size as u64) * (size as u64) - 1,
            });
            return;
        }
        debug_assert!(
            level > 0,
            "cell-level blocks are either disjoint or covered"
        );
        let half = size / 2;
        let next = level - 1;
        self.decompose_block(bx, by, next, span, out);
        self.decompose_block(bx + half, by, next, span, out);
        self.decompose_block(bx, by + half, next, span, out);
        self.decompose_block(bx + half, by + half, next, span, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::deinterleave;

    fn grid8() -> ZGrid {
        ZGrid::new(Rect::from_bounds(0.0, 0.0, 8.0, 8.0), 3)
    }

    /// Brute-force set of z-values of cells overlapping `r`.
    fn brute_cells(g: &ZGrid, r: &Rect) -> Vec<u64> {
        let mut zs = Vec::new();
        for cx in 0..g.side() {
            for cy in 0..g.side() {
                if g.cell_rect(cx, cy).interiors_intersect(r)
                    || r.contains_rect(&g.cell_rect(cx, cy))
                {
                    zs.push(interleave(cx, cy));
                }
            }
        }
        zs.sort_unstable();
        zs
    }

    fn expand_ranges(ranges: &[ZRange]) -> Vec<u64> {
        let mut zs = Vec::new();
        for r in ranges {
            zs.extend(r.lo..=r.hi);
        }
        zs
    }

    #[test]
    fn cell_of_boundaries() {
        let g = grid8();
        assert_eq!(g.cell_of(&Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.cell_of(&Point::new(7.99, 7.99)), (7, 7));
        // The far world boundary is clamped into the last cell.
        assert_eq!(g.cell_of(&Point::new(8.0, 8.0)), (7, 7));
        assert_eq!(g.cell_of(&Point::new(3.5, 1.2)), (3, 1));
    }

    #[test]
    fn full_world_is_one_range() {
        let g = grid8();
        let d = g.decompose(&Rect::from_bounds(0.0, 0.0, 8.0, 8.0));
        assert_eq!(d, vec![ZRange { lo: 0, hi: 63 }]);
    }

    #[test]
    fn aligned_quadrant_is_one_range() {
        let g = grid8();
        // Lower-left 4x4 quadrant = z 0..15.
        let d = g.decompose(&Rect::from_bounds(0.0, 0.0, 4.0, 4.0));
        assert_eq!(d, vec![ZRange { lo: 0, hi: 15 }]);
    }

    #[test]
    fn straddling_rect_covers_exactly_overlapping_cells() {
        let g = grid8();
        // A rect straddling the central cross of the grid.
        let r = Rect::from_bounds(2.5, 3.5, 5.5, 4.5);
        let d = g.decompose(&r);
        assert_eq!(expand_ranges(&d), brute_cells(&g, &r));
    }

    #[test]
    fn decomposition_matches_brute_force_on_a_sweep() {
        let g = ZGrid::new(Rect::from_bounds(0.0, 0.0, 16.0, 16.0), 4);
        let cases = [
            Rect::from_bounds(0.1, 0.1, 0.2, 0.2),
            Rect::from_bounds(1.0, 1.0, 15.0, 2.0),
            Rect::from_bounds(7.2, 7.2, 8.8, 8.8),
            Rect::from_bounds(0.0, 15.5, 16.0, 16.0),
            Rect::from_bounds(3.3, 9.9, 12.1, 13.7),
        ];
        for r in cases {
            let d = g.decompose(&r);
            assert_eq!(expand_ranges(&d), brute_cells(&g, &r), "rect {r:?}");
            // Ranges are sorted and non-touching after coalescing.
            for w in d.windows(2) {
                assert!(w[0].hi + 1 < w[1].lo);
            }
        }
    }

    #[test]
    fn outside_world_is_empty() {
        let g = grid8();
        assert!(g
            .decompose(&Rect::from_bounds(10.0, 10.0, 12.0, 12.0))
            .is_empty());
    }

    #[test]
    fn zrange_overlap() {
        let a = ZRange { lo: 0, hi: 10 };
        let b = ZRange { lo: 10, hi: 20 };
        let c = ZRange { lo: 11, hi: 20 };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.len(), 11);
    }

    #[test]
    fn cell_rect_tiles_the_world() {
        let g = grid8();
        let mut area = 0.0;
        for cx in 0..8 {
            for cy in 0..8 {
                area += g.cell_rect(cx, cy).area();
            }
        }
        assert!((area - 64.0).abs() < 1e-9);
        // Deinterleave sanity on one cell.
        let z = g.z_of_point(&Point::new(5.5, 2.5));
        assert_eq!(deinterleave(z), (5, 2));
    }
}
