//! # sj-zorder — Peano curves / z-ordering
//!
//! §2.2 of the paper discusses spatial sorting via Peano curves
//! ("z-ordering", Orenstein 1986, the paper's Figure 1): the plane is
//! divided into a 2ᵇ × 2ᵇ grid and each cell is assigned the integer
//! obtained by interleaving the bits of its column and row numbers. The
//! paper makes two uses of this machinery, both reproduced here:
//!
//! 1. **The negative result** — no spatial total order preserves proximity:
//!    spatially adjacent cells can be arbitrarily far apart in z-order, so
//!    a sort-merge join over z-values misses matches for θ-operators like
//!    `adjacent` (demonstrated by `fig01_zorder` in `sj-bench` and by this
//!    crate's tests).
//! 2. **The positive exception** — for θ = `overlaps`, decomposing each
//!    object into *z-elements* (maximal quadtree blocks, which are
//!    contiguous z-ranges) allows a sort-merge strategy; the executor lives
//!    in `sj-joins::sort_merge`, built on [`ZGrid::decompose`].

pub mod curve;
pub mod grid;
pub mod hilbert;

pub use curve::{deinterleave, interleave};
pub use grid::{ZGrid, ZRange};
pub use hilbert::{hilbert_cell, hilbert_index};
