//! Property tests: a rectangle's z-element decomposition covers exactly the
//! grid cells the rectangle overlaps, and two rectangles overlap iff their
//! z-element sets share a z-value (the soundness/completeness basis of the
//! Orenstein sort-merge join).

use proptest::prelude::*;
use sj_geom::Rect;
use sj_zorder::{interleave, ZGrid};

fn brute_cells(g: &ZGrid, r: &Rect) -> Vec<u64> {
    let mut zs = Vec::new();
    for cx in 0..g.side() {
        for cy in 0..g.side() {
            let cell = g.cell_rect(cx, cy);
            if cell.interiors_intersect(r) || r.contains_rect(&cell) {
                zs.push(interleave(cx, cy));
            }
        }
    }
    zs.sort_unstable();
    zs
}

fn expand(g: &ZGrid, r: &Rect) -> Vec<u64> {
    let mut zs = Vec::new();
    for range in g.decompose(r) {
        zs.extend(range.lo..=range.hi);
    }
    zs
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0..31.0f64, 0.0..31.0f64, 0.01..8.0f64, 0.01..8.0f64)
        .prop_map(|(x, y, w, h)| Rect::from_bounds(x, y, (x + w).min(32.0), (y + h).min(32.0)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decomposition_equals_brute_force(r in arb_rect()) {
        let g = ZGrid::new(Rect::from_bounds(0.0, 0.0, 32.0, 32.0), 5);
        prop_assert_eq!(expand(&g, &r), brute_cells(&g, &r));
    }

    /// If two rectangles' interiors overlap, their z-element sets share a
    /// value; if the decomposed cell sets are disjoint, the rectangles'
    /// interiors are disjoint (completeness of the z-overlap filter).
    #[test]
    fn z_overlap_filter_is_complete(a in arb_rect(), b in arb_rect()) {
        let g = ZGrid::new(Rect::from_bounds(0.0, 0.0, 32.0, 32.0), 5);
        let da = g.decompose(&a);
        let db = g.decompose(&b);
        let z_hit = da.iter().any(|ra| db.iter().any(|rb| ra.overlaps(rb)));
        if a.interiors_intersect(&b) {
            prop_assert!(z_hit, "interior-overlapping rects must share a z-element");
        }
        if !z_hit {
            prop_assert!(!a.interiors_intersect(&b));
        }
    }

    /// Decompositions are compact: no more than O(side) ranges for any
    /// rectangle (quadtree decomposition of a rectangle yields at most
    /// ~4·side blocks; coalescing only shrinks that).
    #[test]
    fn decomposition_is_compact(r in arb_rect()) {
        let g = ZGrid::new(Rect::from_bounds(0.0, 0.0, 32.0, 32.0), 5);
        let d = g.decompose(&r);
        prop_assert!(d.len() <= 4 * 32, "got {} ranges", d.len());
        for w in d.windows(2) {
            prop_assert!(w[0].hi + 1 < w[1].lo, "ranges must be coalesced and sorted");
        }
    }
}
